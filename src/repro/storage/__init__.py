"""Disk and buffer simulation substrate.

The paper measures query cost primarily in *node accesses* because the
TAR-tree is assumed to be disk resident.  This package provides the
simulation pieces that make such measurements meaningful in a pure-Python
reproduction:

* :mod:`repro.storage.pager` — node/page sizing rules that derive entry
  capacities from a node size in bytes (1024 bytes yields capacities of
  50 and 36 for 2- and 3-dimensional entries, exactly as in the paper).
* :mod:`repro.storage.buffer` — an LRU buffer pool; the paper assigns each
  TIA a maximum of 10 buffer slots.
* :mod:`repro.storage.stats` — access counters shared by the R-tree layer
  and the temporal indexes.
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.pager import (
    COORD_BYTES,
    NODE_HEADER_BYTES,
    POINTER_BYTES,
    TEMPORAL_RECORD_BYTES,
    node_capacity,
    tia_leaf_capacity,
    tia_internal_capacity,
)
from repro.storage.stats import AccessStats

__all__ = [
    "AccessStats",
    "LRUBufferPool",
    "node_capacity",
    "tia_leaf_capacity",
    "tia_internal_capacity",
    "NODE_HEADER_BYTES",
    "COORD_BYTES",
    "POINTER_BYTES",
    "TEMPORAL_RECORD_BYTES",
]
