"""Access accounting shared by the spatial and temporal indexes.

Node accesses are the paper's primary cost metric (Section 5: "The
performance of the BFS on the TAR-tree is roughly proportional to the
number of accessed nodes").  Every index in this library takes an
:class:`AccessStats` instance and records accesses into it, so a caller
can snapshot/diff around a query to attribute costs precisely.
"""

from __future__ import annotations


class AccessStats:
    """Mutable counters for simulated I/O.

    Attributes
    ----------
    rtree_internal:
        Internal (non-leaf) R-tree node accesses.
    rtree_leaf:
        Leaf R-tree node accesses.
    tia_pages:
        TIA page accesses that missed the buffer (i.e. simulated disk reads).
    tia_buffer_hits:
        TIA page accesses satisfied by a buffer slot.
    """

    __slots__ = ("rtree_internal", "rtree_leaf", "tia_pages", "tia_buffer_hits")

    def __init__(self) -> None:
        self.rtree_internal = 0
        self.rtree_leaf = 0
        self.tia_pages = 0
        self.tia_buffer_hits = 0

    @property
    def rtree_nodes(self) -> int:
        """Total R-tree node accesses (internal + leaf)."""
        return self.rtree_internal + self.rtree_leaf

    @property
    def total_io(self) -> int:
        """All simulated disk reads: R-tree nodes plus unbuffered TIA pages."""
        return self.rtree_nodes + self.tia_pages

    def record_node(self, is_leaf: bool) -> None:
        """Record one R-tree node access."""
        if is_leaf:
            self.rtree_leaf += 1
        else:
            self.rtree_internal += 1

    def record_tia_page(self, buffered: bool) -> None:
        """Record one TIA page access; ``buffered`` marks a buffer hit."""
        if buffered:
            self.tia_buffer_hits += 1
        else:
            self.tia_pages += 1

    def reset(self) -> None:
        """Zero every counter."""
        self.rtree_internal = 0
        self.rtree_leaf = 0
        self.tia_pages = 0
        self.tia_buffer_hits = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        """Return an immutable copy of the current counter values."""
        return (
            self.rtree_internal,
            self.rtree_leaf,
            self.tia_pages,
            self.tia_buffer_hits,
        )

    def diff(self, earlier_snapshot: tuple[int, int, int, int]) -> AccessStats:
        """Return a new :class:`AccessStats` holding counts since a snapshot."""
        delta = AccessStats()
        delta.rtree_internal = self.rtree_internal - earlier_snapshot[0]
        delta.rtree_leaf = self.rtree_leaf - earlier_snapshot[1]
        delta.tia_pages = self.tia_pages - earlier_snapshot[2]
        delta.tia_buffer_hits = self.tia_buffer_hits - earlier_snapshot[3]
        return delta

    def merge(self, other: AccessStats) -> AccessStats:
        """Add another :class:`AccessStats`'s counters into this one.

        Returns ``self`` so per-request deltas can be folded into a
        running total (the service snapshot aggregates batch costs this
        way): ``total.merge(batch_cost)``.
        """
        self.rtree_internal += other.rtree_internal
        self.rtree_leaf += other.rtree_leaf
        self.tia_pages += other.tia_pages
        self.tia_buffer_hits += other.tia_buffer_hits
        return self

    def as_dict(self, label: str | None = None) -> dict[str, int]:
        """The counters (and derived totals) as a plain ``dict``.

        Keys: the four raw counters plus ``rtree_nodes`` and
        ``total_io``.  This is the JSON-friendly shape used by the
        service snapshot, the wire protocol and the CLI cost report.
        When ``label`` is given every key is prefixed ``"<label>."`` —
        the cluster coordinator uses this to merge per-shard costs into
        one flat, diffable mapping (``shards.0.total_io``, ...).  This
        dotted form is the canonical labelling scheme for every cost
        mapping the project emits (the coordinator's scalar counters
        follow it too: ``shards.visited``, ``shards.pruned``, ...).
        """
        counters = {
            "rtree_internal": self.rtree_internal,
            "rtree_leaf": self.rtree_leaf,
            "rtree_nodes": self.rtree_nodes,
            "tia_pages": self.tia_pages,
            "tia_buffer_hits": self.tia_buffer_hits,
            "total_io": self.total_io,
        }
        if label is None:
            return counters
        return {"%s.%s" % (label, key): value for key, value in counters.items()}

    def __repr__(self) -> str:
        return (
            "AccessStats(rtree_internal=%d, rtree_leaf=%d, "
            "tia_pages=%d, tia_buffer_hits=%d)"
            % (self.rtree_internal, self.rtree_leaf, self.tia_pages, self.tia_buffer_hits)
        )
