"""Persistence for data sets and TAR-trees.

Two formats:

* **Data sets** — ``save_dataset`` / ``load_dataset`` store the POI
  positions and raw check-in timestamps in a single ``.npz`` archive
  (exact round trip).
* **Trees** — ``save_tree`` / ``load_tree`` store the index *content*
  (configuration plus every POI's location and per-epoch history, in
  insertion order) as JSON.  Loading rebuilds the tree by replaying the
  insertions, which is deterministic, so a reloaded tree answers every
  query identically; the physical node layout is reconstructed rather
  than copied.  POI identifiers must be JSON-representable scalars
  (str/int); this is asserted at save time.
"""

import json

import numpy as np

from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock, VariedEpochClock

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Data sets
# ---------------------------------------------------------------------------


def save_dataset(dataset, path):
    """Write ``dataset`` to ``path`` as a ``.npz`` archive."""
    poi_ids = sorted(dataset.positions)
    positions = np.array(
        [dataset.positions[poi_id] for poi_id in poi_ids], dtype=np.float64
    )
    times = [
        np.asarray(dataset.checkin_times.get(poi_id, ()), dtype=np.float64)
        for poi_id in poi_ids
    ]
    lengths = np.array([t.size for t in times], dtype=np.int64)
    flat_times = (
        np.concatenate(times) if times else np.empty(0, dtype=np.float64)
    )
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        name=np.str_(dataset.name),
        world=np.array(dataset.world.lows + dataset.world.highs),
        t0=np.float64(dataset.t0),
        tc=np.float64(dataset.tc),
        threshold=np.int64(dataset.threshold),
        poi_ids=np.array(poi_ids),
        positions=positions,
        lengths=lengths,
        times=flat_times,
    )


def load_dataset(path):
    """Read a :class:`~repro.datasets.generator.Dataset` written by
    :func:`save_dataset`."""
    from repro.datasets.generator import Dataset

    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError("unsupported dataset format version %d" % version)
        world_values = archive["world"]
        world = Rect(world_values[:2], world_values[2:])
        poi_ids = [_plain(v) for v in archive["poi_ids"]]
        positions_array = archive["positions"]
        lengths = archive["lengths"]
        flat_times = archive["times"]
        positions = {
            poi_id: (float(x), float(y))
            for poi_id, (x, y) in zip(poi_ids, positions_array)
        }
        checkin_times = {}
        offset = 0
        for poi_id, length in zip(poi_ids, lengths):
            checkin_times[poi_id] = flat_times[offset : offset + int(length)].copy()
            offset += int(length)
        return Dataset(
            str(archive["name"]),
            world,
            float(archive["t0"]),
            float(archive["tc"]),
            positions,
            checkin_times,
            int(archive["threshold"]),
        )


def _plain(value):
    """Convert a numpy scalar to the nearest Python scalar."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# ---------------------------------------------------------------------------
# Trees
# ---------------------------------------------------------------------------


def _clock_to_json(clock):
    if isinstance(clock, EpochClock):
        return {"type": "uniform", "t0": clock.t0, "epoch_length": clock.epoch_length}
    if isinstance(clock, VariedEpochClock):
        return {"type": "varied", "boundaries": list(clock.boundaries)}
    raise TypeError("cannot serialise clock of type %s" % type(clock).__name__)


def _clock_from_json(payload):
    if payload["type"] == "uniform":
        return EpochClock(payload["t0"], payload["epoch_length"])
    if payload["type"] == "varied":
        return VariedEpochClock(payload["boundaries"])
    raise ValueError("unknown clock type %r" % (payload["type"],))


def save_tree(tree, path):
    """Write the logical content and configuration of ``tree`` as JSON."""
    pois = []
    for poi_id in tree.poi_ids():
        if not isinstance(poi_id, (str, int)):
            raise TypeError(
                "POI id %r is not JSON-representable; use str or int ids"
                % (poi_id,)
            )
        poi = tree.poi(poi_id)
        history = [[int(e), v] for e, v in tree.poi_tia(poi_id).items()]
        pois.append([poi_id, poi.x, poi.y, history])
    payload = {
        "version": _FORMAT_VERSION,
        "world": {"lows": list(tree.world.lows), "highs": list(tree.world.highs)},
        "clock": _clock_to_json(tree.clock),
        "current_time": tree.current_time,
        "strategy": tree.strategy.name,
        "node_size": tree.node_size,
        "tia_backend": tree.tia_backend,
        "aggregate_kind": tree.aggregate_kind.value,
        "max_mean_rate": tree.max_mean_rate(),
        "pois": pois,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_tree(path, stats=None, **overrides):
    """Rebuild a TAR-tree written by :func:`save_tree`.

    ``overrides`` are forwarded to the ``TARTree`` constructor (e.g. a
    different ``tia_buffer_slots``); the indexed content is always the
    saved one.
    """
    from repro.core.tar_tree import POI, TARTree

    with open(path) as handle:
        payload = json.load(handle)
    if payload["version"] != _FORMAT_VERSION:
        raise ValueError("unsupported tree format version %d" % payload["version"])
    config = dict(
        world=Rect(payload["world"]["lows"], payload["world"]["highs"]),
        clock=_clock_from_json(payload["clock"]),
        current_time=payload["current_time"],
        strategy=payload["strategy"],
        node_size=payload["node_size"],
        tia_backend=payload["tia_backend"],
        aggregate_kind=payload["aggregate_kind"],
        stats=stats,
    )
    config.update(overrides)
    tree = TARTree(**config)
    # Restore the lambda-hat normaliser before placement so integral-3D
    # z-coordinates match the saved tree's.
    tree._max_mean_rate = payload["max_mean_rate"]
    for poi_id, x, y, history in payload["pois"]:
        tree.insert_poi(POI(poi_id, x, y), {int(e): v for e, v in history})
    return tree
