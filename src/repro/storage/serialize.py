"""Persistence for data sets and TAR-trees.

Two formats:

* **Data sets** — ``save_dataset`` / ``load_dataset`` store the POI
  positions and raw check-in timestamps in a single ``.npz`` archive
  (exact round trip).
* **Trees** — ``save_tree`` / ``load_tree`` store the index *content*
  (configuration plus every POI's location and per-epoch history, in
  insertion order) as JSON.  Loading rebuilds the tree by replaying the
  insertions, which is deterministic, so a reloaded tree answers every
  query identically; the physical node layout is reconstructed rather
  than copied.  POI identifiers must be JSON-representable scalars
  (str/int); a ``TypeError`` is raised at save time otherwise.

Both formats are **checksummed** (format version 2): every logical
section of a snapshot carries a CRC-32 over its canonical byte
representation, verified on load.  A flipped bit, a torn write or a
truncated file raises :class:`CorruptSnapshotError` naming the damaged
section instead of silently producing a corrupt index.  Version-1
snapshots (no checksums) are still read; unknown versions raise a clear
``ValueError``.

The optional ``opener`` argument of every function accepts an
``open``-compatible callable, which is how the reliability layer's
fault injector intercepts snapshot I/O (see
:mod:`repro.reliability.faults`).
"""

import json
import zlib

import numpy as np

from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock, VariedEpochClock

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class CorruptSnapshotError(Exception):
    """A saved data set or tree failed its integrity checks.

    ``section`` names the damaged part of the snapshot (e.g. ``"pois"``
    for a tree, ``"positions"`` for a data set, or ``"container"`` when
    the file itself cannot be parsed).
    """

    def __init__(self, message, section="container"):
        super().__init__(message)
        self.section = section


def _crc_bytes(data):
    return zlib.crc32(data) & 0xFFFFFFFF


def _crc_json(section):
    """CRC-32 of a JSON value's canonical (sorted, compact) encoding."""
    return _crc_bytes(
        json.dumps(section, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def _crc_array(array):
    return _crc_bytes(np.ascontiguousarray(array).tobytes())


def _check_version(version, what):
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            "unsupported %s format version %r; this build reads versions %s"
            % (what, version, ", ".join(str(v) for v in _SUPPORTED_VERSIONS))
        )


# ---------------------------------------------------------------------------
# Data sets
# ---------------------------------------------------------------------------

#: npz fields protected by per-array checksums (everything but the
#: version marker and the checksum arrays themselves).
_DATASET_SECTIONS = (
    "name",
    "world",
    "t0",
    "tc",
    "threshold",
    "poi_ids",
    "positions",
    "lengths",
    "times",
)


def save_dataset(dataset, path, opener=None):
    """Write ``dataset`` to ``path`` as a checksummed ``.npz`` archive."""
    poi_ids = sorted(dataset.positions)
    positions = np.array(
        [dataset.positions[poi_id] for poi_id in poi_ids], dtype=np.float64
    )
    times = [
        np.asarray(dataset.checkin_times.get(poi_id, ()), dtype=np.float64)
        for poi_id in poi_ids
    ]
    lengths = np.array([t.size for t in times], dtype=np.int64)
    flat_times = (
        np.concatenate(times) if times else np.empty(0, dtype=np.float64)
    )
    arrays = {
        "version": np.int64(_FORMAT_VERSION),
        "name": np.str_(dataset.name),
        "world": np.array(dataset.world.lows + dataset.world.highs),
        "t0": np.float64(dataset.t0),
        "tc": np.float64(dataset.tc),
        "threshold": np.int64(dataset.threshold),
        "poi_ids": np.array(poi_ids),
        "positions": positions,
        "lengths": lengths,
        "times": flat_times,
    }
    arrays["checksum_names"] = np.array(_DATASET_SECTIONS)
    arrays["checksum_values"] = np.array(
        [_crc_array(arrays[name]) for name in _DATASET_SECTIONS], dtype=np.uint32
    )
    if opener is not None:
        with opener(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
    else:
        np.savez_compressed(path, **arrays)


def _read_member(archive, name):
    """Read one npz member, converting container damage to a clear error."""
    try:
        return archive[name]
    except KeyError:
        raise CorruptSnapshotError(
            "dataset snapshot is missing section %r" % name, section=name
        )
    except (zlib.error, OSError, EOFError, ValueError) as exc:
        # Flipped bits inside a compressed member surface as zlib/IO
        # errors; zipfile.BadZipFile is handled by the caller.
        raise CorruptSnapshotError(
            "dataset section %r is unreadable: %s" % (name, exc), section=name
        )


def load_dataset(path, opener=None):
    """Read a :class:`~repro.datasets.generator.Dataset` written by
    :func:`save_dataset`.

    Raises :class:`CorruptSnapshotError` when the archive is truncated,
    bit-flipped or fails a section checksum, and ``ValueError`` for an
    unknown format version.
    """
    import zipfile

    from repro.datasets.generator import Dataset

    handle = None
    try:
        if opener is not None:
            handle = opener(path, "rb")
            archive_cm = np.load(handle, allow_pickle=False)
        else:
            archive_cm = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, zlib.error, EOFError, ValueError) as exc:
        if handle is not None:
            handle.close()
        raise CorruptSnapshotError(
            "dataset snapshot %s is not a readable npz archive: %s" % (path, exc)
        )
    try:
        with archive_cm as archive:
            version = int(_read_member(archive, "version"))
            _check_version(version, "dataset")
            if version >= 2:
                _verify_dataset_checksums(archive)
            world_values = _read_member(archive, "world")
            world = Rect(world_values[:2], world_values[2:])
            poi_ids = [_plain(v) for v in _read_member(archive, "poi_ids")]
            positions_array = _read_member(archive, "positions")
            lengths = _read_member(archive, "lengths")
            flat_times = _read_member(archive, "times")
            if positions_array.shape[0] != len(poi_ids) or lengths.shape[0] != len(
                poi_ids
            ):
                raise CorruptSnapshotError(
                    "dataset arrays disagree on the number of POIs",
                    section="positions",
                )
            if int(lengths.sum()) != flat_times.shape[0]:
                raise CorruptSnapshotError(
                    "check-in lengths do not add up to the stored timestamps",
                    section="times",
                )
            positions = {
                poi_id: (float(x), float(y))
                for poi_id, (x, y) in zip(poi_ids, positions_array)
            }
            checkin_times = {}
            offset = 0
            for poi_id, length in zip(poi_ids, lengths):
                checkin_times[poi_id] = flat_times[
                    offset : offset + int(length)
                ].copy()
                offset += int(length)
            return Dataset(
                str(_read_member(archive, "name")),
                world,
                float(_read_member(archive, "t0")),
                float(_read_member(archive, "tc")),
                positions,
                checkin_times,
                int(_read_member(archive, "threshold")),
            )
    except zipfile.BadZipFile as exc:
        raise CorruptSnapshotError(
            "dataset snapshot %s has a corrupt member: %s" % (path, exc)
        )
    finally:
        if handle is not None:
            handle.close()


def _verify_dataset_checksums(archive):
    names = [_plain(v) for v in _read_member(archive, "checksum_names")]
    values = _read_member(archive, "checksum_values")
    stored = dict(zip(names, (int(v) for v in values)))
    for name in _DATASET_SECTIONS:
        if name not in stored:
            raise CorruptSnapshotError(
                "dataset snapshot lacks a checksum for section %r" % name,
                section=name,
            )
        actual = _crc_array(_read_member(archive, name))
        if actual != stored[name]:
            raise CorruptSnapshotError(
                "dataset section %r failed its CRC-32 check "
                "(stored 0x%08x, computed 0x%08x)" % (name, stored[name], actual),
                section=name,
            )


def _plain(value):
    """Convert a numpy scalar to the nearest Python scalar."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# ---------------------------------------------------------------------------
# Trees
# ---------------------------------------------------------------------------


def _clock_to_json(clock):
    if isinstance(clock, EpochClock):
        return {"type": "uniform", "t0": clock.t0, "epoch_length": clock.epoch_length}
    if isinstance(clock, VariedEpochClock):
        return {"type": "varied", "boundaries": list(clock.boundaries)}
    raise TypeError("cannot serialise clock of type %s" % type(clock).__name__)


def _clock_from_json(payload):
    if payload["type"] == "uniform":
        return EpochClock(payload["t0"], payload["epoch_length"])
    if payload["type"] == "varied":
        return VariedEpochClock(payload["boundaries"])
    raise ValueError("unknown clock type %r" % (payload["type"],))


def _tree_sections(tree):
    """Split a tree's logical content into the checksummed sections."""
    pois = []
    for poi_id in tree.poi_ids():
        if not isinstance(poi_id, (str, int)) or isinstance(poi_id, bool):
            raise TypeError(
                "POI id %r is not JSON-representable; use str or int ids"
                % (poi_id,)
            )
        poi = tree.poi(poi_id)
        history = [[int(e), v] for e, v in tree.poi_tia(poi_id).items()]
        pois.append([poi_id, poi.x, poi.y, history])
    config = {
        "world": {"lows": list(tree.world.lows), "highs": list(tree.world.highs)},
        "clock": _clock_to_json(tree.clock),
        "current_time": tree.current_time,
        "strategy": tree.strategy.name,
        "node_size": tree.node_size,
        "tia_backend": tree.tia_backend,
        "aggregate_kind": tree.aggregate_kind.value,
        "max_mean_rate": tree.max_mean_rate(),
        # WAL replay high-water mark: the LSN of the last logged
        # mutation contained in this snapshot (null when the tree was
        # never WAL-wrapped).  recover() skips records at or below it.
        "applied_lsn": getattr(tree, "applied_lsn", None),
    }
    return {"config": config, "pois": pois}


def save_tree(tree, path, opener=None):
    """Write the logical content and configuration of ``tree`` as JSON.

    The snapshot is framed into checksummed sections (``config``,
    ``pois``); :func:`load_tree` verifies each CRC-32 before rebuilding
    the index.
    """
    sections = _tree_sections(tree)
    payload = {
        "version": _FORMAT_VERSION,
        "sections": sections,
        "checksums": {name: _crc_json(body) for name, body in sections.items()},
    }
    if opener is None:
        opener = open
    with opener(path, "w") as handle:
        json.dump(payload, handle)


def _tree_payload_sections(path, payload):
    """Return the verified ``{"config": ..., "pois": ...}`` sections."""
    if not isinstance(payload, dict):
        raise CorruptSnapshotError(
            "tree snapshot %s does not hold a JSON object" % path
        )
    if "version" not in payload:
        raise CorruptSnapshotError(
            "tree snapshot %s lacks a format version marker" % path,
            section="config",
        )
    version = payload["version"]
    _check_version(version, "tree")
    if version == 1:
        # Legacy flat layout, no checksums: the payload doubles as the
        # config section and carries the POI list inline.
        legacy = dict(payload)
        pois = legacy.pop("pois", None)
        if pois is None:
            raise CorruptSnapshotError(
                "tree snapshot %s lacks its POI section" % path, section="pois"
            )
        legacy.pop("version", None)
        return {"config": legacy, "pois": pois}
    sections = payload.get("sections")
    checksums = payload.get("checksums")
    if not isinstance(sections, dict) or not isinstance(checksums, dict):
        raise CorruptSnapshotError(
            "tree snapshot %s lacks its section/checksum framing" % path
        )
    for name in ("config", "pois"):
        if name not in sections:
            raise CorruptSnapshotError(
                "tree snapshot %s is missing section %r" % (path, name),
                section=name,
            )
        if name not in checksums:
            raise CorruptSnapshotError(
                "tree snapshot %s lacks a checksum for section %r" % (path, name),
                section=name,
            )
        actual = _crc_json(sections[name])
        if actual != checksums[name]:
            raise CorruptSnapshotError(
                "tree section %r failed its CRC-32 check "
                "(stored %r, computed %d)" % (name, checksums[name], actual),
                section=name,
            )
    return sections


def load_tree(path, stats=None, opener=None, **overrides):
    """Rebuild a TAR-tree written by :func:`save_tree`.

    ``overrides`` are forwarded to the ``TARTree`` constructor (e.g. a
    different ``tia_buffer_slots``); the indexed content is always the
    saved one.  Raises :class:`CorruptSnapshotError` on truncated or
    bit-flipped snapshots and ``ValueError`` on unknown format versions.
    """
    from repro.core.tar_tree import POI, TARTree

    if opener is None:
        opener = open
    with opener(path) as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:  # json.JSONDecodeError subclasses ValueError
            raise CorruptSnapshotError(
                "tree snapshot %s is not valid JSON (truncated or corrupt): %s"
                % (path, exc)
            )
    sections = _tree_payload_sections(path, payload)
    config_json = sections["config"]
    try:
        config = dict(
            world=Rect(
                config_json["world"]["lows"], config_json["world"]["highs"]
            ),
            clock=_clock_from_json(config_json["clock"]),
            current_time=config_json["current_time"],
            strategy=config_json["strategy"],
            node_size=config_json["node_size"],
            tia_backend=config_json["tia_backend"],
            aggregate_kind=config_json["aggregate_kind"],
            stats=stats,
        )
        max_mean_rate = config_json["max_mean_rate"]
    except (KeyError, TypeError) as exc:
        raise CorruptSnapshotError(
            "tree snapshot %s has a malformed config section: %r" % (path, exc),
            section="config",
        )
    config.update(overrides)
    tree = TARTree(**config)
    # Restore the lambda-hat normaliser before placement so integral-3D
    # z-coordinates match the saved tree's.
    tree._max_mean_rate = max_mean_rate
    try:
        for poi_id, x, y, history in sections["pois"]:
            tree.insert_poi(POI(poi_id, x, y), {int(e): v for e, v in history})
    except (TypeError, ValueError) as exc:
        raise CorruptSnapshotError(
            "tree snapshot %s has a malformed POI section: %s" % (path, exc),
            section="pois",
        )
    # insert_poi keeps a running maximum and may have pushed it past the
    # saved normaliser (histories digested after the build drift upward
    # until refresh_aggregate_dimension).  Restore the exact saved value:
    # save -> load must reproduce the tree's state, not "heal" it, or
    # crash recovery could never reach a byte-identical snapshot.
    tree._max_mean_rate = max_mean_rate
    # Pre-WAL snapshots (and v1) lack the key; None means "replay
    # everything idempotently" rather than "nothing to replay".
    tree.applied_lsn = config_json.get("applied_lsn")
    return tree
