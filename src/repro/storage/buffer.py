"""An LRU buffer pool for simulated disk pages.

The paper keeps the R-tree in memory but makes the TIAs disk resident,
assigning "each TIA ... a maximum of 10 buffer slots".  A buffered page
access is free; a miss costs one (simulated) disk page access.  For the
*individual* query-processing baseline in Section 8.4 the TIAs get no
buffer at all, which is modelled here by ``capacity=0``.

Besides hit/miss counters the pool tracks *evictions* (pages pushed out
by the LRU policy) separately from deliberate drops (``invalidate`` /
``clear``), so chaos tests can assert exactly which pages are resident
and why one left.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable


class LRUBufferPool:
    """A least-recently-used buffer over opaque page identifiers.

    Parameters
    ----------
    capacity:
        Number of page slots.  ``0`` disables buffering entirely (every
        access is a miss).

    The pool does not store page contents — the library keeps all data in
    Python objects — it only simulates the hit/miss behaviour needed for
    faithful page-access accounting.

    Counter contract: ``hits + misses`` equals the number of ``access``
    calls; ``evictions`` counts only capacity-driven LRU drops, never
    pages removed by :meth:`invalidate` or :meth:`clear` (those are
    deliberate, not pressure).  ``reset_counters`` zeroes all three.
    """

    __slots__ = ("capacity", "_slots", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0, got %d" % capacity)
        self.capacity = capacity
        self._slots: OrderedDict[Hashable, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, page_id: Hashable) -> bool:
        """Touch ``page_id``; return ``True`` on a buffer hit."""
        if self.capacity == 0:
            self.misses += 1
            return False
        slots = self._slots
        if page_id in slots:
            slots.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        slots[page_id] = True
        if len(slots) > self.capacity:
            slots.popitem(last=False)
            self.evictions += 1
        return False

    def invalidate(self, page_id: Hashable) -> bool:
        """Drop ``page_id`` from the pool (e.g. after a page is freed).

        Returns ``True`` when the page was resident.  Deliberate drops
        are not counted as evictions.
        """
        return self._slots.pop(page_id, None) is not None

    def clear(self) -> int:
        """Empty the pool; returns the number of pages dropped.

        Neither the hit/miss counters nor the eviction counter move —
        ``clear`` models a deliberate flush, not cache pressure, so a
        later :meth:`invalidate` of a cleared page correctly reports the
        page as absent.
        """
        dropped = len(self._slots)
        self._slots.clear()
        return dropped

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def resident_pages(self) -> tuple[Hashable, ...]:
        """Resident page ids, least- to most-recently used."""
        return tuple(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, page_id: Hashable) -> bool:
        return page_id in self._slots

    def __repr__(self) -> str:
        return (
            "LRUBufferPool(capacity=%d, resident=%d, hits=%d, misses=%d, "
            "evictions=%d)"
            % (
                self.capacity,
                len(self._slots),
                self.hits,
                self.misses,
                self.evictions,
            )
        )
