"""An LRU buffer pool for simulated disk pages.

The paper keeps the R-tree in memory but makes the TIAs disk resident,
assigning "each TIA ... a maximum of 10 buffer slots".  A buffered page
access is free; a miss costs one (simulated) disk page access.  For the
*individual* query-processing baseline in Section 8.4 the TIAs get no
buffer at all, which is modelled here by ``capacity=0``.
"""

from collections import OrderedDict


class LRUBufferPool:
    """A least-recently-used buffer over opaque page identifiers.

    Parameters
    ----------
    capacity:
        Number of page slots.  ``0`` disables buffering entirely (every
        access is a miss).

    The pool does not store page contents — the library keeps all data in
    Python objects — it only simulates the hit/miss behaviour needed for
    faithful page-access accounting.
    """

    __slots__ = ("capacity", "_slots", "hits", "misses")

    def __init__(self, capacity):
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0, got %d" % capacity)
        self.capacity = capacity
        self._slots = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_id):
        """Touch ``page_id``; return ``True`` on a buffer hit."""
        if self.capacity == 0:
            self.misses += 1
            return False
        slots = self._slots
        if page_id in slots:
            slots.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        slots[page_id] = True
        if len(slots) > self.capacity:
            slots.popitem(last=False)
        return False

    def invalidate(self, page_id):
        """Drop ``page_id`` from the pool (e.g. after a page is freed)."""
        self._slots.pop(page_id, None)

    def clear(self):
        """Empty the pool without resetting the hit/miss counters."""
        self._slots.clear()

    def reset_counters(self):
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._slots)

    def __contains__(self, page_id):
        return page_id in self._slots

    def __repr__(self):
        return "LRUBufferPool(capacity=%d, resident=%d, hits=%d, misses=%d)" % (
            self.capacity,
            len(self._slots),
            self.hits,
            self.misses,
        )
