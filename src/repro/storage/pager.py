"""Node and page sizing rules.

The paper (Section 8, *Experiments Setup*) sets the R-tree node size to
1024 bytes "and hence the node capacities are 50 and 36 for 2- and
3-dimensional entries respectively".  Those numbers are consistent with a
16-byte node header, 4-byte coordinates and 4-byte child pointers:

* 2-D entry: 4 coordinates x 4 bytes + 4-byte pointer = 20 bytes, so
  ``(1024 - 16) // 20 == 50``.
* 3-D entry: 6 coordinates x 4 bytes + 4-byte pointer = 28 bytes, so
  ``(1024 - 16) // 28 == 36``.

This module encodes that layout so every index in the library derives its
fan-out from a node size in bytes, which is the knob varied in Figure 12.
"""

from __future__ import annotations

NODE_HEADER_BYTES = 16
"""Bytes reserved at the start of every node/page for bookkeeping."""

COORD_BYTES = 4
"""Bytes per stored coordinate (single-precision float on disk)."""

POINTER_BYTES = 4
"""Bytes per child pointer / record identifier."""

TEMPORAL_RECORD_BYTES = 12
"""Bytes per ``<ts, te, agg>`` temporal record (three 4-byte fields)."""

_MIN_CAPACITY = 4


def entry_bytes(dims: int) -> int:
    """Return the on-disk size of one R-tree entry with ``dims`` dimensions.

    An entry stores a ``dims``-dimensional rectangle (two coordinates per
    dimension) plus a child pointer.
    """
    if dims < 1:
        raise ValueError("dims must be >= 1, got %r" % (dims,))
    return 2 * dims * COORD_BYTES + POINTER_BYTES


def node_capacity(node_size_bytes: int, dims: int) -> int:
    """Return the entry capacity of a node of ``node_size_bytes`` bytes.

    >>> node_capacity(1024, 2)
    50
    >>> node_capacity(1024, 3)
    36
    """
    capacity = (node_size_bytes - NODE_HEADER_BYTES) // entry_bytes(dims)
    if capacity < _MIN_CAPACITY:
        raise ValueError(
            "node size %d bytes holds only %d %d-D entries; need at least %d"
            % (node_size_bytes, capacity, dims, _MIN_CAPACITY)
        )
    return capacity


def tia_leaf_capacity(page_size_bytes: int) -> int:
    """Return how many temporal records fit in one TIA leaf page."""
    capacity = (page_size_bytes - NODE_HEADER_BYTES) // TEMPORAL_RECORD_BYTES
    if capacity < _MIN_CAPACITY:
        raise ValueError(
            "page size %d bytes holds only %d temporal records; need at least %d"
            % (page_size_bytes, capacity, _MIN_CAPACITY)
        )
    return capacity


def tia_internal_capacity(page_size_bytes: int) -> int:
    """Return how many router entries fit in one TIA internal page.

    A router entry is a 4-byte separator key plus a 4-byte child pointer.
    """
    capacity = (page_size_bytes - NODE_HEADER_BYTES) // (COORD_BYTES + POINTER_BYTES)
    if capacity < _MIN_CAPACITY:
        raise ValueError(
            "page size %d bytes holds only %d router entries; need at least %d"
            % (page_size_bytes, capacity, _MIN_CAPACITY)
        )
    return capacity
