"""The aRB-tree: historical spatio-temporal range aggregation.

An aRB-tree (Papadias et al.; the paper's reference [26]) combines an
R-tree over space with, at every entry, a B-tree over time storing the
historical aggregate of the entry's whole subtree per timestamp.  A
temporal range aggregate query ``(rect, interval)`` — e.g. "how many
check-ins happened downtown last week" — descends only into entries
*partially* covered by ``rect``: a fully covered entry contributes its
own B-tree total without visiting the subtree, which is the structure's
entire point.

Differences from the TAR-tree, deliberately preserved because they are
what Section 2 of the kNNTA paper argues:

* per-entry temporal indexes store the **sum** over the subtree (an
  aggregate value), not the per-epoch maximum — good for totals,
  useless as a ranking upper bound for individual POIs;
* the query returns a **number**, not POIs;
* the temporal component indexes **equi-length epochs** ("timestamps");
  the constructor rejects varied-length clocks.

Implementation notes: the spatial skeleton is built with the same
R*-tree machinery as the TAR-tree (via STR bulk packing for static
builds and R*-style insertion for maintenance); the per-entry B-trees
reuse :class:`~repro.temporal.tia.PagedTIA` with sum semantics and the
same buffer/access accounting, so query costs are comparable with the
rest of the library.
"""

from repro.core.tar_tree import POI
from repro.spatial.bulk import str_partition
from repro.spatial.geometry import Rect
from repro.spatial.rstar import (
    Entry,
    Node,
    rstar_choose_subtree,
    rstar_split_groups,
)
from repro.storage.pager import node_capacity
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import (
    DEFAULT_TIA_BUFFER_SLOTS,
    DEFAULT_TIA_PAGE_SIZE,
    IntervalSemantics,
    make_tia_factory,
)


class ARBTree:
    """R-tree + per-entry temporal B-trees for range aggregate queries.

    Parameters mirror :class:`~repro.core.tar_tree.TARTree` where they
    overlap.  Only :class:`~repro.temporal.epochs.EpochClock` (uniform
    epochs) is accepted — the defining restriction of the structure.
    """

    def __init__(
        self,
        world,
        clock,
        node_size=1024,
        tia_backend="paged",
        tia_page_size=DEFAULT_TIA_PAGE_SIZE,
        tia_buffer_slots=DEFAULT_TIA_BUFFER_SLOTS,
        stats=None,
        min_fill_ratio=0.4,
    ):
        if not isinstance(clock, EpochClock):
            raise TypeError(
                "the aRB-tree's B-trees index equi-length timestamps; "
                "varied-length epochs are exactly what it cannot handle "
                "(use the TAR-tree instead)"
            )
        if world.dims != 2:
            raise ValueError("the world rectangle must be 2-D")
        self.world = world
        self.clock = clock
        self.capacity = node_capacity(node_size, dims=2)
        self.min_fill = max(1, int(self.capacity * min_fill_ratio))
        self.stats = stats if stats is not None else AccessStats()
        self._tia_factory = make_tia_factory(
            tia_backend,
            stats=self.stats,
            page_size=tia_page_size,
            buffer_slots=tia_buffer_slots,
        )
        self.root = Node(level=0)
        self._pois = {}
        self._poi_tias = {}
        self._leaf_of = {}
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, dataset, clock=None, epoch_length=7.0, **kwargs):
        """Bulk-build over a data set's effective POIs (STR packing)."""
        if clock is None:
            clock = EpochClock(dataset.t0, epoch_length)
        tree = cls(world=dataset.world, clock=clock, **kwargs)
        poi_ids = dataset.effective_poi_ids()
        counts = dataset.epoch_counts(clock, poi_ids)
        entries = []
        for poi_id in poi_ids:
            poi = POI(poi_id, *dataset.positions[poi_id])
            tia = tree._tia_factory()
            tia.replace_all(counts[poi_id])
            tree._pois[poi.poi_id] = poi
            tree._poi_tias[poi.poi_id] = tia
            entries.append(
                Entry(Rect.from_point(poi.point), item=poi.poi_id, tia=tia)
            )
        tree._pack(entries)
        tree._size = len(poi_ids)
        return tree

    def _pack(self, entries):
        level = 0
        while len(entries) > self.capacity:
            groups = str_partition(
                [entry.rect.center for entry in entries],
                self.capacity,
                min_fill=self.min_fill,
            )
            parents = []
            for group in groups:
                node = Node(level=level)
                node.entries = [entries[i] for i in group]
                for entry in node.entries:
                    if entry.child is not None:
                        entry.child.parent = node
                    else:
                        self._leaf_of[entry.item] = node
                parents.append(self._make_parent_entry(node))
            entries = parents
            level += 1
        root = Node(level=level)
        root.entries = entries
        for entry in root.entries:
            if entry.child is not None:
                entry.child.parent = root
            else:
                self._leaf_of[entry.item] = root
        self.root = root

    def _make_parent_entry(self, node):
        entry = Entry(
            Rect.union_all(e.rect for e in node.entries),
            child=node,
            tia=self._tia_factory(),
        )
        sums = {}
        for child in node.entries:
            for epoch, value in child.tia.items():
                sums[epoch] = sums.get(epoch, 0) + value
        entry.tia.replace_all(sums)
        return entry

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert_poi(self, poi, epoch_aggregates=None):
        """Insert one POI (R*-style placement, additive TIA propagation)."""
        if poi.poi_id in self._pois:
            raise ValueError("POI %r is already indexed" % (poi.poi_id,))
        tia = self._tia_factory()
        if epoch_aggregates:
            tia.replace_all(epoch_aggregates)
        self._pois[poi.poi_id] = poi
        self._poi_tias[poi.poi_id] = tia
        entry = Entry(Rect.from_point(poi.point), item=poi.poi_id, tia=tia)
        node = self.root
        while not node.is_leaf:
            rects = [e.rect for e in node.entries]
            index = rstar_choose_subtree(
                rects, entry.rect, children_are_leaves=(node.level == 1)
            )
            node = node.entries[index].child
        node.entries.append(entry)
        self._leaf_of[poi.poi_id] = node
        self._propagate_addition(node, entry)
        self._size += 1
        if len(node.entries) > self.capacity:
            self._split(node)

    def digest_epoch(self, epoch_index, counts):
        """Add one epoch's check-in counts along the affected paths."""
        for poi_id, delta in counts.items():
            if delta <= 0:
                continue
            tia = self._poi_tias[poi_id]
            tia.add(epoch_index, delta)
            node = self._leaf_of[poi_id]
            while node.parent is not None:
                parent = node.parent
                parent.entry_for_child(node).tia.add(epoch_index, delta)
                node = parent

    def _propagate_addition(self, node, entry):
        items = list(entry.tia.items())
        while node.parent is not None:
            parent = node.parent
            parent_entry = parent.entry_for_child(node)
            parent_entry.rect = parent_entry.rect.union(entry.rect)
            for epoch, value in items:
                parent_entry.tia.add(epoch, value)
            node = parent

    def _split(self, node):
        group_a, group_b = rstar_split_groups(
            [e.rect for e in node.entries], self.min_fill
        )
        entries = node.entries
        sibling = Node(level=node.level)
        node.entries = [entries[i] for i in group_a]
        sibling.entries = [entries[i] for i in group_b]
        for entry in sibling.entries:
            if entry.child is not None:
                entry.child.parent = sibling
            else:
                self._leaf_of[entry.item] = sibling
        if node is self.root:
            new_root = Node(level=node.level + 1)
            new_root.entries.append(self._make_parent_entry(node))
            new_root.entries.append(self._make_parent_entry(sibling))
            node.parent = new_root
            sibling.parent = new_root
            self.root = new_root
            return
        parent = node.parent
        stale = parent.entry_for_child(node)
        self._refresh_parent_entry(stale, node)
        parent.entries.append(self._make_parent_entry(sibling))
        sibling.parent = parent
        # Ancestors keep correct sums (the split moved values, total
        # unchanged) but need their rects refreshed.
        walker = parent
        while walker.parent is not None:
            up = walker.parent
            up.entry_for_child(walker).rect = Rect.union_all(
                e.rect for e in walker.entries
            )
            walker = up
        if len(parent.entries) > self.capacity:
            self._split(parent)

    def _refresh_parent_entry(self, entry, node):
        entry.rect = Rect.union_all(e.rect for e in node.entries)
        sums = {}
        for child in node.entries:
            for epoch, value in child.tia.items():
                sums[epoch] = sums.get(epoch, 0) + value
        entry.tia.replace_all(sums)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_aggregate(self, rect, interval, semantics=IntervalSemantics.INTERSECTS):
        """Total check-ins of POIs in ``rect`` during ``interval``.

        Entries fully inside ``rect`` contribute their subtree total from
        their own B-tree *without being descended* — the aRB-tree's
        selling point.  Note the distinct-counting caveat of the original
        structure does not arise here because check-ins are point events.
        """
        if not self.root.entries:
            return 0
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.record_node(node.is_leaf)
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if rect.contains_rect(entry.rect):
                    total += entry.tia.aggregate(self.clock, interval, semantics)
                elif entry.child is not None:
                    stack.append(entry.child)
                # A partially covered *leaf* entry is a point not inside
                # the rect (points are either contained or disjoint), so
                # nothing to add.
        return total

    def __len__(self):
        return self._size

    def node_count(self):
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)
        return count

    def check_invariants(self):
        """Structural and sum-consistency checks.

        Raises ``AssertionError`` on a violation; explicit ``raise``
        statements, not ``assert``, so the checks survive ``python -O``.
        """
        stack = [(self.root, None)]
        count = 0
        while stack:
            node, parent = stack.pop()
            if node.parent is not parent:
                raise AssertionError("broken parent pointer")
            if node.is_leaf:
                count += len(node.entries)
                for entry in node.entries:
                    if self._leaf_of[entry.item] is not node:
                        raise AssertionError(
                            "stale leaf index for POI %r" % (entry.item,)
                        )
            else:
                for entry in node.entries:
                    child = entry.child
                    if child.level != node.level - 1:
                        raise AssertionError(
                            "level mismatch below node %d" % node.node_id
                        )
                    if entry.rect != Rect.union_all(
                        e.rect for e in child.entries
                    ):
                        raise AssertionError("stale rect")
                    sums = {}
                    for grandchild in child.entries:
                        for epoch, value in grandchild.tia.items():
                            sums[epoch] = sums.get(epoch, 0) + value
                    if dict(entry.tia.items()) != sums:
                        raise AssertionError("stale subtree sum")
                    stack.append((child, node))
        if count != self._size:
            raise AssertionError(
                "size mismatch: %d != %d" % (count, self._size)
            )

    def __repr__(self):
        return "ARBTree(pois=%d, nodes=%d)" % (self._size, self.node_count())
