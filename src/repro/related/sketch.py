"""The sketch index: distinct counting over regions and time (Section 2).

Tao et al. ("Spatio-temporal aggregation using sketches", the paper's
reference [24]) address the aRB-tree's *distinct counting problem* — an
object remaining in a query region across several timestamps is counted
once per timestamp — by replacing the per-entry historical counts with
Flajolet–Martin (FM) sketches of the distinct object identifiers.
Sketches are unionable, so a region/time query merges the covered
sketches and estimates the number of *distinct* visitors.

The kNNTA paper dismisses this structure for its own problem for the
same reasons as the aRB-tree (aggregate values rather than ranked POIs,
equi-length epochs); implementing it makes the related-work landscape
complete and gives the library a genuine distinct-count index.

Two pieces:

* :class:`FMSketch` — the classic probabilistic distinct counter:
  ``m`` bitmaps, each recording the position of the lowest set bit of a
  hash; the estimate is ``(2 ** mean(R)) / phi`` with Flajolet &
  Martin's correction factor ``phi ~ 0.77351``.
* :class:`SketchIndex` — an STR-packed R-tree whose entries carry, per
  epoch, the FM sketch of the distinct visitor ids in their subtree.
  ``distinct_count(rect, interval)`` merges sketches exactly like the
  aRB-tree sums counts: fully covered entries contribute without
  descent.
"""

import hashlib
import math

from repro.spatial.bulk import str_partition
from repro.spatial.geometry import Rect
from repro.spatial.rstar import Entry, Node
from repro.storage.pager import node_capacity
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import IntervalSemantics

_PHI = 0.77351
"""Flajolet–Martin bias correction constant."""


class FMSketch:
    """A Flajolet–Martin distinct-count sketch.

    Parameters
    ----------
    num_bitmaps:
        Number of independent bitmaps (averaging over them trades space
        for accuracy; the standard error is about ``0.78 / sqrt(m)``).
    bits:
        Bitmap width; 32 bits count up to billions of distinct items.
    """

    __slots__ = ("num_bitmaps", "bits", "_bitmaps")

    def __init__(self, num_bitmaps=32, bits=32):
        if num_bitmaps < 1:
            raise ValueError("need at least one bitmap")
        self.num_bitmaps = num_bitmaps
        self.bits = bits
        self._bitmaps = [0] * num_bitmaps

    def _hash(self, item, bitmap_index):
        digest = hashlib.blake2b(
            repr(item).encode(), digest_size=8, salt=bitmap_index.to_bytes(4, "little")
        ).digest()
        return int.from_bytes(digest, "little")

    @staticmethod
    def _rho(value, bits):
        """Position of the lowest set bit (0-based), capped at ``bits-1``."""
        if value == 0:
            return bits - 1
        return min((value & -value).bit_length() - 1, bits - 1)

    def add(self, item):
        """Record one occurrence of ``item`` (duplicates are free)."""
        for index in range(self.num_bitmaps):
            position = self._rho(self._hash(item, index), self.bits)
            self._bitmaps[index] |= 1 << position

    def union(self, other):
        """Merge ``other`` into this sketch (set union of the streams)."""
        if (
            other.num_bitmaps != self.num_bitmaps
            or other.bits != self.bits
        ):
            raise ValueError("cannot union sketches with different shapes")
        self._bitmaps = [
            mine | theirs for mine, theirs in zip(self._bitmaps, other._bitmaps)
        ]
        return self

    def copy(self):
        fresh = FMSketch(self.num_bitmaps, self.bits)
        fresh._bitmaps = list(self._bitmaps)
        return fresh

    def estimate(self):
        """Estimated number of distinct items added so far."""
        if not any(self._bitmaps):
            return 0.0
        total_r = 0
        for bitmap in self._bitmaps:
            r = 0
            while bitmap & (1 << r):
                r += 1
            total_r += r
        return (2.0 ** (total_r / self.num_bitmaps)) / _PHI

    @property
    def is_empty(self):
        return not any(self._bitmaps)

    def __repr__(self):
        return "FMSketch(m=%d, estimate=%.1f)" % (self.num_bitmaps, self.estimate())


class _SketchSeries:
    """Per-epoch FM sketches for one index entry."""

    __slots__ = ("num_bitmaps", "_epochs")

    def __init__(self, num_bitmaps):
        self.num_bitmaps = num_bitmaps
        self._epochs = {}

    def add(self, epoch, visitor):
        sketch = self._epochs.get(epoch)
        if sketch is None:
            sketch = self._epochs[epoch] = FMSketch(self.num_bitmaps)
        sketch.add(visitor)

    def union_into(self, target_series):
        for epoch, sketch in self._epochs.items():
            existing = target_series._epochs.get(epoch)
            if existing is None:
                target_series._epochs[epoch] = sketch.copy()
            else:
                existing.union(sketch)

    def merge_over(self, epochs, accumulator):
        for epoch in epochs:
            sketch = self._epochs.get(epoch)
            if sketch is not None:
                accumulator.union(sketch)

    def items(self):
        return self._epochs.items()


class SketchIndex:
    """R-tree + per-entry, per-epoch FM sketches of distinct visitors.

    Static structure built over per-check-in ``(poi_id, visitor_id,
    time)`` records; answers ``distinct_count(rect, interval)`` — the
    number of distinct visitors seen at POIs inside ``rect`` during
    ``interval`` — without double counting returnees, which is exactly
    where the plain aRB-tree over-counts.
    """

    def __init__(
        self,
        world,
        clock,
        node_size=1024,
        num_bitmaps=32,
        stats=None,
        min_fill_ratio=0.4,
    ):
        if not isinstance(clock, EpochClock):
            raise TypeError(
                "the sketch index shares the aRB-tree's equi-length "
                "timestamp restriction"
            )
        if world.dims != 2:
            raise ValueError("the world rectangle must be 2-D")
        self.world = world
        self.clock = clock
        self.capacity = node_capacity(node_size, dims=2)
        self.min_fill = max(1, int(self.capacity * min_fill_ratio))
        self.num_bitmaps = num_bitmaps
        self.stats = stats if stats is not None else AccessStats()
        self.root = Node(level=0)
        self._size = 0

    @classmethod
    def build(cls, positions, checkins, world, clock, **kwargs):
        """Build from ``{poi_id: (x, y)}`` and ``[(poi_id, visitor, t)]``."""
        index = cls(world=world, clock=clock, **kwargs)
        series = {
            poi_id: _SketchSeries(index.num_bitmaps) for poi_id in positions
        }
        for poi_id, visitor, t in checkins:
            series[poi_id].add(index.clock.epoch_of(t), visitor)
        entries = [
            Entry(
                Rect.from_point(positions[poi_id]),
                item=poi_id,
                tia=series[poi_id],
            )
            for poi_id in sorted(positions, key=repr)
        ]
        index._pack(entries)
        index._size = len(entries)
        return index

    def _pack(self, entries):
        level = 0
        while len(entries) > self.capacity:
            groups = str_partition(
                [entry.rect.center for entry in entries],
                self.capacity,
                min_fill=self.min_fill,
            )
            parents = []
            for group in groups:
                node = Node(level=level)
                node.entries = [entries[i] for i in group]
                for entry in node.entries:
                    if entry.child is not None:
                        entry.child.parent = node
                parents.append(self._make_parent_entry(node))
            entries = parents
            level += 1
        root = Node(level=level)
        root.entries = entries
        for entry in root.entries:
            if entry.child is not None:
                entry.child.parent = root
        self.root = root

    def _make_parent_entry(self, node):
        series = _SketchSeries(self.num_bitmaps)
        for child in node.entries:
            child.tia.union_into(series)
        return Entry(
            Rect.union_all(e.rect for e in node.entries),
            child=node,
            tia=series,
        )

    def distinct_count(self, rect, interval, semantics=IntervalSemantics.INTERSECTS):
        """Estimated distinct visitors in ``rect`` during ``interval``."""
        epochs = list(self.clock.epoch_range(interval, semantics))
        accumulator = FMSketch(self.num_bitmaps)
        if not self.root.entries or not epochs:
            return 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.record_node(node.is_leaf)
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if rect.contains_rect(entry.rect):
                    entry.tia.merge_over(epochs, accumulator)
                elif entry.child is not None:
                    stack.append(entry.child)
        return accumulator.estimate()

    def __len__(self):
        return self._size

    def __repr__(self):
        return "SketchIndex(pois=%d, m=%d)" % (self._size, self.num_bitmaps)
