"""Related-work structures the paper positions the TAR-tree against.

Section 2 discusses the aRB-tree (Papadias et al., "Historical
spatio-temporal aggregation"), which answers *temporal range aggregate*
queries — "return the number of cars in the city center during the last
hour" — and explains why it cannot be adapted to the kNNTA query: it
returns aggregate values rather than ranked POIs, and its per-entry
B-trees index timestamps, so varied-length epochs do not fit.  The
implementation here makes those arguments concrete (and testable) and
gives the library a genuine temporal range-aggregate index as a bonus.
"""

from repro.related.arb_tree import ARBTree
from repro.related.sketch import FMSketch, SketchIndex

__all__ = ["ARBTree", "FMSketch", "SketchIndex"]
