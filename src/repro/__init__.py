"""repro — a reproduction of "K-Nearest Neighbor Temporal Aggregate Queries".

The library implements the TAR-tree index, the kNNTA query, the paper's
cost model and its two query enhancements (minimum weight adjustment and
collective processing), together with every substrate they rest on: an
R*-tree, temporal indexes on the aggregate, a disk/buffer simulation,
skyline algorithms, discrete power-law fitting, and synthetic LBSN data
generators calibrated to the paper's data sets.

Quickstart::

    from repro import datasets, KNNTAQuery, TARTree, TimeInterval

    data = datasets.make("NYC", scale=0.05, seed=7)
    tree = TARTree.build(data)
    query = KNNTAQuery((0.4, 0.6), TimeInterval(0, 28), k=10, alpha0=0.3)
    results = tree.query(query)

One :class:`~repro.core.query.KNNTAQuery` value serves every entry
point — ``tree.query``, the fault-tolerant ``tree.robust_query``, the
module-level :func:`knnta_search` / :func:`sequential_scan` /
:func:`robust_knnta`, and the enhancement APIs — and every answer they
return satisfies the :class:`~repro.core.query.Answer` protocol
(``rows`` / ``exact`` / ``coverage`` / ``score_bound``) while its rows
destructure like :class:`~repro.core.query.QueryResult`.  The old
``tree.knnta`` / ``tree.robust_knnta`` facades survive as deprecated
always-warning shims.

Queries run on packed per-node buffers (:mod:`repro.core.frames`) kept
coherent through the tree's mutation hooks; answers are bit-identical
to the object-path traversal, just faster.

For concurrent serving, :class:`~repro.service.QueryService` wraps a
tree behind collective micro-batching, a readers-writer lock and a
background integrity scrubber (``python -m repro serve`` exposes it
over TCP).  To scale past one tree, :mod:`repro.cluster` shards the
dataset spatially behind a :class:`~repro.cluster.ClusterTree`
coordinator with the same query surface (``python -m repro shard`` /
``serve --cluster``).

Standing queries live in :mod:`repro.continuous`: a
:class:`~repro.continuous.SubscriptionRegistry` re-evaluates sliding-
window kNNTA subscriptions incrementally as epochs are digested and
pushes ordered top-k deltas (``python -m repro watch``; see
``docs/CONTINUOUS.md``).
"""

__version__ = "0.3.0"

from repro.cluster import (
    ClusterDegradedError,
    ClusterStateError,
    ClusterTree,
    DegradedAnswer,
    ResilienceConfig,
    ShardPlan,
    open_cluster,
    plan_shards,
    recover_cluster,
    save_cluster,
)
from repro.continuous import (
    DeltaKind,
    SubscriptionRegistry,
    TopKDelta,
    WindowState,
    WindowUpdate,
    window_state,
)
from repro.core.collective import CollectiveProcessor
from repro.core.costmodel import CostModel
from repro.core.knnta import knnta_browse, knnta_search
from repro.core.mwa import minimum_weight_adjustment, weight_adjustment_sequence
from repro.core.query import Answer, KNNTAQuery, QueryResult, RankedAnswer
from repro.core.scan import sequential_scan
from repro.core.tar_tree import POI, TARTree, UnloggedMutationError
from repro.reliability.faults import FaultInjector, TransientIOError
from repro.reliability.recovery import (
    CheckpointedIngest,
    RecoveryReport,
    RetryPolicy,
    RobustAnswer,
    recover,
    robust_knnta,
)
from repro.reliability.validate import validate_against_dataset, validate_tree
from repro.reliability.wal import MutationWAL, WalRecord, read_wal
from repro.service import (
    QueryService,
    RequestTimeoutError,
    ServiceConfig,
    ServiceOverloadedError,
    ServiceStats,
)
from repro.storage.serialize import CorruptSnapshotError
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock, TimeInterval, VariedEpochClock
from repro.temporal.tia import AggregateKind, IntervalSemantics

__all__ = [
    "TARTree",
    "POI",
    "KNNTAQuery",
    "QueryResult",
    "Answer",
    "RankedAnswer",
    "TimeInterval",
    "EpochClock",
    "VariedEpochClock",
    "IntervalSemantics",
    "AggregateKind",
    "AccessStats",
    "CostModel",
    "CollectiveProcessor",
    "knnta_search",
    "knnta_browse",
    "sequential_scan",
    "minimum_weight_adjustment",
    "weight_adjustment_sequence",
    "FaultInjector",
    "TransientIOError",
    "RetryPolicy",
    "CheckpointedIngest",
    "MutationWAL",
    "WalRecord",
    "read_wal",
    "recover",
    "RecoveryReport",
    "RobustAnswer",
    "robust_knnta",
    "UnloggedMutationError",
    "QueryService",
    "SubscriptionRegistry",
    "WindowUpdate",
    "WindowState",
    "window_state",
    "TopKDelta",
    "DeltaKind",
    "ServiceConfig",
    "ServiceStats",
    "ServiceOverloadedError",
    "RequestTimeoutError",
    "validate_tree",
    "validate_against_dataset",
    "CorruptSnapshotError",
    "ClusterTree",
    "ClusterStateError",
    "ClusterDegradedError",
    "DegradedAnswer",
    "ResilienceConfig",
    "ShardPlan",
    "plan_shards",
    "save_cluster",
    "open_cluster",
    "recover_cluster",
    "__version__",
]
