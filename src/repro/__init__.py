"""repro — a reproduction of "K-Nearest Neighbor Temporal Aggregate Queries".

The library implements the TAR-tree index, the kNNTA query, the paper's
cost model and its two query enhancements (minimum weight adjustment and
collective processing), together with every substrate they rest on: an
R*-tree, temporal indexes on the aggregate, a disk/buffer simulation,
skyline algorithms, discrete power-law fitting, and synthetic LBSN data
generators calibrated to the paper's data sets.

Quickstart::

    from repro import datasets, TARTree, TimeInterval

    data = datasets.make("NYC", scale=0.05, seed=7)
    tree = TARTree.build(data)
    results = tree.knnta(q=(0.4, 0.6), interval=TimeInterval(0, 28),
                         k=10, alpha0=0.3)
"""

__version__ = "0.2.0"

from repro.core.collective import CollectiveProcessor
from repro.core.costmodel import CostModel
from repro.core.knnta import knnta_browse, knnta_search
from repro.core.mwa import minimum_weight_adjustment, weight_adjustment_sequence
from repro.core.query import KNNTAQuery, QueryResult
from repro.core.scan import sequential_scan
from repro.core.tar_tree import POI, TARTree
from repro.reliability.faults import FaultInjector, TransientIOError
from repro.reliability.recovery import (
    CheckpointedIngest,
    RetryPolicy,
    recover,
    robust_knnta,
)
from repro.reliability.validate import validate_against_dataset, validate_tree
from repro.storage.serialize import CorruptSnapshotError
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock, TimeInterval, VariedEpochClock
from repro.temporal.tia import AggregateKind, IntervalSemantics

__all__ = [
    "TARTree",
    "POI",
    "KNNTAQuery",
    "QueryResult",
    "TimeInterval",
    "EpochClock",
    "VariedEpochClock",
    "IntervalSemantics",
    "AggregateKind",
    "AccessStats",
    "CostModel",
    "CollectiveProcessor",
    "knnta_search",
    "knnta_browse",
    "sequential_scan",
    "minimum_weight_adjustment",
    "weight_adjustment_sequence",
    "FaultInjector",
    "TransientIOError",
    "RetryPolicy",
    "CheckpointedIngest",
    "recover",
    "robust_knnta",
    "validate_tree",
    "validate_against_dataset",
    "CorruptSnapshotError",
    "__version__",
]
