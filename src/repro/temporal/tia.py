"""TIA — the temporal index on the aggregate (Section 4.1).

A TIA stores, per epoch with at least one check-in, one ``<ts, te, agg>``
record.  Every TAR-tree entry owns one: leaf-entry TIAs hold the POI's
own per-epoch counts; internal-entry TIAs hold the per-epoch *maximum*
over the child entries, which is what makes the ranking function
consistent (Property 1).

Two backends are provided:

* :class:`MemoryTIA` — a dict; no simulated I/O.  Fast, used for tests
  and for configurations where the temporal data is assumed in-memory.
* :class:`PagedTIA` — a paged B+-tree keyed by epoch index whose every
  page touch goes through a private LRU buffer (the paper assigns each
  TIA at most 10 buffer slots) and records misses into a shared
  :class:`~repro.storage.stats.AccessStats`.

The paper implements the TIA with a disk-based multi-version B-tree;
:mod:`repro.temporal.mvbt` provides that structure as well.  For the
append-mostly, epoch-keyed workload here a B+-tree is operationally
equivalent (same logarithmic search, same leaf-chain range scan) and is
the default.
"""

from __future__ import annotations

import enum
import itertools
import zlib
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from repro.storage.buffer import LRUBufferPool
from repro.storage.pager import tia_internal_capacity, tia_leaf_capacity
from repro.temporal.records import TemporalRecord

if TYPE_CHECKING:
    from repro.storage.stats import AccessStats
    from repro.temporal.epochs import EpochClock, TimeInterval, VariedEpochClock

    Clock = EpochClock | VariedEpochClock

DEFAULT_TIA_BUFFER_SLOTS = 10
DEFAULT_TIA_PAGE_SIZE = 256


class IntervalSemantics(enum.Enum):
    """How epochs are matched against the query interval ``Iq``.

    Section 3 defines the aggregate over the epochs that *intersect*
    ``Iq``; Section 4.3 describes the TIA returning records *contained*
    in ``Iq``.  Both are supported; a query applies one semantics
    consistently at every tree level, which preserves consistency.
    """

    INTERSECTS = "intersects"
    CONTAINED = "contained"


class AggregateKind(enum.Enum):
    """Which temporal aggregate the index ranks by (Section 3.1).

    The paper focuses on the *count* of check-ins but notes the methods
    "easily extend to other aggregates".  The kinds below all admit the
    per-epoch-maximum upper bound that Property 1 (BFS consistency)
    requires:

    * ``COUNT`` — number of check-ins; per-epoch values are counts and
      the interval aggregate is their sum.
    * ``SUM`` — sum of a non-negative check-in attribute (e.g. likes);
      identical machinery with weighted per-epoch values.
    * ``MAX`` — largest per-epoch value inside the interval (e.g. the
      peak hourly crowd); the interval aggregate is a max, not a sum.

    ``average`` (= sum/count) is deliberately not offered: it has no
    upper bound derivable from the per-epoch maxima of a single TIA, so
    it cannot be indexed without pairing two TIAs per entry; rank by
    ``SUM`` and divide by the interval length at presentation time
    instead.
    """

    COUNT = "count"
    SUM = "sum"
    MAX = "max"

    def combine(
        self,
        tia: BaseTIA,
        clock: Clock,
        interval: TimeInterval,
        semantics: IntervalSemantics,
    ) -> int:
        """Evaluate this aggregate on ``tia`` over ``interval``."""
        epoch_range = clock.epoch_range(interval, semantics)
        if not epoch_range:
            return 0
        if self is AggregateKind.MAX:
            return tia.range_max(epoch_range.start, epoch_range.stop - 1)
        return tia.range_sum(epoch_range.start, epoch_range.stop - 1)


class BaseTIA:
    """Interface shared by the TIA backends.

    Epochs are addressed by index (see :mod:`repro.temporal.epochs`);
    values are non-negative ints.  A value of zero is never stored — the
    TIA only keeps non-zero aggregates, exactly as in the paper.
    """

    def get(self, epoch_index: int) -> int:
        """Aggregate stored for ``epoch_index`` (0 when absent)."""
        raise NotImplementedError

    def set(self, epoch_index: int, agg: int) -> None:
        """Store ``agg`` for ``epoch_index`` (overwrite; drop when 0)."""
        raise NotImplementedError

    def raise_to(self, epoch_index: int, agg: int) -> bool:
        """Raise the stored value to at least ``agg``.

        Returns ``True`` when the stored value changed.  This is the
        update internal entries apply when a child reports a larger
        per-epoch aggregate.
        """
        if agg <= 0:
            return False
        current = self.get(epoch_index)
        if agg > current:
            self.set(epoch_index, agg)
            return True
        return False

    def add(self, epoch_index: int, delta: int) -> None:
        """Add ``delta`` check-ins to ``epoch_index`` (leaf-entry update)."""
        if delta == 0:
            return
        self.set(epoch_index, self.get(epoch_index) + delta)

    def range_sum(self, first_epoch: int, last_epoch: int) -> int:
        """Sum of aggregates over epoch indices in ``[first, last]``."""
        raise NotImplementedError

    def range_max(self, first_epoch: int, last_epoch: int) -> int:
        """Largest aggregate over epoch indices in ``[first, last]``.

        Default implementation scans :meth:`items`; paged backends
        override it with an I/O-charged traversal.
        """
        best = 0
        for epoch, value in self.items():
            if first_epoch <= epoch <= last_epoch and value > best:
                best = value
        return best

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(epoch_index, agg)`` in epoch order."""
        raise NotImplementedError

    def replace_all(self, epoch_aggregates: Mapping[int, int]) -> None:
        """Replace the whole content with ``{epoch_index: agg}``."""
        raise NotImplementedError

    # -- derived operations --------------------------------------------------

    def aggregate(
        self,
        clock: Clock,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        kind: AggregateKind | None = None,
    ) -> int:
        """The temporal aggregate ``g`` over ``interval`` (un-normalised).

        Combines the stored records whose epoch matches ``interval``
        under the chosen semantics — a sum for ``COUNT``/``SUM`` (the
        default), a maximum for ``MAX``.
        """
        if kind is None:
            kind = AggregateKind.COUNT
        return kind.combine(self, clock, interval, semantics)

    def records(self, clock: Clock) -> list[TemporalRecord]:
        """Materialise the stored ``<ts, te, agg>`` triples."""
        return [
            TemporalRecord(*clock.bounds(index), agg) for index, agg in self.items()
        ]

    def total(self) -> int:
        """Sum over every stored epoch."""
        return sum(agg for _, agg in self.items())

    def mean_rate(self, num_epochs: int) -> float:
        """The paper's third-dimension statistic ``lambda-hat``.

        The average aggregate per epoch over ``num_epochs`` elapsed epochs
        (epochs without check-ins count as zero), i.e. the estimated
        Poisson rate of check-ins at the POI.
        """
        if num_epochs <= 0:
            return 0.0
        return self.total() / float(num_epochs)

    def as_dict(self) -> dict[int, int]:
        """Materialise the content as ``{epoch_index: agg}``.

        A structural read (like :meth:`items`): not charged as simulated
        I/O, used by validation, recovery and maintenance code.
        """
        return dict(self.items())

    def fingerprint(self) -> int:
        """CRC-32 over the canonical content; a cheap equality probe.

        Two TIAs storing the same per-epoch aggregates fingerprint
        identically regardless of backend — the hook for background
        scrubbing and for fast divergence checks in the reliability
        layer.
        """
        crc = 0
        for epoch, agg in self.items():
            crc = zlib.crc32(("%r:%r;" % (epoch, agg)).encode("ascii"), crc)
        return crc & 0xFFFFFFFF

    def __len__(self) -> int:
        return sum(1 for _ in self.items())


class MemoryTIA(BaseTIA):
    """Dict-backed TIA with no I/O simulation."""

    __slots__ = ("_epochs",)

    def __init__(self) -> None:
        self._epochs: dict[int, int] = {}

    def get(self, epoch_index: int) -> int:
        return self._epochs.get(epoch_index, 0)

    def set(self, epoch_index: int, agg: int) -> None:
        if agg < 0:
            raise ValueError("aggregate must be >= 0, got %r" % (agg,))
        if agg == 0:
            self._epochs.pop(epoch_index, None)
        else:
            self._epochs[epoch_index] = agg

    def range_sum(self, first_epoch: int, last_epoch: int) -> int:
        epochs = self._epochs
        if not epochs:
            return 0
        span = last_epoch - first_epoch + 1
        if span <= 0:
            return 0
        if span < len(epochs):
            return sum(
                epochs.get(i, 0) for i in range(first_epoch, last_epoch + 1)
            )
        return sum(
            agg for index, agg in epochs.items() if first_epoch <= index <= last_epoch
        )

    def range_max(self, first_epoch: int, last_epoch: int) -> int:
        return max(
            (
                agg
                for index, agg in self._epochs.items()
                if first_epoch <= index <= last_epoch
            ),
            default=0,
        )

    def items(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._epochs.items()))

    def replace_all(self, epoch_aggregates: Mapping[int, int]) -> None:
        self._epochs = {
            index: agg for index, agg in epoch_aggregates.items() if agg > 0
        }

    def __len__(self) -> int:
        return len(self._epochs)

    def __repr__(self) -> str:
        return "MemoryTIA(%d epochs, total=%d)" % (len(self._epochs), self.total())


# ---------------------------------------------------------------------------
# Paged B+-tree backend
# ---------------------------------------------------------------------------

_page_ids = itertools.count()


class _LeafPage:
    __slots__ = ("page_id", "keys", "values", "next")

    def __init__(self) -> None:
        self.page_id = next(_page_ids)
        self.keys: list[int] = []
        self.values: list[int] = []
        self.next: _LeafPage | None = None


class _InternalPage:
    __slots__ = ("page_id", "keys", "children")

    def __init__(self) -> None:
        self.page_id = next(_page_ids)
        # keys[i] is the smallest key reachable under children[i + 1].
        self.keys: list[int] = []
        self.children: list[_Page] = []


_Page = _LeafPage | _InternalPage


class PagedTIA(BaseTIA):
    """A TIA stored as a paged B+-tree keyed by epoch index.

    Every page touched by :meth:`get`, :meth:`set` or :meth:`range_sum`
    first consults the TIA's private LRU buffer; misses are recorded as
    TIA page accesses in the shared ``stats`` object.  Range sums walk the
    linked leaf chain, as a disk-based temporal index would.

    Parameters
    ----------
    stats:
        Shared :class:`~repro.storage.stats.AccessStats` (may be ``None``).
    page_size:
        Page size in bytes; record capacity follows the 12-byte
        ``<ts, te, agg>`` layout of :mod:`repro.storage.pager`.
    buffer_slots:
        LRU slots for this TIA (the paper's default is 10; Section 8.4's
        *individual* baseline uses 0).
    """

    __slots__ = ("stats", "leaf_capacity", "internal_capacity", "buffer", "_root", "_count")

    def __init__(
        self,
        stats: AccessStats | None = None,
        page_size: int = DEFAULT_TIA_PAGE_SIZE,
        buffer_slots: int = DEFAULT_TIA_BUFFER_SLOTS,
    ) -> None:
        self.stats = stats
        self.leaf_capacity = tia_leaf_capacity(page_size)
        self.internal_capacity = tia_internal_capacity(page_size)
        self.buffer = LRUBufferPool(buffer_slots)
        self._root: _Page = _LeafPage()
        self._count = 0

    # -- page access accounting ----------------------------------------------

    def _touch(self, page: _Page) -> None:
        hit = self.buffer.access(page.page_id)
        if self.stats is not None:
            self.stats.record_tia_page(buffered=hit)

    # -- navigation ------------------------------------------------------------

    def _descend(self, key: int) -> tuple[_LeafPage, list[tuple[_InternalPage, int]]]:
        """Return ``(leaf, path)`` for ``key``; path holds (internal, index)."""
        page = self._root
        path: list[tuple[_InternalPage, int]] = []
        while isinstance(page, _InternalPage):
            self._touch(page)
            index = self._child_index(page, key)
            path.append((page, index))
            page = page.children[index]
        self._touch(page)
        return page, path

    @staticmethod
    def _child_index(page: _InternalPage, key: int) -> int:
        index = 0
        keys = page.keys
        while index < len(keys) and key >= keys[index]:
            index += 1
        return index

    # -- BaseTIA operations ------------------------------------------------------

    def get(self, epoch_index: int) -> int:
        leaf, _ = self._descend(epoch_index)
        keys = leaf.keys
        for i, stored in enumerate(keys):
            if stored == epoch_index:
                return leaf.values[i]
            if stored > epoch_index:
                break
        return 0

    def set(self, epoch_index: int, agg: int) -> None:
        if agg < 0:
            raise ValueError("aggregate must be >= 0, got %r" % (agg,))
        leaf, path = self._descend(epoch_index)
        keys = leaf.keys
        position = len(keys)
        for i, stored in enumerate(keys):
            if stored == epoch_index:
                if agg == 0:
                    del leaf.keys[i]
                    del leaf.values[i]
                    self._count -= 1
                else:
                    leaf.values[i] = agg
                return
            if stored > epoch_index:
                position = i
                break
        if agg == 0:
            return
        leaf.keys.insert(position, epoch_index)
        leaf.values.insert(position, agg)
        self._count += 1
        if len(leaf.keys) > self.leaf_capacity:
            self._split_leaf(leaf, path)

    def _split_leaf(
        self, leaf: _LeafPage, path: list[tuple[_InternalPage, int]]
    ) -> None:
        mid = len(leaf.keys) // 2
        sibling = _LeafPage()
        sibling.keys = leaf.keys[mid:]
        sibling.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        sibling.next = leaf.next
        leaf.next = sibling
        self._insert_into_parent(leaf, sibling.keys[0], sibling, path)

    def _insert_into_parent(
        self,
        left: _Page,
        separator: int,
        right: _Page,
        path: list[tuple[_InternalPage, int]],
    ) -> None:
        if not path:
            root = _InternalPage()
            root.keys = [separator]
            root.children = [left, right]
            self._root = root
            return
        parent, index = path[-1]
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, right)
        if len(parent.children) > self.internal_capacity:
            self._split_internal(parent, path[:-1])

    def _split_internal(
        self, page: _InternalPage, path: list[tuple[_InternalPage, int]]
    ) -> None:
        mid = len(page.keys) // 2
        separator = page.keys[mid]
        sibling = _InternalPage()
        sibling.keys = page.keys[mid + 1 :]
        sibling.children = page.children[mid + 1 :]
        page.keys = page.keys[:mid]
        page.children = page.children[: mid + 1]
        self._insert_into_parent(page, separator, sibling, path)

    def range_sum(self, first_epoch: int, last_epoch: int) -> int:
        if last_epoch < first_epoch or self._count == 0:
            return 0
        leaf: _LeafPage | None
        leaf, _ = self._descend(first_epoch)
        total = 0
        while leaf is not None:
            done = False
            for key, value in zip(leaf.keys, leaf.values):
                if key < first_epoch:
                    continue
                if key > last_epoch:
                    done = True
                    break
                total += value
            if done:
                break
            leaf = leaf.next
            if leaf is not None:
                self._touch(leaf)
                if leaf.keys and leaf.keys[0] > last_epoch:
                    break
        return total

    def range_max(self, first_epoch: int, last_epoch: int) -> int:
        if last_epoch < first_epoch or self._count == 0:
            return 0
        leaf: _LeafPage | None
        leaf, _ = self._descend(first_epoch)
        best = 0
        while leaf is not None:
            done = False
            for key, value in zip(leaf.keys, leaf.values):
                if key < first_epoch:
                    continue
                if key > last_epoch:
                    done = True
                    break
                if value > best:
                    best = value
            if done:
                break
            leaf = leaf.next
            if leaf is not None:
                self._touch(leaf)
                if leaf.keys and leaf.keys[0] > last_epoch:
                    break
        return best

    def items(self) -> Iterator[tuple[int, int]]:
        # Structural iteration for maintenance/debugging; not charged as I/O.
        page: _Page | None = self._root
        while isinstance(page, _InternalPage):
            page = page.children[0]
        while page is not None:
            for key, value in zip(page.keys, page.values):
                yield key, value
            page = page.next

    def replace_all(self, epoch_aggregates: Mapping[int, int]) -> None:
        items = sorted(
            (index, agg) for index, agg in epoch_aggregates.items() if agg > 0
        )
        root = _LeafPage()
        self._root = root
        self._count = 0
        self.buffer.clear()
        # Bulk-load left to right; pages fill to capacity.
        leaves: list[_Page] = []
        current = root
        for key, value in items:
            if len(current.keys) >= self.leaf_capacity:
                fresh = _LeafPage()
                current.next = fresh
                leaves.append(current)
                current = fresh
            current.keys.append(key)
            current.values.append(value)
            self._count += 1
        leaves.append(current)
        self._root = self._build_internal_levels(leaves)

    def _build_internal_levels(self, pages: Sequence[_Page]) -> _Page:
        if len(pages) == 1:
            return pages[0]
        parents: list[_Page] = []
        current = _InternalPage()
        current.children.append(pages[0])
        for page in pages[1:]:
            if len(current.children) >= self.internal_capacity:
                parents.append(current)
                current = _InternalPage()
                current.children.append(page)
            else:
                current.keys.append(self._smallest_key(page))
                current.children.append(page)
        parents.append(current)
        return self._build_internal_levels(parents)

    @staticmethod
    def _smallest_key(page: _Page) -> int:
        while isinstance(page, _InternalPage):
            page = page.children[0]
        return page.keys[0]

    def __len__(self) -> int:
        return self._count

    def page_count(self) -> int:
        """Number of pages in the tree (walks the structure)."""
        count = 0
        stack: list[_Page] = [self._root]
        while stack:
            page = stack.pop()
            count += 1
            if isinstance(page, _InternalPage):
                stack.extend(page.children)
        return count

    def __repr__(self) -> str:
        return "PagedTIA(%d epochs, %d pages)" % (self._count, self.page_count())


def make_tia_factory(
    backend: str,
    stats: AccessStats | None = None,
    page_size: int = DEFAULT_TIA_PAGE_SIZE,
    buffer_slots: int = DEFAULT_TIA_BUFFER_SLOTS,
) -> Callable[[], BaseTIA]:
    """Return a zero-argument callable producing fresh TIAs.

    ``backend`` is ``"memory"``, ``"paged"`` or ``"mvbt"``.  The TAR-tree
    uses the factory to equip every new entry with its own TIA.
    """
    if backend == "memory":
        return MemoryTIA
    if backend == "paged":
        return lambda: PagedTIA(
            stats=stats, page_size=page_size, buffer_slots=buffer_slots
        )
    if backend == "mvbt":
        from repro.temporal.mvbt import MVBTTIA

        return lambda: MVBTTIA(
            stats=stats, page_size=page_size, buffer_slots=buffer_slots
        )
    raise ValueError("unknown TIA backend %r" % (backend,))
