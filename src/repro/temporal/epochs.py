"""Time intervals and epoch discretisation.

Times are floats in application units (the paper and our data sets use
days).  The application starts at ``t0``; an epoch clock partitions
``[t0, infinity)`` into consecutive epochs ``[ts, te)``.  Epochs "may be a
second, an hour or of varied lengths (e.g., one hour, two hours, four
hours, eight hours and so on) depending on the application" — both the
uniform and the varied-length flavours are implemented.
"""

from __future__ import annotations

import bisect
import math
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.temporal.tia import IntervalSemantics

_EPSILON = 1e-9


class TimeInterval:
    """A closed time interval ``[start, end]`` (the query's ``Iq``)."""

    __slots__ = ("start", "end")

    def __init__(self, start: float, end: float) -> None:
        start = float(start)
        end = float(end)
        if start > end:
            raise ValueError("interval start %r exceeds end %r" % (start, end))
        self.start = start
        self.end = end

    @property
    def length(self) -> float:
        return self.end - self.start

    def intersects(self, ts: float, te: float) -> bool:
        """True when the epoch ``[ts, te)`` intersects this interval."""
        return ts <= self.end and te > self.start

    def contains(self, ts: float, te: float) -> bool:
        """True when the epoch ``[ts, te)`` lies inside this interval."""
        return ts >= self.start - _EPSILON and te <= self.end + _EPSILON

    def contains_time(self, t: float) -> bool:
        return self.start <= t <= self.end

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimeInterval)
            and self.start == other.start
            and self.end == other.end
        )

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return "TimeInterval(%g, %g)" % (self.start, self.end)


class EpochClock:
    """Uniform epochs of ``epoch_length`` time units starting at ``t0``.

    Epoch ``i`` covers ``[t0 + i*L, t0 + (i+1)*L)``.  The clock is
    unbounded: any time at or after ``t0`` maps to an epoch.
    """

    __slots__ = ("t0", "epoch_length")

    def __init__(self, t0: float, epoch_length: float) -> None:
        if epoch_length <= 0:
            raise ValueError("epoch_length must be positive, got %r" % (epoch_length,))
        self.t0 = float(t0)
        self.epoch_length = float(epoch_length)

    def epoch_of(self, t: float) -> int:
        """Index of the epoch containing time ``t`` (``t >= t0``)."""
        if t < self.t0 - _EPSILON:
            raise ValueError("time %r precedes the application start %r" % (t, self.t0))
        return int(math.floor((t - self.t0) / self.epoch_length + _EPSILON))

    def bounds(self, index: int) -> tuple[float, float]:
        """``(ts, te)`` bounds of epoch ``index``."""
        if index < 0:
            raise ValueError("epoch index must be >= 0, got %d" % index)
        ts = self.t0 + index * self.epoch_length
        return ts, ts + self.epoch_length

    def num_epochs(self, current_time: float) -> int:
        """Number of epochs fully or partially elapsed by ``current_time``."""
        if current_time <= self.t0:
            return 0
        return int(
            math.ceil((current_time - self.t0) / self.epoch_length - _EPSILON)
        )

    def epochs_intersecting(self, interval: TimeInterval) -> range:
        """Range of epoch indices whose span intersects ``interval``."""
        first = max(0, self.epoch_of(max(interval.start, self.t0)))
        last = self.epoch_of(max(interval.end, self.t0))
        return range(first, last + 1)

    def epochs_contained(self, interval: TimeInterval) -> range:
        """Range of epoch indices whose span lies inside ``interval``."""
        length = self.epoch_length
        first = int(math.ceil((interval.start - self.t0) / length - _EPSILON))
        first = max(0, first)
        last = int(math.floor((interval.end - self.t0) / length + _EPSILON)) - 1
        if last < first:
            return range(first, first)
        return range(first, last + 1)

    def epoch_range(self, interval: TimeInterval, semantics: IntervalSemantics) -> range:
        """Dispatch on an :class:`~repro.temporal.tia.IntervalSemantics`."""
        if semantics.name == "CONTAINED":
            return self.epochs_contained(interval)
        return self.epochs_intersecting(interval)

    def __repr__(self) -> str:
        return "EpochClock(t0=%g, epoch_length=%g)" % (self.t0, self.epoch_length)


class VariedEpochClock:
    """Epochs of varied lengths defined by an explicit boundary list.

    ``boundaries`` is a strictly increasing sequence ``[b0, b1, ..., bn]``
    defining epochs ``[b0, b1), [b1, b2), ...``.  The final epoch extends
    to infinity past ``bn`` (so the clock, like :class:`EpochClock`, never
    runs out).  This is what makes B-tree-per-timestamp designs such as
    the aRB-tree inapplicable (Section 2) while the TIA still works.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries: Iterable[float]) -> None:
        boundaries = [float(b) for b in boundaries]
        if len(boundaries) < 2:
            raise ValueError("need at least two boundaries (one epoch)")
        for earlier, later in zip(boundaries, boundaries[1:]):
            if later <= earlier:
                raise ValueError("boundaries must strictly increase")
        self.boundaries = boundaries

    @classmethod
    def exponential(
        cls, t0: float, first_length: float, count: int, factor: float = 2.0
    ) -> VariedEpochClock:
        """Build epochs of lengths ``first_length * factor**i`` (the paper's
        'one hour, two hours, four hours, eight hours and so on')."""
        if count < 1:
            raise ValueError("count must be >= 1")
        boundaries = [float(t0)]
        length = float(first_length)
        for _ in range(count):
            boundaries.append(boundaries[-1] + length)
            length *= factor
        return cls(boundaries)

    @property
    def t0(self) -> float:
        return self.boundaries[0]

    def epoch_of(self, t: float) -> int:
        if t < self.t0 - _EPSILON:
            raise ValueError("time %r precedes the application start %r" % (t, self.t0))
        index = bisect.bisect_right(self.boundaries, t + _EPSILON) - 1
        return min(index, len(self.boundaries) - 2 + 1)  # allow the open last epoch

    def bounds(self, index: int) -> tuple[float, float]:
        last_defined = len(self.boundaries) - 2
        if index < 0:
            raise ValueError("epoch index must be >= 0, got %d" % index)
        if index <= last_defined:
            return self.boundaries[index], self.boundaries[index + 1]
        if index == last_defined + 1:
            return self.boundaries[-1], math.inf
        raise ValueError("epoch index %d beyond the open tail epoch" % index)

    def num_epochs(self, current_time: float) -> int:
        if current_time <= self.t0:
            return 0
        return bisect.bisect_left(self.boundaries, current_time - _EPSILON)

    def epochs_intersecting(self, interval: TimeInterval) -> range:
        first = self.epoch_of(max(interval.start, self.t0))
        last = self.epoch_of(max(interval.end, self.t0))
        return range(first, last + 1)

    def epochs_contained(self, interval: TimeInterval) -> range:
        candidates = self.epochs_intersecting(interval)
        contained = [
            i for i in candidates if interval.contains(*self.bounds(i))
        ]
        if not contained:
            return range(0, 0)
        return range(contained[0], contained[-1] + 1)

    def epoch_range(self, interval: TimeInterval, semantics: IntervalSemantics) -> range:
        if semantics.name == "CONTAINED":
            return self.epochs_contained(interval)
        return self.epochs_intersecting(interval)

    def __repr__(self) -> str:
        return "VariedEpochClock(%d epochs, t0=%g)" % (
            len(self.boundaries) - 1,
            self.t0,
        )
