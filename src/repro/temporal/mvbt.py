"""A multi-version B-tree (Becker et al., VLDBJ 1996) TIA backend.

The paper implements the TIA with "the disk-based multi-version B-tree
... as it has been proven to be asymptotically optimal".  An MVBT is a
partially persistent B+-tree: every entry carries a version interval
``[vstart, vend)``; updates never destroy old states, so the index can
be queried *as of any past version* in logarithmic time.

Structure implemented here:

* Every entry is ``(key, vstart, vend, payload)``; live entries have
  ``vend = None``.  Leaf payloads are aggregate values; internal
  payloads are child pages, with ``key`` the child's smallest live key
  at creation (the usual MVBT router).
* A page *overflows* when its total entry count (live + dead) exceeds
  the capacity.  Overflow triggers a **version split**: the live entries
  are copied into a fresh page and the old page is logically killed.  If
  the copied set violates the strong condition, the fresh page is
  additionally **key split**.  The old page stays reachable from
  historical roots, which is what makes time-travel queries work.
* A **root log** maps version ranges to root pages, so a query at
  version ``v`` starts from the root that was current at ``v``.

Deviation from the full Becker et al. construction: the weak-underflow
*merge* step is omitted.  The TAR-tree's TIA workload only inserts new
epochs and raises per-epoch maxima (an update = kill + reinsert, which
keeps live counts constant), so strong underflow never arises there;
deleting keys is still *correct* (entries are killed), it merely loses
the amortised-space guarantee.  This trade-off is documented in
DESIGN.md.

All page touches go through the same LRU buffer / access accounting as
:class:`~repro.temporal.tia.PagedTIA`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.storage.buffer import LRUBufferPool
from repro.storage.pager import NODE_HEADER_BYTES
from repro.temporal.tia import (
    BaseTIA,
    DEFAULT_TIA_BUFFER_SLOTS,
    DEFAULT_TIA_PAGE_SIZE,
)

if TYPE_CHECKING:
    from repro.storage.stats import AccessStats

_MVBT_ENTRY_BYTES = 20  # key, vstart, vend, payload, flags: 4 bytes each
_page_ids = itertools.count()


class _Entry:
    __slots__ = ("key", "vstart", "vend", "payload")

    # ``payload`` is an aggregate value on leaf entries and a child
    # ``_Page`` on internal entries, so it stays dynamically typed.
    def __init__(
        self, key: int, vstart: int, vend: int | None, payload: Any
    ) -> None:
        self.key = key
        self.vstart = vstart
        self.vend = vend
        self.payload = payload

    def alive_at(self, version: int) -> bool:
        return self.vstart <= version and (self.vend is None or version < self.vend)

    @property
    def live(self) -> bool:
        return self.vend is None

    def __repr__(self) -> str:
        return "(%r, v[%s,%s), %r)" % (self.key, self.vstart, self.vend, self.payload)


class _Page:
    __slots__ = ("page_id", "level", "entries", "dead")

    def __init__(self, level: int) -> None:
        self.page_id = next(_page_ids)
        self.level = level  # 0 = leaf
        self.entries: list[_Entry] = []
        self.dead = False

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def live_entries(self) -> list[_Entry]:
        return [entry for entry in self.entries if entry.live]

    def __repr__(self) -> str:
        return "_Page(id=%d, level=%d, entries=%d)" % (
            self.page_id, self.level, len(self.entries)
        )


class MVBTTIA(BaseTIA):
    """TIA backed by a multi-version B-tree.

    Implements the full :class:`~repro.temporal.tia.BaseTIA` interface at
    the *current* version, plus time-travel reads:
    :meth:`get_at`, :meth:`range_sum_at` and :meth:`items_at` evaluate
    the index as of any earlier version.  Every mutating call advances
    the version counter by one.
    """

    def __init__(
        self,
        stats: AccessStats | None = None,
        page_size: int = DEFAULT_TIA_PAGE_SIZE,
        buffer_slots: int = DEFAULT_TIA_BUFFER_SLOTS,
    ) -> None:
        self.stats = stats
        capacity = (page_size - NODE_HEADER_BYTES) // _MVBT_ENTRY_BYTES
        if capacity < 4:
            raise ValueError("page size %d too small for an MVBT page" % page_size)
        self.capacity = capacity
        # Strong condition bounds for the live set of a fresh page.
        self.strong_min = max(1, capacity // 5)
        self.strong_max = capacity - self.strong_min
        self.buffer = LRUBufferPool(buffer_slots)
        self.version = 0
        root = _Page(level=0)
        self._root_log: list[tuple[int, _Page]] = [(0, root)]  # (first version, root page)
        self._live_count = 0

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------

    def _touch(self, page: _Page) -> None:
        hit = self.buffer.access(page.page_id)
        if self.stats is not None:
            self.stats.record_tia_page(buffered=hit)

    def _root_at(self, version: int) -> _Page:
        root = self._root_log[0][1]
        for first_version, candidate in self._root_log:
            if first_version <= version:
                root = candidate
            else:
                break
        return root

    @property
    def _root(self) -> _Page:
        return self._root_log[-1][1]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _descend(
        self, key: int, version: int
    ) -> tuple[_Page | None, list[tuple[_Page, _Entry]]]:
        """Return ``(leaf, path)``; path items are (page, entry taken)."""
        page = self._root_at(version)
        path: list[tuple[_Page, _Entry]] = []
        while not page.is_leaf:
            self._touch(page)
            chosen: _Entry | None = None
            for entry in page.entries:
                if not entry.alive_at(version):
                    continue
                if entry.key <= key and (
                    chosen is None or entry.key > chosen.key
                ):
                    chosen = entry
            if chosen is None:
                # Key precedes every router: take the smallest live child.
                alive = [e for e in page.entries if e.alive_at(version)]
                if not alive:
                    return None, path
                chosen = min(alive, key=lambda e: e.key)
            path.append((page, chosen))
            page = chosen.payload
        self._touch(page)
        return page, path

    def get(self, epoch_index: int) -> int:
        return self.get_at(epoch_index, self.version)

    def get_at(self, epoch_index: int, version: int) -> int:
        """The aggregate stored for ``epoch_index`` as of ``version``."""
        leaf, _ = self._descend(epoch_index, version)
        if leaf is None:
            return 0
        for entry in leaf.entries:
            if entry.key == epoch_index and entry.alive_at(version):
                return int(entry.payload)
        return 0

    def range_sum(self, first_epoch: int, last_epoch: int) -> int:
        return self.range_sum_at(first_epoch, last_epoch, self.version)

    def range_sum_at(self, first_epoch: int, last_epoch: int, version: int) -> int:
        """Sum of aggregates over ``[first, last]`` as of ``version``."""
        if last_epoch < first_epoch:
            return 0
        total = 0
        stack = [self._root_at(version)]
        while stack:
            page = stack.pop()
            self._touch(page)
            if page.is_leaf:
                for entry in page.entries:
                    if (
                        entry.alive_at(version)
                        and first_epoch <= entry.key <= last_epoch
                    ):
                        total += entry.payload
                continue
            alive = sorted(
                (e for e in page.entries if e.alive_at(version)),
                key=lambda e: e.key,
            )
            for i, entry in enumerate(alive):
                # Child i covers [router_i, router_{i+1}); the leftmost
                # child may also hold keys below its router, so its lower
                # bound is effectively -infinity.
                lower = entry.key if i > 0 else None
                upper = alive[i + 1].key if i + 1 < len(alive) else None
                if upper is not None and upper <= first_epoch:
                    continue
                if lower is not None and lower > last_epoch:
                    break
                stack.append(entry.payload)
        return total

    def range_max(self, first_epoch: int, last_epoch: int) -> int:
        return self.range_max_at(first_epoch, last_epoch, self.version)

    def range_max_at(self, first_epoch: int, last_epoch: int, version: int) -> int:
        """Largest aggregate over ``[first, last]`` as of ``version``."""
        if last_epoch < first_epoch:
            return 0
        best = 0
        stack = [self._root_at(version)]
        while stack:
            page = stack.pop()
            self._touch(page)
            if page.is_leaf:
                for entry in page.entries:
                    if (
                        entry.alive_at(version)
                        and first_epoch <= entry.key <= last_epoch
                        and entry.payload > best
                    ):
                        best = entry.payload
                continue
            alive = sorted(
                (e for e in page.entries if e.alive_at(version)),
                key=lambda e: e.key,
            )
            for i, entry in enumerate(alive):
                lower = entry.key if i > 0 else None
                upper = alive[i + 1].key if i + 1 < len(alive) else None
                if upper is not None and upper <= first_epoch:
                    continue
                if lower is not None and lower > last_epoch:
                    break
                stack.append(entry.payload)
        return best

    def items(self) -> Iterator[tuple[int, int]]:
        return self.items_at(self.version)

    def items_at(self, version: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(epoch_index, agg)`` as of ``version`` (no I/O charge)."""
        result: list[tuple[int, int]] = []
        stack = [self._root_at(version)]
        while stack:
            page = stack.pop()
            for entry in page.entries:
                if not entry.alive_at(version):
                    continue
                if page.is_leaf:
                    result.append((entry.key, entry.payload))
                else:
                    stack.append(entry.payload)
        return iter(sorted(result))

    def __len__(self) -> int:
        return self._live_count

    def page_count(self) -> int:
        """Number of reachable pages across all versions."""
        seen: set[int] = set()
        stack = [root for _, root in self._root_log]
        while stack:
            page = stack.pop()
            if page.page_id in seen:
                continue
            seen.add(page.page_id)
            if not page.is_leaf:
                stack.extend(
                    entry.payload for entry in page.entries
                )
        return len(seen)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def set(self, epoch_index: int, agg: int) -> None:
        if agg < 0:
            raise ValueError("aggregate must be >= 0, got %r" % (agg,))
        self.version += 1
        version = self.version
        leaf, path = self._descend(epoch_index, version)
        if leaf is None:
            raise AssertionError("descend lost the live path")
        existing: _Entry | None = None
        for entry in leaf.entries:
            if entry.key == epoch_index and entry.live:
                existing = entry
                break
        if existing is not None:
            if agg == 0:
                existing.vend = version
                if existing.vstart == version:
                    leaf.entries.remove(existing)
                self._live_count -= 1
                return
            if existing.vstart == version:
                existing.payload = agg
                return
            existing.vend = version
            leaf.entries.append(_Entry(epoch_index, version, None, agg))
            self._handle_overflow(leaf, path, version)
            return
        if agg == 0:
            return
        leaf.entries.append(_Entry(epoch_index, version, None, agg))
        self._live_count += 1
        self._handle_overflow(leaf, path, version)

    def replace_all(self, epoch_aggregates: Mapping[int, int]) -> None:
        # One logical version per bulk replacement: kill everything, then
        # insert the new content at the next version.
        for key, _ in list(self.items()):
            self.set(key, 0)
        for key in sorted(epoch_aggregates):
            value = epoch_aggregates[key]
            if value > 0:
                self.set(key, value)

    # ------------------------------------------------------------------
    # Version and key splits
    # ------------------------------------------------------------------

    def _handle_overflow(
        self, page: _Page, path: list[tuple[_Page, _Entry]], version: int
    ) -> None:
        if len(page.entries) <= self.capacity:
            return
        live = sorted(page.live_entries(), key=lambda e: e.key)
        # Kill the old page: every live entry ends now; copies carry on.
        for entry in live:
            entry.vend = version
        page.dead = True

        fresh_pages: list[_Page] = []
        if len(live) > self.strong_max:
            middle = len(live) // 2
            halves = (live[:middle], live[middle:])
        else:
            halves = (live,)
        for half in halves:
            fresh = _Page(level=page.level)
            fresh.entries = [
                _Entry(entry.key, version, None, entry.payload) for entry in half
            ]
            fresh_pages.append(fresh)

        if not path:
            self._install_new_root(page, fresh_pages, version)
            return
        parent, parent_entry = path[-1]
        parent_entry.vend = version
        if parent_entry.vstart == version:
            parent.entries.remove(parent_entry)
        for fresh in fresh_pages:
            router = fresh.entries[0].key if fresh.entries else parent_entry.key
            parent.entries.append(_Entry(router, version, None, fresh))
        self._handle_overflow(parent, path[:-1], version)

    def _install_new_root(
        self, old_root: _Page, fresh_pages: list[_Page], version: int
    ) -> None:
        if len(fresh_pages) == 1:
            self._root_log.append((version, fresh_pages[0]))
            return
        new_root = _Page(level=old_root.level + 1)
        for fresh in fresh_pages:
            router = fresh.entries[0].key if fresh.entries else 0
            new_root.entries.append(_Entry(router, version, None, fresh))
        self._root_log.append((version, new_root))

    def __repr__(self) -> str:
        return "MVBTTIA(%d live epochs, version=%d, pages=%d)" % (
            self._live_count,
            self.version,
            self.page_count(),
        )
