"""Temporal substrate: epoch clocks and temporal indexes on the aggregate.

The paper discretises the time axis into epochs (uniform or of varied
lengths) and attaches to every TAR-tree entry a *TIA* — a temporal index
storing one ``<ts, te, agg>`` record per epoch with a non-zero aggregate.
This package provides:

* :mod:`repro.temporal.epochs` — :class:`TimeInterval`,
  :class:`EpochClock` (uniform epochs) and :class:`VariedEpochClock`.
* :mod:`repro.temporal.records` — the ``<ts, te, agg>`` record type.
* :mod:`repro.temporal.tia` — the TIA interface with an in-memory backend
  and a paged B+-tree backend whose page accesses flow through an LRU
  buffer pool (10 slots by default, as in the paper).
* :mod:`repro.temporal.mvbt` — a multi-version B-tree (Becker et al.),
  the temporal index the paper's implementation used, offered as an
  alternative versioned store.
"""

from repro.temporal.epochs import EpochClock, TimeInterval, VariedEpochClock
from repro.temporal.records import TemporalRecord
from repro.temporal.tia import IntervalSemantics, MemoryTIA, PagedTIA, make_tia_factory

__all__ = [
    "EpochClock",
    "VariedEpochClock",
    "TimeInterval",
    "TemporalRecord",
    "IntervalSemantics",
    "MemoryTIA",
    "PagedTIA",
    "make_tia_factory",
]
