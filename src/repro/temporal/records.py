"""The ``<ts, te, agg>`` temporal record (Section 4.1)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, NamedTuple

if TYPE_CHECKING:
    from repro.temporal.epochs import EpochClock, VariedEpochClock


class TemporalRecord(NamedTuple):
    """One non-zero aggregate over one epoch.

    ``ts`` / ``te`` bound the epoch (``te`` may be ``inf`` for the open
    tail epoch of a :class:`~repro.temporal.epochs.VariedEpochClock`) and
    ``agg`` is the aggregate value during the epoch — for leaf entries the
    POI's own count, for internal entries the maximum over the child
    entries' values.
    """

    ts: float
    te: float
    agg: int


def records_from_epochs(
    epoch_aggregates: Mapping[int, int],
    clock: EpochClock | VariedEpochClock,
) -> list[TemporalRecord]:
    """Materialise ``TemporalRecord`` triples from ``{epoch_index: agg}``."""
    return [
        TemporalRecord(*clock.bounds(index), agg)
        for index, agg in sorted(epoch_aggregates.items())
        if agg > 0
    ]
