"""The ``<ts, te, agg>`` temporal record (Section 4.1)."""

from typing import NamedTuple


class TemporalRecord(NamedTuple):
    """One non-zero aggregate over one epoch.

    ``ts`` / ``te`` bound the epoch (``te`` may be ``inf`` for the open
    tail epoch of a :class:`~repro.temporal.epochs.VariedEpochClock`) and
    ``agg`` is the aggregate value during the epoch — for leaf entries the
    POI's own count, for internal entries the maximum over the child
    entries' values.
    """

    ts: float
    te: float
    agg: int


def records_from_epochs(epoch_aggregates, clock):
    """Materialise ``TemporalRecord`` triples from ``{epoch_index: agg}``."""
    return [
        TemporalRecord(*clock.bounds(index), agg)
        for index, agg in sorted(epoch_aggregates.items())
        if agg > 0
    ]
