"""Command-line interface: ``python -m repro <command>``.

Commands cover the library's end-to-end flow without writing code:

* ``generate`` — synthesise a data set (one of the paper's presets,
  scaled) and save it as ``.npz``.
* ``fit`` — fit the Table 2 power law to a saved data set.
* ``build`` — build a TAR-tree over a saved data set and persist it.
* ``query`` — answer a kNNTA query against a saved tree, reporting the
  ranked POIs and the simulated I/O cost.
* ``mwa`` — suggest the minimum weight adjustment for a query.
* ``verify`` — load a saved tree and run the deep invariant validators
  (:mod:`repro.reliability.validate`); optionally reconcile the leaf
  TIAs against the source data set.
* ``recover`` — rebuild a crash-recoverable ingest state
  (:mod:`repro.reliability.recovery`): load the checkpoint snapshot in
  a directory, replay its mutation WAL, and report per-record-type
  replay counts; optionally reconcile against the source data set and
  re-checkpoint the recovered tree.
* ``serve`` — serve a tree over TCP (JSON lines) through the
  concurrent :mod:`repro.service` query service: collective
  micro-batching, WAL-logged single-writer ingest (with
  ``--state-dir``) and the background scrubber.  With ``--cluster``
  the positional argument is a cluster directory written by ``shard``
  and the service fronts the scatter-gather coordinator.
* ``shard`` — partition a saved data set into N spatial shards
  (:mod:`repro.cluster`), each with its own TAR-tree, WAL and
  snapshot, tied together by a routing manifest.  ``serve --cluster
  --shard-workers`` serves the same directory with one worker
  *process* per shard behind the scatter-gather coordinator.
* ``shard-worker`` — run a single shard's worker process over its
  state directory (normally spawned by ``serve --shard-workers``).
* ``lint`` — run the project's static-analysis rules
  (:mod:`repro.devtools`): lock discipline, WAL-before-apply, bare
  asserts, float equality, exception hygiene, warn stacklevel.

Exit codes (all commands): ``0`` success, ``1`` a check failed (a scan
cross-check mismatch, ``verify`` found invariant violations, ``lint``
found rule violations, or ``recover --verify`` found violations after
replay), ``2`` a snapshot or WAL was corrupt or unreadable
(``CorruptSnapshotError``) or, for ``lint``, bad usage (unknown rule id
or missing path).  ``argparse`` itself exits with ``2`` on bad usage.

Example session::

    python -m repro generate --preset GS --scale 0.05 --out gs.npz
    python -m repro fit gs.npz
    python -m repro build gs.npz --strategy integral3d --out gs-tree.json
    python -m repro query gs-tree.json --x 50 --y 50 --last-days 28 --k 5
    python -m repro mwa gs-tree.json --x 50 --y 50 --last-days 28 --k 5
    python -m repro verify gs-tree.json --dataset gs.npz
    python -m repro recover state-dir --dataset gs.npz --checkpoint
    python -m repro serve gs-tree.json --port 7777 --state-dir state-dir
    python -m repro shard gs.npz --shards 4 --out gs-cluster
    python -m repro serve gs-cluster --cluster --port 7778
    python -m repro query gs-cluster --x 50 --y 50 --last-days 28 --explain
"""

import argparse
import sys

from repro.temporal.epochs import TimeInterval


def _add_query_arguments(parser):
    parser.add_argument(
        "tree",
        help="tree file written by 'build' (for 'query', a cluster "
        "directory written by 'shard' also works)",
    )
    parser.add_argument("--x", type=float, required=True, help="query point x")
    parser.add_argument("--y", type=float, required=True, help="query point y")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--last-days",
        type=float,
        help="query the trailing interval of this many days",
    )
    group.add_argument(
        "--interval",
        nargs=2,
        type=float,
        metavar=("START", "END"),
        help="explicit query interval",
    )
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--alpha0", type=float, default=0.3)


def _resolve_interval(tree, args):
    if args.interval is not None:
        return TimeInterval(args.interval[0], args.interval[1])
    return TimeInterval(tree.current_time - args.last_days, tree.current_time)


def build_parser():
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAR-tree / kNNTA queries (EDBT 2015 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesise a data set and save it as .npz"
    )
    generate.add_argument(
        "--preset", default="NYC", help="NYC, LA, GW or GS (Table 4)"
    )
    generate.add_argument("--scale", type=float, default=0.05)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)

    fit = commands.add_parser(
        "fit", help="fit the Table 2 power law to a saved data set"
    )
    fit.add_argument("dataset", help="data set file written by 'generate'")
    fit.add_argument("--bootstrap", type=int, default=20, help="p-value resamples")
    fit.add_argument("--seed", type=int, default=0)

    build = commands.add_parser(
        "build", help="build a TAR-tree over a saved data set"
    )
    build.add_argument("dataset", help="data set file written by 'generate'")
    build.add_argument(
        "--strategy",
        default="integral3d",
        help="integral3d (TAR-tree), spatial (IND-spa) or aggregate (IND-agg)",
    )
    build.add_argument("--epoch-days", type=float, default=7.0)
    build.add_argument("--node-size", type=int, default=1024)
    build.add_argument("--tia-backend", default="paged",
                       help="paged, memory or mvbt")
    build.add_argument("--out", required=True)

    shard = commands.add_parser(
        "shard",
        help="partition a data set into spatial shards (a cluster directory)",
        description=(
            "Plan N spatial shards over a saved data set (k-d median "
            "splits by default, or a uniform grid), build one TAR-tree "
            "per shard, and write a cluster directory: per-shard "
            "checkpoints + WALs plus a cluster.json routing manifest. "
            "Serve it with 'serve --cluster' or query it directly with "
            "'query'. See docs/CLUSTER.md."
        ),
    )
    shard.add_argument("dataset", help="data set file written by 'generate'")
    shard.add_argument(
        "--shards", type=int, default=4, help="number of shards (default 4)"
    )
    shard.add_argument(
        "--method",
        default="kd",
        choices=("kd", "grid"),
        help="partitioning method: kd (balanced median splits) or grid",
    )
    shard.add_argument(
        "--strategy",
        default="integral3d",
        help="integral3d (TAR-tree), spatial (IND-spa) or aggregate (IND-agg)",
    )
    shard.add_argument("--epoch-days", type=float, default=7.0)
    shard.add_argument("--node-size", type=int, default=1024)
    shard.add_argument("--tia-backend", default="paged",
                       help="paged, memory or mvbt")
    shard.add_argument("--out", required=True, help="cluster directory to create")

    query = commands.add_parser("query", help="answer one kNNTA query")
    _add_query_arguments(query)
    query.add_argument(
        "--scan",
        action="store_true",
        help="also run the sequential-scan baseline and cross-check",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the full flat cost mapping (per-shard keys for a cluster)",
    )

    mwa = commands.add_parser(
        "mwa", help="suggest the minimum weight adjustment for a query"
    )
    _add_query_arguments(mwa)
    mwa.add_argument(
        "--method", default="pruning", help="pruning or enumerating"
    )

    verify = commands.add_parser(
        "verify",
        help="validate a saved tree's structural and aggregate invariants",
        description=(
            "Load a tree snapshot (verifying its checksums) and run the "
            "deep invariant validators: R*-tree structure, the internal-"
            "TIA max-invariant, and — with --dataset — leaf-TIA histories "
            "against the source data set. Exit code 0: all invariants "
            "hold; 1: violations found (summarised on stdout); 2: the "
            "snapshot is corrupt or unreadable."
        ),
    )
    verify.add_argument("tree", help="tree file written by 'build'")
    verify.add_argument(
        "--dataset",
        help="also reconcile leaf TIAs against this data set (.npz)",
    )
    verify.add_argument(
        "--max-report",
        type=int,
        default=10,
        help="maximum violations to print (default 10)",
    )

    recover = commands.add_parser(
        "recover",
        help="replay a checkpoint directory's mutation WAL after a crash",
        description=(
            "Load the checkpoint snapshot in DIRECTORY (verifying its "
            "checksums), replay the mutation WAL past the snapshot's "
            "applied-LSN high-water mark (dropping a torn tail), and "
            "print the per-record-type replay counts. Exit code 0: "
            "recovery succeeded; 1: --verify found invariant violations "
            "in the recovered tree; 2: the snapshot or WAL is corrupt "
            "or unreadable."
        ),
    )
    recover.add_argument(
        "directory", help="state directory written by CheckpointedIngest"
    )
    recover.add_argument(
        "--name",
        default="tree",
        help="state name inside the directory (default 'tree')",
    )
    recover.add_argument(
        "--dataset",
        help="reconcile the recovered tree against this data set (.npz)",
    )
    recover.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a fresh checkpoint (snapshot + reset WAL) on success",
    )
    recover.add_argument(
        "--verify",
        action="store_true",
        help="run the deep invariant validators on the recovered tree",
    )

    serve = commands.add_parser(
        "serve",
        help="serve kNNTA queries over TCP (JSON lines)",
        description=(
            "Run the concurrent query service over a saved tree: worker "
            "threads micro-batch concurrent same-interval queries through "
            "the collective processor, mutations take the exclusive side "
            "of a readers-writer lock, and a background scrubber sweeps "
            "the index for TIA corruption. With --state-dir, mutations "
            "are WAL-logged there (crash-recoverable via 'recover'); if "
            "the directory already holds a checkpoint, the service "
            "resumes from it (replaying the WAL) instead of TREE. The "
            "wire protocol is one JSON object per line; see "
            "docs/SERVICE.md. Serves until a client sends "
            '{"op": "shutdown"}. With --cluster, TREE is a cluster '
            "directory written by 'shard': every shard recovers from "
            "its own WAL and queries run the scatter-gather coordinator "
            "(see docs/CLUSTER.md)."
        ),
    )
    serve.add_argument(
        "tree",
        help="tree file written by 'build' (with --cluster: a cluster "
        "directory written by 'shard')",
    )
    serve.add_argument(
        "--cluster",
        action="store_true",
        help="serve a sharded cluster directory instead of a single tree",
    )
    serve.add_argument(
        "--shard-workers",
        action="store_true",
        help="cluster mode: serve each shard from its own worker "
        "*process* (one per manifest shard) behind the scatter-gather "
        "coordinator, instead of in-process shard threads; implies "
        "--cluster",
    )
    serve.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="cluster mode: concurrent shard searches per query "
        "(default: the value recorded in the manifest)",
    )
    serve.add_argument(
        "--allow-degraded",
        action="store_true",
        help="cluster mode: when a shard is down and the bound "
        "certificate cannot prove the answer exact, return an "
        "explicitly degraded result (coverage + score bound) instead "
        "of failing the query",
    )
    serve.add_argument(
        "--shard-timeout-ms",
        type=float,
        default=0.0,
        help="cluster mode: per-shard dispatch deadline before the "
        "circuit breaker counts a timeout; 0 disables the deadline "
        "(shard calls run inline)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = OS-assigned)"
    )
    serve.add_argument("--workers", type=int, default=2, help="query worker threads")
    serve.add_argument(
        "--batch-size", type=int, default=16, help="max queries per collective batch"
    )
    serve.add_argument(
        "--linger-ms",
        type=float,
        default=2.0,
        help="micro-batching window: how long a worker waits for peers",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="admission control: max queued requests before rejecting",
    )
    serve.add_argument(
        "--state-dir",
        help="WAL-log mutations into this checkpoint directory "
        "(resumes from it when it already holds a snapshot)",
    )
    serve.add_argument(
        "--name",
        default="tree",
        help="state name inside --state-dir (default 'tree')",
    )
    serve.add_argument(
        "--scrub-interval-ms",
        type=float,
        default=1000.0,
        help="background scrubber tick period; 0 disables the thread",
    )
    serve.add_argument(
        "--scrub-budget", type=int, default=32, help="nodes scrubbed per tick"
    )

    watch = commands.add_parser(
        "watch",
        help="stand a sliding-window kNNTA subscription over a saved tree",
        description=(
            "Register a standing top-k subscription at a query point: "
            "print the initial ranked answer for the trailing window of "
            "--window epochs, then — with --dataset — replay the data "
            "set's check-ins past the tree's current time, digesting one "
            "epoch at a time and printing each pushed update's ordered "
            "enter/leave/move deltas (incremental re-evaluation; see "
            "docs/CONTINUOUS.md). Works over a tree file or a cluster "
            "directory written by 'shard'. Without --dataset the initial "
            "answer is printed and the command exits."
        ),
    )
    watch.add_argument(
        "tree",
        help="tree file written by 'build' or a cluster directory "
        "written by 'shard'",
    )
    watch.add_argument("--x", type=float, required=True, help="query point x")
    watch.add_argument("--y", type=float, required=True, help="query point y")
    watch.add_argument(
        "--window",
        type=int,
        required=True,
        help="sliding window width in epochs",
    )
    watch.add_argument("--k", type=int, default=10)
    watch.add_argument("--alpha0", type=float, default=0.3)
    watch.add_argument(
        "--semantics",
        default="intersects",
        choices=("intersects", "contained"),
        help="epoch membership semantics for the window interval",
    )
    watch.add_argument(
        "--dataset",
        help="replay this data set's check-ins beyond the tree's current "
        "time, one digested epoch per window advance",
    )
    watch.add_argument(
        "--max-updates",
        type=int,
        default=None,
        help="stop after this many pushed updates (default: replay all)",
    )

    shard_worker = commands.add_parser(
        "shard-worker",
        help="run one shard's worker process (spawned by 'serve "
        "--shard-workers'; runnable standalone for debugging)",
        description=(
            "Recover one shard state directory (snapshot + WAL replay) "
            "and serve its TAR-tree over the JSON-lines wire protocol "
            "until a client sends {\"op\": \"shutdown\"}. The bound "
            "endpoint is announced by atomically writing worker.json "
            "into the shard directory (or --announce). Normally "
            "spawned per shard by 'serve --shard-workers'; see "
            "docs/CLUSTER.md."
        ),
    )
    shard_worker.add_argument(
        "--dir",
        required=True,
        dest="directory",
        help="shard state directory (snapshot + WAL) to serve",
    )
    shard_worker.add_argument("--host", default="127.0.0.1")
    shard_worker.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = OS-assigned)"
    )
    shard_worker.add_argument(
        "--name",
        default="tree",
        help="state name inside the shard directory (default 'tree')",
    )
    shard_worker.add_argument(
        "--announce",
        default=None,
        help="endpoint announce file (default: <dir>/worker.json)",
    )

    lint = commands.add_parser(
        "lint",
        help="run the project's static-analysis rules over source trees",
        description=(
            "Run the repro.devtools lint rules: RT001 lock-discipline, "
            "RT002 wal-before-apply, RT003 no-bare-assert, RT004 "
            "float-equality, RT005 exception-hygiene, RT006 "
            "warn-stacklevel, RT007 guarded-shard-dispatch, RT008 "
            "lock-order, RT009 no-blocking-under-lock, RT010 "
            "no-foreign-callback-under-lock (plus RT000 "
            "unused-suppression and RT900 parse-error meta findings). "
            "RT008-RT010 run one shared whole-program pass over the "
            "cross-module call graph against the canonical lock "
            "hierarchy in repro.devtools.lockmodel. Suppress one "
            "finding with a same-line '# repro: allow[RT001]' comment "
            "('# repro: allow[RT008,RT009]' covers several rules); see "
            "docs/DEVTOOLS.md. Exit code 0: clean; 1: findings; 2: "
            "unknown rule id or missing path."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ when present, else .)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is stable for CI annotations)",
    )
    lint.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--lock-graph",
        action="store_true",
        help=(
            "emit the derived lock-order graph instead of the findings "
            "report: declared hierarchy nodes plus every (held -> "
            "acquired) edge RT008 derived, Graphviz DOT under --format "
            "text, machine-readable JSON under --format json; exits 1 "
            "when the graph has a violating edge or cycle (or other "
            "findings remain)"
        ),
    )

    return parser


def _split_rule_ids(value):
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _command_lint(args, out):
    import os

    from repro.devtools import lint_paths, render_json, render_text

    paths = args.paths
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print("no such path: %s" % ", ".join(missing), file=out)
        return 2
    select = _split_rule_ids(args.select)
    ignore = _split_rule_ids(args.ignore)
    lock_graph = getattr(args, "lock_graph", False)
    if lock_graph and (
        (select is not None and "RT008" not in select)
        or (ignore is not None and "RT008" in ignore)
    ):
        print("--lock-graph needs the RT008 pass selected", file=out)
        return 2
    artifacts = {} if lock_graph else None
    try:
        findings, files_checked = lint_paths(
            paths, select=select, ignore=ignore, artifacts=artifacts
        )
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    if lock_graph:
        import json

        from repro.devtools import render_graph_dot, render_graph_json

        edges = artifacts.get("lock_edges", [])
        graph = render_graph_json(edges)
        if args.format == "json":
            json.dump(graph, out, indent=2)
            out.write("\n")
        else:
            out.write(render_graph_dot(edges))
        return 1 if findings or not graph["acyclic"] else 0
    renderer = render_json if args.format == "json" else render_text
    renderer(findings, files_checked, out)
    return 1 if findings else 0


def _command_generate(args, out):
    from repro import datasets
    from repro.storage.serialize import save_dataset

    data = datasets.make(args.preset, scale=args.scale, seed=args.seed)
    save_dataset(data, args.out)
    print(
        "wrote %s: %d POIs, %d check-ins over %.0f days (%d effective)"
        % (
            args.out,
            data.num_pois,
            data.total_checkins(),
            data.span_days,
            len(data.effective_poi_ids()),
        ),
        file=out,
    )
    return 0


def _command_fit(args, out):
    from repro.analysis.powerlaw import fit_discrete_powerlaw, goodness_of_fit
    from repro.storage.serialize import load_dataset

    data = load_dataset(args.dataset)
    totals = [v for v in data.totals().values() if v > 0]
    fit = fit_discrete_powerlaw(totals)
    gof = goodness_of_fit(totals, fit, n_bootstrap=args.bootstrap, seed=args.seed)
    print(
        "%s: n=%d beta=%.2f xmin=%d KS=%.4f p-value=%.2f (%s)"
        % (
            data.name,
            fit.n_total,
            fit.beta,
            fit.xmin,
            fit.ks_distance,
            gof.p_value,
            "plausible power law" if gof.plausible else "power law rejected",
        ),
        file=out,
    )
    return 0


def _command_build(args, out):
    from repro.core.tar_tree import TARTree
    from repro.storage.serialize import load_dataset, save_tree

    data = load_dataset(args.dataset)
    tree = TARTree.build(
        data,
        epoch_length=args.epoch_days,
        strategy=args.strategy,
        node_size=args.node_size,
        tia_backend=args.tia_backend,
    )
    save_tree(tree, args.out)
    print(
        "wrote %s: %s (%d nodes, height %d)"
        % (args.out, tree, tree.node_count(), tree.height),
        file=out,
    )
    return 0


def _open_tree_or_cluster(path, out):
    """Open a tree file or a cluster directory.

    Returns ``(tree, cluster)`` — ``cluster`` is None for a single tree
    and must be closed by the caller otherwise — or ``(None, None)``
    after printing the error (exit code 2).
    """
    import os

    from repro.storage.serialize import CorruptSnapshotError, load_tree

    if not os.path.isdir(path):
        return load_tree(path), None
    from repro.cluster import (
        ClusterStateError,
        is_cluster_directory,
        open_cluster,
    )

    if not is_cluster_directory(path):
        print(
            "%s is a directory but holds no cluster manifest "
            "(expected a tree file or a 'shard' output directory)" % path,
            file=out,
        )
        return None, None
    try:
        cluster = open_cluster(path)
    except (ClusterStateError, CorruptSnapshotError, OSError) as exc:
        print("cannot open cluster %s: %s" % (path, exc), file=out)
        return None, None
    return cluster, cluster


def _command_query(args, out):
    from repro.core.query import KNNTAQuery
    from repro.core.scan import sequential_scan

    tree, cluster = _open_tree_or_cluster(args.tree, out)
    if tree is None:
        return 2
    try:
        interval = _resolve_interval(tree, args)
        query = KNNTAQuery(
            (args.x, args.y), interval, k=args.k, alpha0=args.alpha0
        )
        if cluster is not None:
            results, costs = cluster.explain(query)
        else:
            snapshot = tree.stats.snapshot()
            results = tree.query(query)
            costs = tree.stats.diff(snapshot).as_dict()
        print(
            "top-%d at (%g, %g) over [%g, %g], alpha0=%g:"
            % (args.k, args.x, args.y, interval.start, interval.end, args.alpha0),
            file=out,
        )
        for rank, result in enumerate(results, start=1):
            poi = tree.poi(result.poi_id)
            print(
                "  #%-3d %-12s (%8.2f, %8.2f)  score=%.4f  d=%.3f  g=%.3f"
                % (rank, result.poi_id, poi.x, poi.y, result.score,
                   result.distance, result.aggregate),
                file=out,
            )
        print(
            "cost: %(rtree_nodes)d node accesses "
            "(%(rtree_internal)d internal + %(rtree_leaf)d leaf), "
            "%(tia_pages)d TIA page reads, %(tia_buffer_hits)d buffer hits"
            % costs,
            file=out,
        )
        if cluster is not None:
            print(
                "cluster: %(shards.visited)d of %(shards)d shard(s) visited, "
                "%(shards.pruned)d pruned by the k-th score bound" % costs,
                file=out,
            )
        if not results.exact:
            # Any Answer may declare itself non-exact; today that is the
            # cluster's DegradedAnswer under --allow-degraded policies.
            print(
                "DEGRADED: %.0f%% coverage, shard(s) %s missed; every "
                "missing row would score >= %.4f"
                % (
                    results.coverage * 100.0,
                    ", ".join(str(i) for i in results.missed_shards),
                    results.score_bound,
                ),
                file=out,
            )
        if args.explain:
            # The flat, diffable cost mapping: one "key = value" line per
            # counter, per-shard counters under shards.<i>.* for a cluster.
            for key in sorted(costs):
                print("  %s = %d" % (key, costs[key]), file=out)
        if args.scan:
            expected = sequential_scan(tree, query)
            matches = [r.poi_id for r in results] == [r.poi_id for r in expected]
            print(
                "scan cross-check: %s" % ("OK" if matches else "MISMATCH"),
                file=out,
            )
            return 0 if matches else 1
        return 0
    finally:
        if cluster is not None:
            cluster.close()


def _command_watch(args, out):
    from repro.continuous import SubscriptionRegistry
    from repro.temporal.tia import IntervalSemantics

    tree, cluster = _open_tree_or_cluster(args.tree, out)
    if tree is None:
        return 2
    registry = SubscriptionRegistry(tree)

    def show(update):
        window = update.window
        print(
            "seq %d: window [%g, %g] (epochs %d..%d), %s%s"
            % (
                update.seq,
                window.interval.start,
                window.interval.end,
                window.first_epoch,
                window.latest_epoch,
                "incremental" if update.incremental else "fresh search",
                ", DEGRADED" if update.degraded else "",
            ),
            file=out,
        )
        for delta in update.deltas:
            row = delta.row
            if delta.kind.value == "leave":
                print("  leave #%-3d %s" % (delta.old_rank + 1, delta.poi_id),
                      file=out)
            elif delta.kind.value == "enter":
                print(
                    "  enter #%-3d %-12s score=%.4f"
                    % (delta.rank + 1, delta.poi_id, row.score),
                    file=out,
                )
            else:
                print(
                    "  move  #%-3d -> #%-3d %-12s score=%.4f"
                    % (delta.old_rank + 1, delta.rank + 1, delta.poi_id,
                       row.score),
                    file=out,
                )
        if not update.deltas:
            print("  (scores refreshed, ranks unchanged)", file=out)

    try:
        subscription, initial = registry.subscribe(
            (args.x, args.y),
            args.window,
            k=args.k,
            alpha0=args.alpha0,
            semantics=IntervalSemantics(args.semantics),
            sink=show,
        )
        print(
            "watching top-%d at (%g, %g), window %d epoch(s), alpha0=%g:"
            % (args.k, args.x, args.y, args.window, args.alpha0),
            file=out,
        )
        for rank, row in enumerate(initial.answer.rows, start=1):
            print(
                "  #%-3d %-12s score=%.4f  d=%.3f  g=%.3f"
                % (rank, row.poi_id, row.score, row.distance, row.aggregate),
                file=out,
            )
        if args.dataset is None:
            return 0

        from repro.datasets.streaming import epoch_stream
        from repro.storage.serialize import load_dataset

        data = load_dataset(args.dataset)
        pushed = 0
        stream = epoch_stream(
            data,
            tree.clock,
            start_time=tree.current_time,
            poi_ids=list(tree.poi_ids()),
        )
        for epoch, counts in stream:
            if args.max_updates is not None and pushed >= args.max_updates:
                break
            tree.digest_epoch(epoch, counts)
            pushed += len(registry.advance())
        print(
            "replayed to t=%g: %d update(s) pushed (%s)"
            % (
                tree.current_time,
                pushed,
                ", ".join(
                    "%s=%d" % (key, value)
                    for key, value in sorted(registry.counters().items())
                    if key.startswith("evals.")
                ),
            ),
            file=out,
        )
        return 0
    finally:
        registry.close()
        if cluster is not None:
            cluster.close()


def _command_mwa(args, out):
    from repro.core.mwa import minimum_weight_adjustment
    from repro.core.query import KNNTAQuery
    from repro.storage.serialize import load_tree

    tree = load_tree(args.tree)
    interval = _resolve_interval(tree, args)
    query = KNNTAQuery((args.x, args.y), interval, k=args.k, alpha0=args.alpha0)
    result = minimum_weight_adjustment(tree, query, method=args.method)
    print("current alpha0 = %g" % args.alpha0, file=out)
    if result.gamma_lower is not None:
        print("  decrease past %.4f to change the top-%d" % (
            result.gamma_lower, args.k
        ), file=out)
    if result.gamma_upper is not None:
        print("  increase past %.4f to change the top-%d" % (
            result.gamma_upper, args.k
        ), file=out)
    if result.minimum_adjustment is None:
        print("  the top-%d is immutable under weight changes" % args.k, file=out)
    else:
        print("  minimum adjustment: %.4f" % result.minimum_adjustment, file=out)
    return 0


def _command_verify(args, out):
    from repro.reliability.validate import validate_against_dataset, validate_tree
    from repro.storage.serialize import (
        CorruptSnapshotError,
        load_dataset,
        load_tree,
    )

    try:
        tree = load_tree(args.tree)
    except CorruptSnapshotError as exc:
        print("corrupt tree snapshot (section %r): %s" % (exc.section, exc), file=out)
        return 2
    except OSError as exc:
        print("cannot read tree snapshot %s: %s" % (args.tree, exc), file=out)
        return 2
    report = validate_tree(tree)
    if args.dataset:
        try:
            data = load_dataset(args.dataset)
        except CorruptSnapshotError as exc:
            print(
                "corrupt dataset snapshot (section %r): %s" % (exc.section, exc),
                file=out,
            )
            return 2
        except OSError as exc:
            print(
                "cannot read dataset snapshot %s: %s" % (args.dataset, exc),
                file=out,
            )
            return 2
        report.extend(validate_against_dataset(tree, data))
    print(report.summary(limit=args.max_report), file=out)
    if not report.ok:
        print("violation codes: %s" % ", ".join(report.codes()), file=out)
        return 1
    return 0


def _command_recover(args, out):
    from repro.reliability.recovery import CheckpointedIngest, recover
    from repro.reliability.validate import validate_tree
    from repro.storage.serialize import CorruptSnapshotError, load_dataset

    dataset = None
    if args.dataset:
        try:
            dataset = load_dataset(args.dataset)
        except CorruptSnapshotError as exc:
            print(
                "corrupt dataset snapshot (section %r): %s" % (exc.section, exc),
                file=out,
            )
            return 2
        except OSError as exc:
            print(
                "cannot read dataset snapshot %s: %s" % (args.dataset, exc),
                file=out,
            )
            return 2
    try:
        report = recover(args.directory, name=args.name, dataset=dataset)
    except CorruptSnapshotError as exc:
        print(
            "corrupt state (section %r): %s" % (exc.section, exc), file=out
        )
        return 2
    except OSError as exc:
        print(
            "cannot read state in %s: %s" % (args.directory, exc), file=out
        )
        return 2
    print(report.summary(), file=out)
    if args.checkpoint:
        with CheckpointedIngest(report.tree, args.directory, name=args.name) as ingest:
            path = ingest.checkpoint()
        print("checkpointed to %s" % path, file=out)
    if args.verify:
        validation = validate_tree(report.tree)
        print(validation.summary(), file=out)
        if not validation.ok:
            return 1
    return 0


def _command_serve(args, out, err):
    import os

    from repro.reliability.recovery import CheckpointedIngest, recover
    from repro.service import JsonLineServer, QueryService, ServiceConfig
    from repro.storage.serialize import CorruptSnapshotError, load_tree

    ingest = None
    cluster = None
    try:
        if args.cluster or args.shard_workers:
            from repro.cluster import ClusterStateError, open_cluster

            if args.state_dir:
                print(
                    "--state-dir does not apply with --cluster: each shard "
                    "keeps its own WAL inside the cluster directory",
                    file=err,
                )
                return 2
            resilience = None
            if args.shard_timeout_ms > 0:
                from repro.cluster import ResilienceConfig

                resilience = ResilienceConfig(
                    call_timeout=args.shard_timeout_ms / 1000.0
                )
            if args.shard_workers:
                from repro.cluster import RemoteClusterTree

                try:
                    tree = cluster = RemoteClusterTree.start(
                        args.tree,
                        parallelism=args.parallelism,
                        resilience=resilience,
                        allow_degraded=args.allow_degraded,
                    )
                except ClusterStateError as exc:
                    # Distinct refusal: a cluster manifest rolled back
                    # behind committed shard state (or a shard behind
                    # its checkpoint) must never be served.
                    print(
                        "cannot start shard workers for %s: %s"
                        % (args.tree, exc),
                        file=err,
                    )
                    return 2
                print(
                    "cluster %s: %d shard worker process(es), %d POIs"
                    % (args.tree, len(cluster.shards), len(cluster)),
                    file=out,
                )
                for shard in cluster.shards:
                    handle = shard.handle
                    print(
                        "  shard %d: pid %s on %s:%d (%s)"
                        % (
                            shard.index,
                            handle.pid if handle is not None else "?",
                            shard.client.host,
                            shard.client.port,
                            shard.dirname,
                        ),
                        file=out,
                    )
            else:
                try:
                    tree = cluster = open_cluster(
                        args.tree,
                        parallelism=args.parallelism,
                        resilience=resilience,
                        allow_degraded=args.allow_degraded,
                    )
                except ClusterStateError as exc:
                    print(
                        "cannot open cluster %s: %s" % (args.tree, exc),
                        file=err,
                    )
                    return 2
                print(
                    "cluster %s: %d shards recovered, %d POIs"
                    % (args.tree, len(cluster.shards), len(cluster)),
                    file=out,
                )
            print(
                "shard fault policy: %s, per-shard timeout %s"
                % (
                    "degraded answers allowed"
                    if args.allow_degraded
                    else "strict (degradation raises)",
                    "%gms" % args.shard_timeout_ms
                    if args.shard_timeout_ms > 0
                    else "disabled",
                ),
                file=out,
            )
        elif args.state_dir and os.path.exists(
            os.path.join(args.state_dir, args.name + ".json")
        ):
            # An existing checkpoint + WAL outranks the tree file: it is
            # the durable continuation of a previous serving session.
            report = recover(args.state_dir, name=args.name)
            tree = report.tree
            print(report.summary(), file=out)
        else:
            if args.state_dir:
                stale = [
                    args.name + extension
                    for extension in (".wal", ".digestlog")
                    if os.path.exists(
                        os.path.join(args.state_dir, args.name + extension)
                    )
                ]
                if stale:
                    # A WAL without its checkpoint snapshot means durable
                    # mutations with no base state to replay onto.
                    # Starting fresh here would silently discard them
                    # (the new checkpoint would orphan the old records).
                    print(
                        "state dir %s holds %s but no %s.json checkpoint; "
                        "refusing to start over durable mutations — run "
                        "'repro recover %s' (or remove the directory) first"
                        % (
                            args.state_dir,
                            " and ".join(stale),
                            args.name,
                            args.state_dir,
                        ),
                        file=err,
                    )
                    return 2
            tree = load_tree(args.tree)
        if args.state_dir:
            ingest = CheckpointedIngest(tree, args.state_dir, name=args.name)
    except CorruptSnapshotError as exc:
        print("corrupt state (section %r): %s" % (exc.section, exc), file=err)
        return 2
    except OSError as exc:
        print("cannot read state: %s" % (exc,), file=err)
        return 2
    config = ServiceConfig(
        workers=args.workers,
        batch_size=args.batch_size,
        linger=args.linger_ms / 1000.0,
        queue_limit=args.queue_limit,
        scrub_interval=(
            args.scrub_interval_ms / 1000.0 if args.scrub_interval_ms > 0 else None
        ),
        scrub_budget=args.scrub_budget,
    )
    service = QueryService(tree, ingest=ingest, config=config)
    server = JsonLineServer(service, host=args.host, port=args.port)
    print("serving on %s:%d" % server.address[:2], file=out)
    print(
        "%d workers, batch size %d, linger %gms, queue limit %d"
        % (args.workers, args.batch_size, args.linger_ms, args.queue_limit),
        file=out,
    )
    out.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server._server.server_close()
        service.close()
        if cluster is not None:
            try:
                cluster.checkpoint()
            except ClusterStateError as exc:
                # A reshard still in flight holds the exclusive-
                # maintenance claim; skipping the shutdown checkpoint
                # loses nothing durable (every mutation is in a shard
                # WAL) and must not leak the worker processes below.
                print("shutdown checkpoint skipped: %s" % exc, file=err)
            cluster.close()
        if ingest is not None:
            ingest.checkpoint()
            ingest.close()
    print("shut down", file=out)
    return 0


def _command_shard(args, out):
    from repro.cluster import ClusterTree, save_cluster
    from repro.storage.serialize import CorruptSnapshotError, load_dataset

    try:
        data = load_dataset(args.dataset)
    except CorruptSnapshotError as exc:
        print(
            "corrupt dataset snapshot (section %r): %s" % (exc.section, exc),
            file=out,
        )
        return 2
    except OSError as exc:
        print(
            "cannot read dataset snapshot %s: %s" % (args.dataset, exc),
            file=out,
        )
        return 2
    cluster = ClusterTree.build(
        data,
        num_shards=args.shards,
        method=args.method,
        epoch_length=args.epoch_days,
        strategy=args.strategy,
        node_size=args.node_size,
        tia_backend=args.tia_backend,
    )
    path = save_cluster(cluster, args.out)
    print(
        "wrote %s: %d shards (%s plan), %d POIs"
        % (path, len(cluster.shards), args.method, len(cluster)),
        file=out,
    )
    for shard in cluster.shards:
        region = shard.region
        print(
            "  shard %d: %4d POIs over [%g, %g] x [%g, %g]"
            % (
                shard.index,
                len(shard.tree),
                region.lows[0],
                region.highs[0],
                region.lows[1],
                region.highs[1],
            ),
            file=out,
        )
    cluster.close()
    return 0


def _command_shard_worker(args, out, err):
    import os

    from repro.cluster import ClusterStateError, run_worker
    from repro.storage.serialize import CorruptSnapshotError

    if not os.path.isdir(args.directory):
        print("no shard state directory %s" % args.directory, file=err)
        return 2
    if not os.path.exists(
        os.path.join(args.directory, args.name + ".json")
    ):
        print(
            "%s holds no %s.json checkpoint — not a shard state directory"
            % (args.directory, args.name),
            file=err,
        )
        return 2
    try:
        run_worker(
            args.directory,
            host=args.host,
            port=args.port,
            name=args.name,
            announce=args.announce,
        )
    except (CorruptSnapshotError, ClusterStateError) as exc:
        print(
            "cannot serve shard %s: %s" % (args.directory, exc), file=err
        )
        return 2
    except KeyboardInterrupt:
        pass
    print("shard worker shut down", file=out)
    return 0


#: Commands taking (args, out); the serving commands also take err for
#: their refusal paths (distinct stderr messages, exit code 2).
_COMMANDS = {
    "generate": _command_generate,
    "fit": _command_fit,
    "build": _command_build,
    "query": _command_query,
    "watch": _command_watch,
    "mwa": _command_mwa,
    "verify": _command_verify,
    "recover": _command_recover,
    "serve": _command_serve,
    "shard": _command_shard,
    "shard-worker": _command_shard_worker,
    "lint": _command_lint,
}

_ERR_COMMANDS = frozenset({"serve", "shard-worker"})


def main(argv=None, out=None, err=None):
    """Entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    if err is None:
        err = sys.stderr
    args = build_parser().parse_args(argv)
    if args.command in _ERR_COMMANDS:
        return _COMMANDS[args.command](args, out, err)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
