"""Standing sliding-window kNNTA subscriptions (continuous queries).

The one-shot surface answers "the k best POIs for this interval"; this
package keeps that answer *standing*: a client registers
``(q, window_epochs, k, alpha0, semantics)`` with a
:class:`SubscriptionRegistry` and receives the initial ranked answer
plus ordered top-k deltas (enter / leave / rank-move, each update
carrying the window interval that produced it) every time the window
advances.  Evaluation is incremental — only the POIs whose TIAs changed
in the entering/leaving/digested epochs are re-scored against the
retained frontier, with a proven bound deciding when a fresh
bound-pruned search is required — and every pushed state is
bit-identical to a one-shot ``tree.query()`` at that window.  See
``docs/CONTINUOUS.md``.
"""

from repro.continuous.deltas import DeltaKind, TopKDelta, WindowUpdate, diff_topk
from repro.continuous.evaluator import (
    Baseline,
    EvalOutcome,
    IncrementalEvaluator,
    SubscriptionSpec,
)
from repro.continuous.index import EpochIndex
from repro.continuous.registry import Subscription, SubscriptionRegistry
from repro.continuous.windows import WindowState, window_state

__all__ = [
    "Baseline",
    "DeltaKind",
    "EpochIndex",
    "EvalOutcome",
    "IncrementalEvaluator",
    "Subscription",
    "SubscriptionRegistry",
    "SubscriptionSpec",
    "TopKDelta",
    "WindowState",
    "WindowUpdate",
    "diff_topk",
    "window_state",
]
