"""Epoch → POI inverted index for incremental window evaluation.

When a subscription's window slides, the only POIs whose aggregate can
change *because of the slide* are those with TIA content in the epochs
that entered or left the window.  Scanning every leaf TIA per advance
to find them would defeat the point of incrementality, so the registry
keeps this small inverted index: which POIs have check-in content in
which epoch.  It is built once with one pass over the leaf TIAs and
then maintained from the mutation-observer feed (the digested /
inserted / deleted POI ids), re-reading only those POIs' TIAs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Set


class EpochIndex:
    """Mutable mapping ``epoch -> {poi_id}`` with a reverse map.

    Not thread-safe on its own; the owning registry serialises access
    under its mutex.
    """

    __slots__ = ("_by_epoch", "_poi_epochs")

    def __init__(self) -> None:
        self._by_epoch: Dict[int, Set[Any]] = {}
        self._poi_epochs: Dict[Any, Set[int]] = {}

    def __len__(self) -> int:
        return len(self._poi_epochs)

    def rebuild(self, tree: Any) -> None:
        """Reset and index every POI's TIA epochs (one full scan)."""
        self._by_epoch.clear()
        self._poi_epochs.clear()
        for poi_id in list(tree.poi_ids()):
            self.refresh(tree, poi_id)

    def refresh(self, tree: Any, poi_id: Any) -> None:
        """Re-read ``poi_id``'s TIA and update both maps.

        An unknown id (deleted POI) is discarded from the index.
        """
        try:
            tia = tree.poi_tia(poi_id)
        except KeyError:
            self.discard(poi_id)
            return
        epochs = {epoch for epoch, value in tia.items() if value > 0}
        previous = self._poi_epochs.get(poi_id, set())
        for gone in previous - epochs:
            members = self._by_epoch.get(gone)
            if members is not None:
                members.discard(poi_id)
                if not members:
                    del self._by_epoch[gone]
        for added in epochs - previous:
            self._by_epoch.setdefault(added, set()).add(poi_id)
        if epochs:
            self._poi_epochs[poi_id] = epochs
        else:
            self._poi_epochs.pop(poi_id, None)

    def discard(self, poi_id: Any) -> None:
        """Drop ``poi_id`` from both maps (no-op when absent)."""
        for epoch in self._poi_epochs.pop(poi_id, ()):
            members = self._by_epoch.get(epoch)
            if members is not None:
                members.discard(poi_id)
                if not members:
                    del self._by_epoch[epoch]

    def members(self, epochs: Iterable[int]) -> Set[Any]:
        """All POIs with content in any of ``epochs``."""
        found: Set[Any] = set()
        for epoch in epochs:
            found |= self._by_epoch.get(epoch, set())
        return found
