"""Standing-subscription registry: observe mutations, push deltas.

:class:`SubscriptionRegistry` owns the continuous-query lifecycle for
one tree (a single :class:`~repro.core.tar_tree.TARTree` or a
:class:`~repro.cluster.coordinator.ClusterTree`):

* it attaches a post-mutation observer to the tree (each shard's tree,
  for a cluster) and accumulates the POI ids whose TIAs changed — the
  *dirty set* the incremental evaluator re-scores;
* :meth:`subscribe` answers the standing query once, fresh, and
  retains the exact frontier as the incremental baseline;
* :meth:`advance` — called after mutations were applied (the service
  calls it from ``digest`` under its read lock) — re-evaluates every
  subscription, pushes a :class:`~repro.continuous.deltas.WindowUpdate`
  to each sink whose window moved or whose top-k changed, and returns
  the pushed updates.

Locking: three locks from the canonical hierarchy
(:mod:`repro.devtools.lockmodel`).  The *advance gate* (rank 0, the
outermost lock in the whole engine) serialises fan-out rounds
end-to-end — evaluate, record, deliver — so each sink still sees its
subscription's updates in strict ``seq`` order.  The registry *mutex*
(rank 50) guards subscription state and is held only for the
snapshot and record phases, **never across evaluation or sink
delivery**: evaluation on a cluster tree dispatches through shard
guards whose shard (rank 30) and breaker (rank 40) locks rank above
the mutex, and sinks run on a snapshot under the gate alone, so a
sink may freely re-enter the registry or the owning service
(``unsubscribe`` from inside a sink acquires rank 50 or rank 10 under
rank 0 — a legal descent, where the old held-mutex delivery
deadlocked).  The observer callback touches
only the separate *dirty-set* lock (rank 75), never the tree, so it
can run under the tree's write locks without lock-order risk.

Callers must not mutate the tree concurrently with :meth:`advance`;
the service passes its readers-writer lock (``advance(lock=...)``)
and the registry takes the *read* side under the gate — gate (0) →
service lock (10), descending — which excludes writers for exactly
the evaluation phase while letting concurrent queries proceed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.continuous.deltas import WindowUpdate, diff_topk
from repro.continuous.evaluator import (
    Baseline,
    IncrementalEvaluator,
    SubscriptionSpec,
)
from repro.continuous.index import EpochIndex
from repro.continuous.windows import WindowState
from repro.core.query import QueryResult
from repro.devtools.lockmodel import ADVANCE_GATE, DIRTY, REGISTRY
from repro.devtools.watchdog import monitored_lock, monitored_rlock
from repro.temporal.tia import IntervalSemantics

UpdateSink = Callable[[WindowUpdate], None]


class Subscription:
    """One registered standing query (a handle; state lives with it)."""

    __slots__ = (
        "id",
        "spec",
        "sink",
        "seq",
        "baseline",
        "last_rows",
        "last_window",
        "last_exact",
        "last_update",
    )

    def __init__(
        self, sub_id: int, spec: SubscriptionSpec, sink: Optional[UpdateSink]
    ) -> None:
        self.id = sub_id
        self.spec = spec
        self.sink = sink
        self.seq = 0
        self.baseline = Baseline()
        self.last_rows: Tuple[QueryResult, ...] = ()
        self.last_window: Optional[WindowState] = None
        self.last_exact = True
        self.last_update: Optional[WindowUpdate] = None

    def __repr__(self) -> str:
        return "Subscription(id=%d, k=%d, window=%d, seq=%d)" % (
            self.id,
            self.spec.k,
            self.spec.window_epochs,
            self.seq,
        )


class SubscriptionRegistry:
    """Standing sliding-window kNNTA subscriptions over one tree."""

    def __init__(self, tree: Any) -> None:
        self.tree = tree
        self._advance_gate = monitored_lock(ADVANCE_GATE)
        self._mutex = monitored_rlock(REGISTRY)
        self._dirty_lock = monitored_lock(DIRTY)
        self._dirty: Set[Any] = set()
        self._index = EpochIndex()
        self._evaluator = IncrementalEvaluator(tree, self._index)
        self._subscriptions: Dict[int, Subscription] = {}
        self._next_id = 1
        self._observed: List[Any] = []
        self._indexed = False
        self._closed = False
        # Counters (all monotonic except the derived active count).
        self._subscribed_total = 0
        self._updates_delivered = 0
        self._incremental_evals = 0
        self._fresh_evals = 0
        self._eval_errors = 0
        self._delivery_errors = 0

    # ------------------------------------------------------------------
    # Mutation feed
    # ------------------------------------------------------------------

    def _observe(self, kind: str, poi_ids: Tuple[Any, ...]) -> None:
        """Post-mutation observer: record the touched POIs, nothing else."""
        with self._dirty_lock:
            self._dirty.update(poi_ids)

    def _drain_dirty(self) -> Set[Any]:
        with self._dirty_lock:
            dirty = self._dirty
            self._dirty = set()
        return dirty

    def _observable_trees(self) -> List[Any]:
        shards = getattr(self.tree, "shards", None)
        if shards is None:
            return [self.tree]
        return [shard.tree for shard in shards]

    def _attach_observers(self) -> bool:
        """(Re-)attach to every underlying tree; True when any changed.

        Shard recovery replaces a shard's tree object wholesale, which
        silently drops our observer — so every advance re-checks the
        identity of the observed trees and, on any change, rebuilds the
        epoch index and forces fresh evaluations (mutations on the
        replaced tree may have gone unobserved).
        """
        current = self._observable_trees()
        changed = False
        for tree in current:
            if not any(tree is seen for seen in self._observed):
                tree.add_mutation_observer(self._observe)
                changed = True
        if changed or len(current) != len(self._observed):
            self._observed = current
        return changed

    def _detach_observers(self) -> None:
        for tree in self._observed:
            tree.remove_mutation_observer(self._observe)
        self._observed = []

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------

    def subscribe(
        self,
        point: Tuple[float, float],
        window_epochs: int,
        k: int = 10,
        alpha0: float = 0.3,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        sink: Optional[UpdateSink] = None,
    ) -> Tuple[Subscription, WindowUpdate]:
        """Register a standing query; returns it with its initial state.

        The initial :class:`WindowUpdate` (``seq`` 0, every row an
        ``ENTER`` delta, from a fresh bound-pruned search) is *returned*,
        not pushed — ``sink`` receives only the subsequent updates.

        The fresh evaluation runs *outside* the registry mutex: on a
        cluster tree it dispatches through shard guards, whose shard
        (rank 30) and breaker (rank 40) locks rank above the mutex
        (rank 50) — evaluating under the mutex would ascend the
        hierarchy.  The mutex covers only the two state phases around
        it.  The epoch index is not needed here (a fresh evaluation
        bypasses it); the first :meth:`advance` builds it.
        """
        spec = SubscriptionSpec(
            point=(float(point[0]), float(point[1])),
            window_epochs=window_epochs,
            k=k,
            alpha0=alpha0,
            semantics=semantics,
        )
        with self._mutex:
            if self._closed:
                raise RuntimeError("subscription registry is closed")
            self._attach_observers()
            subscription = Subscription(self._next_id, spec, sink)
            self._next_id += 1
        outcome = self._evaluator.evaluate(
            spec, subscription.baseline, set(), force_fresh=True
        )
        with self._mutex:
            if self._closed:
                raise RuntimeError("subscription registry is closed")
            self._fresh_evals += 1
            update = self._record_update(subscription, outcome.window, outcome)
            self._subscriptions[subscription.id] = subscription
            self._subscribed_total += 1
            return subscription, update

    def unsubscribe(self, subscription: "Subscription | int") -> bool:
        """Drop a subscription (by handle or id); True when it existed."""
        sub_id = (
            subscription.id
            if isinstance(subscription, Subscription)
            else int(subscription)
        )
        with self._mutex:
            return self._subscriptions.pop(sub_id, None) is not None

    def subscription_ids(self) -> List[int]:
        with self._mutex:
            return sorted(self._subscriptions)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._subscriptions)

    # ------------------------------------------------------------------
    # Advancing
    # ------------------------------------------------------------------

    def advance(self, lock: Any = None) -> List[WindowUpdate]:
        """Re-evaluate every subscription after applied mutations.

        Pushes an update to a subscription's sink when its window moved,
        its ranked rows changed, or its exactness flipped (a shard went
        down or came back); returns every update produced this round.

        The whole round runs under the advance *gate* (rank 0), which
        serialises rounds and keeps per-sink ``seq`` order without
        holding any state lock during delivery.  ``lock`` — when the
        caller owns a readers-writer lock guarding the tree (the
        service passes its own) — is taken on the *read* side for the
        evaluation phase only, so writers are excluded exactly while
        evaluators walk the tree and sinks never run under it.
        """
        with self._advance_gate:
            if lock is not None:
                with lock.read_locked():
                    delivered = self._evaluate_round()
            else:
                delivered = self._evaluate_round()
            self._deliver(delivered)
            return [update for _sink, update in delivered]

    def _evaluate_round(self) -> List[Tuple[Optional[UpdateSink], WindowUpdate]]:
        """One fan-out round: snapshot, evaluate, record.

        Three phases so the mutex (rank 50) is never held while the
        evaluators walk the tree — on a cluster that dispatch takes
        shard (rank 30) and breaker (rank 40) locks, which rank above
        the mutex.  Phase 1 snapshots round state under the mutex;
        the evaluation phase runs under the gate (and the caller's
        read lock) alone; phase 2 re-checks membership and records
        under the mutex.  Delivery happens later, under the gate only.
        """
        with self._mutex:
            if self._closed or not self._subscriptions:
                # Leave the dirty set intact: it is a bounded set of POI
                # ids and the next subscriber's advance refreshes the
                # epoch index from it.
                return []
            force_fresh = self._attach_observers()
            rebuild = force_fresh or not self._indexed
            dirty = self._drain_dirty()
            subscriptions = list(self._subscriptions.values())
        # The gate serialises rounds and subscribe never touches the
        # index, so the index and the per-subscription baselines are
        # exclusively ours between the phases.
        if rebuild:
            self._index.rebuild(self.tree)
            self._indexed = True
        else:
            for poi_id in dirty:
                self._index.refresh(self.tree, poi_id)
        outcomes: List[Tuple[Subscription, Optional[Any]]] = []
        for subscription in subscriptions:
            outcomes.append(
                (subscription, self._evaluate_one(subscription, dirty,
                                                  force_fresh))
            )
        with self._mutex:
            if self._closed:
                return []
            delivered: List[Tuple[Optional[UpdateSink], WindowUpdate]] = []
            for subscription, outcome in outcomes:
                if subscription.id not in self._subscriptions:
                    continue  # unsubscribed between the phases
                update = self._record_one(subscription, outcome)
                if update is not None:
                    delivered.append((subscription.sink, update))
            return delivered

    def _evaluate_one(
        self, subscription: Subscription, dirty: Set[Any], force_fresh: bool
    ) -> Optional[Any]:
        """Evaluate one subscription without registry locks held."""
        try:
            return self._evaluator.evaluate(
                subscription.spec,
                subscription.baseline,
                dirty,
                force_fresh=force_fresh,
            )
        except Exception:
            subscription.baseline.invalidate()
            return None

    def _record_one(
        self, subscription: Subscription, outcome: Optional[Any]
    ) -> Optional[WindowUpdate]:
        """Record one outcome under the mutex; None when nothing moved."""
        if outcome is None:
            self._eval_errors += 1
            return None
        if outcome.incremental:
            self._incremental_evals += 1
        else:
            self._fresh_evals += 1
        rows = tuple(outcome.answer.rows)
        moved = outcome.window != subscription.last_window
        changed = rows != subscription.last_rows
        flipped = bool(outcome.answer.exact) != subscription.last_exact
        if not (moved or changed or flipped):
            return None
        update = self._record_update(subscription, outcome.window, outcome)
        self._updates_delivered += 1
        return update

    def _deliver(
        self, delivered: List[Tuple[Optional[UpdateSink], WindowUpdate]]
    ) -> None:
        """Fire sinks on the recorded snapshot, under the gate alone.

        No state lock is held here: a sink may re-enter the registry
        (``unsubscribe``) or the owning service — every lock it can
        reach ranks below the gate.
        """
        for sink, update in delivered:
            if sink is None:
                continue
            try:
                sink(update)
            except Exception:
                with self._mutex:
                    self._delivery_errors += 1

    def _record_update(
        self,
        subscription: Subscription,
        window: WindowState,
        outcome: Any,
    ) -> WindowUpdate:
        rows = tuple(outcome.answer.rows)
        update = WindowUpdate(
            subscription_id=subscription.id,
            seq=subscription.seq,
            window=window,
            answer=outcome.answer,
            deltas=diff_topk(subscription.last_rows, rows),
            incremental=outcome.incremental,
        )
        subscription.seq += 1
        subscription.last_rows = rows
        subscription.last_window = window
        subscription.last_exact = bool(outcome.answer.exact)
        subscription.last_update = update
        return update

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """JSON-ready running totals (dotted keys, like the cluster's)."""
        with self._mutex:
            return {
                "subscriptions.active": len(self._subscriptions),
                "subscriptions.total": self._subscribed_total,
                "updates.delivered": self._updates_delivered,
                "evals.incremental": self._incremental_evals,
                "evals.fresh": self._fresh_evals,
                "evals.errors": self._eval_errors,
                "deliveries.failed": self._delivery_errors,
            }

    def close(self) -> None:
        """Detach observers and drop every subscription."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._detach_observers()
            self._subscriptions.clear()
            with self._dirty_lock:
                self._dirty.clear()
