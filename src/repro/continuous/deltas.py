"""Top-k delta model for standing subscriptions.

A pushed update carries the *full* re-ranked answer (so a subscriber is
never more than one frame away from the whole state) plus the ordered
list of :class:`TopKDelta` records describing how the top-k changed
since the previous push: POIs that left, POIs that entered, and POIs
whose rank moved.  Deltas are ordered leaves-first (by old rank), then
enters/moves by new rank, so replaying them against the previous row
list reconstructs the new one.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, NamedTuple, Optional, Sequence, Tuple

from repro.core.query import Answer, QueryResult

if TYPE_CHECKING:
    from repro.continuous.windows import WindowState


class DeltaKind(enum.Enum):
    """How one POI's membership/position in the top-k changed."""

    ENTER = "enter"
    LEAVE = "leave"
    MOVE = "move"


class TopKDelta(NamedTuple):
    """One ordered change to the top-k.

    ``rank`` is the new 0-based rank (``None`` for a leave), ``old_rank``
    the previous one (``None`` for an enter).  ``row`` is the new ranked
    row (``None`` for a leave) — note a ``MOVE`` row's score may differ
    from the previous push even though only the rank is reported: the
    full answer on the update is always the fresh state.
    """

    kind: DeltaKind
    poi_id: object
    rank: Optional[int]
    old_rank: Optional[int]
    row: Optional[QueryResult]

    def describe(self) -> dict[str, object]:
        """JSON-ready form (used by the wire layer and the CLI)."""
        payload: dict[str, object] = {
            "kind": self.kind.value,
            "poi_id": self.poi_id,
        }
        if self.rank is not None:
            payload["rank"] = self.rank
        if self.old_rank is not None:
            payload["old_rank"] = self.old_rank
        if self.row is not None:
            payload["score"] = self.row.score
        return payload


class WindowUpdate(NamedTuple):
    """One pushed state of one subscription at one window position.

    ``answer`` is the complete re-ranked answer (a
    :class:`~repro.core.query.RankedAnswer`, or a degraded answer when
    a cluster shard is down — check ``answer.exact``); ``deltas`` the
    ordered changes against the previously *pushed* state.
    ``incremental`` records whether the evaluator re-scored only the
    changed candidates (``True``) or fell back to a fresh bound-pruned
    search (``False``).
    """

    subscription_id: int
    seq: int
    window: "WindowState"
    answer: Answer
    deltas: Tuple[TopKDelta, ...]
    incremental: bool

    @property
    def exact(self) -> bool:
        """``True`` when the pushed answer reflects every shard."""
        return bool(self.answer.exact)

    @property
    def degraded(self) -> bool:
        """``True`` for an explicit, bounded degradation (shard down)."""
        return not self.answer.exact


def diff_topk(
    old_rows: Sequence[QueryResult], new_rows: Sequence[QueryResult]
) -> Tuple[TopKDelta, ...]:
    """Ordered deltas turning ``old_rows`` into ``new_rows``.

    Leaves come first (ascending old rank), then enters and moves in
    ascending new rank.  A POI whose rank is unchanged produces no
    delta even if its score changed — the update's full answer carries
    the fresh scores.
    """
    old_rank = {row.poi_id: rank for rank, row in enumerate(old_rows)}
    new_rank = {row.poi_id: rank for rank, row in enumerate(new_rows)}
    deltas = [
        TopKDelta(DeltaKind.LEAVE, row.poi_id, None, rank, None)
        for rank, row in enumerate(old_rows)
        if row.poi_id not in new_rank
    ]
    for rank, row in enumerate(new_rows):
        previous = old_rank.get(row.poi_id)
        if previous is None:
            deltas.append(TopKDelta(DeltaKind.ENTER, row.poi_id, rank, None, row))
        elif previous != rank:
            deltas.append(TopKDelta(DeltaKind.MOVE, row.poi_id, rank, previous, row))
    return tuple(deltas)
