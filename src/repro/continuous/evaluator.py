"""Incremental re-evaluation of one standing kNNTA subscription.

A window advance changes a POI's ranking score in exactly three ways:
its aggregate ``g`` changed because an epoch entered or left the
window, its aggregate changed because a digest wrote into an in-window
epoch, or the shared normaliser ``g_max`` moved (which rescales *every*
score, but monotonically in ``g``).  Positions never change, so the
distance term is immutable per POI.

The evaluator exploits this: it re-scores only the *candidates* — the
previously pushed top-k plus every POI whose TIA changed (the mutation
observers' dirty set) plus every POI with content in an epoch that
entered or left the window (:class:`~repro.continuous.index.EpochIndex`)
— and accepts the resulting top-k only when it can *prove* no other POI
could crack the frontier:

Let ``kth1`` be the k-th (worst) score of the previously pushed exact
answer under the previous normaliser ``G1``, and ``G2`` the new
``g_max``.  Every non-candidate ``p`` kept its raw aggregate
(``g2_p = g1_p``, else it would be a candidate) and satisfied
``score1(p) >= kth1`` (it was not in the top-k).  Since

    score2(p) - score1(p) = alpha1 * g_p * (G2 - G1) / (G1 * G2)

with ``g_p in [0, G1]``, every non-candidate is bounded below by

    L = kth1                                  when G2 >= G1
    L = kth1 - alpha1 * (G1 - G2) / G2        when G2 <  G1

The incremental top-k is accepted iff its k-th candidate score ``tau``
satisfies ``tau < L`` *strictly* — otherwise a non-candidate might tie
or beat the boundary and the evaluator falls back to a fresh
bound-pruned search.  Any tie among the leading candidates also forces
a fallback: a fresh search breaks score ties by heap insertion order
(traversal-dependent), which re-scoring cannot reproduce, and the
pushed state must stay bit-identical to ``tree.query()``.

Candidate scoring replicates :func:`repro.core.knnta.knnta_browse`'s
leaf scoring operation for operation (degenerate-rect MINDIST, the
tree's TIA aggregation, ``Normalizer.components``) so an accepted
incremental answer is bitwise the one a fresh search would return.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Set, Tuple

from repro.continuous.index import EpochIndex
from repro.continuous.windows import WindowState, window_state
from repro.core.query import (
    Answer,
    KNNTAQuery,
    Normalizer,
    QueryResult,
    RankedAnswer,
)
from repro.spatial.geometry import Rect
from repro.temporal.tia import IntervalSemantics


@dataclass
class SubscriptionSpec:
    """The immutable parameters of one standing query."""

    point: Tuple[float, float]
    window_epochs: int
    k: int = 10
    alpha0: float = 0.3
    semantics: IntervalSemantics = IntervalSemantics.INTERSECTS


@dataclass
class Baseline:
    """The retained frontier one subscription re-evaluates against.

    Only an *exact* pushed answer may serve as a baseline: a degraded
    answer's rows say nothing about the scores of the missed shards'
    POIs, so after a degradation the evaluator keeps falling back to
    fresh searches until an exact answer restores the invariant.
    """

    rows: Tuple[QueryResult, ...] = ()
    normalizer: Optional[Normalizer] = None
    epochs: range = field(default_factory=lambda: range(0))
    valid: bool = False

    def invalidate(self) -> None:
        self.rows = ()
        self.normalizer = None
        self.valid = False


class EvalOutcome:
    """One evaluation's result: the answer, its window, and how it was made."""

    __slots__ = ("answer", "window", "incremental")

    def __init__(
        self, answer: Answer, window: WindowState, incremental: bool
    ) -> None:
        self.answer = answer
        self.window = window
        self.incremental = incremental


class IncrementalEvaluator:
    """Evaluates subscriptions against one tree (single or cluster)."""

    __slots__ = ("tree", "index", "_is_cluster")

    def __init__(self, tree: Any, index: EpochIndex) -> None:
        self.tree = tree
        self.index = index
        self._is_cluster = bool(getattr(tree, "is_cluster", False))

    def evaluate(
        self,
        spec: SubscriptionSpec,
        baseline: Baseline,
        dirty: Set[Any],
        force_fresh: bool = False,
    ) -> EvalOutcome:
        """Answer ``spec`` at the tree's current window.

        ``dirty`` is the set of POI ids whose TIAs changed since the
        baseline was pushed (from the mutation observers).  Updates
        ``baseline`` in place for the next round.
        """
        tree = self.tree
        window = window_state(
            tree.clock, tree.current_time, spec.window_epochs, spec.semantics
        )
        query = KNNTAQuery(
            spec.point, window.interval, spec.k, spec.alpha0, spec.semantics
        )
        shards_down = 0
        if self._is_cluster:
            shards_down = int(tree.counters().get("shards.down", 0))
        normalizer: Normalizer = tree.normalizer(window.interval, spec.semantics)
        rows: Optional[list[QueryResult]] = None
        if not force_fresh and not shards_down and baseline.valid:
            rows = self._incremental_rows(query, window, baseline, dirty, normalizer)
        if rows is not None:
            answer: Answer = RankedAnswer(rows)
            incremental = True
        else:
            incremental = False
            if self._is_cluster:
                answer = tree.query(
                    query, normalizer=normalizer, allow_degraded=True
                )
            else:
                answer = tree.query(query, normalizer=normalizer)
        if answer.exact:
            baseline.rows = tuple(answer.rows)
            baseline.normalizer = normalizer
            baseline.valid = True
        else:
            baseline.invalidate()
        baseline.epochs = window.epochs
        return EvalOutcome(answer, window, incremental)

    def _incremental_rows(
        self,
        query: KNNTAQuery,
        window: WindowState,
        baseline: Baseline,
        dirty: Set[Any],
        normalizer: Normalizer,
    ) -> Optional[list[QueryResult]]:
        """The re-scored top-k, or ``None`` when a fresh search is needed."""
        previous = baseline.normalizer
        if previous is None:
            return None
        tree = self.tree
        changed = set(dirty)
        if baseline.epochs != window.epochs:
            shifted = set(baseline.epochs).symmetric_difference(window.epochs)
            changed |= self.index.members(shifted)
        candidates = {row.poi_id for row in baseline.rows} | changed
        scored: list[QueryResult] = []
        for poi_id in candidates:
            try:
                poi = tree.poi(poi_id)
                tia = tree.poi_tia(poi_id)
            except KeyError:
                continue  # deleted since the last push
            raw_distance = Rect.from_point(poi.point).min_dist(query.point)
            raw_aggregate = tree.tia_aggregate(
                tia, query.interval, query.semantics
            )
            distance, aggregate = normalizer.components(
                raw_distance, raw_aggregate
            )
            score = query.alpha0 * distance + query.alpha1 * (1.0 - aggregate)
            scored.append(QueryResult(poi_id, score, distance, aggregate))
        scored.sort(key=lambda row: row.score)
        k = query.k
        tree_size = len(tree)
        if len(scored) < min(k, tree_size):
            return None  # a non-candidate must fill the top-k: cannot rank it
        head = scored[: k + 1]
        for left, right in zip(head, head[1:]):
            # Exact equality is the point: a bitwise tie makes rank order
            # traversal-dependent, so the incremental path must bail to a
            # fresh evaluation.  An epsilon would *create* false ties and
            # discard valid incremental rounds.
            if left.score == right.score:  # repro: allow[RT004]
                return None  # tie order is traversal-dependent: go fresh
        if len(scored) < tree_size:
            # Non-candidates exist; prove none can crack the frontier.
            kth1 = (
                baseline.rows[-1].score
                if len(baseline.rows) >= k
                else math.inf
            )
            bound = kth1
            g1 = previous.g_max
            g2 = normalizer.g_max
            if g2 < g1 and math.isfinite(kth1):
                bound = kth1 - query.alpha1 * (g1 - g2) / g2
            tau = scored[k - 1].score
            if not tau < bound:
                return None
        return scored[:k]
