"""Sliding-window derivation for standing kNNTA subscriptions.

A subscription asks for "the last ``window_epochs`` epochs, as of the
tree's clock".  :func:`window_state` turns ``(clock, current_time,
window_epochs, semantics)`` into the concrete
:class:`~repro.temporal.epochs.TimeInterval` a one-shot
:class:`~repro.core.query.KNNTAQuery` would carry — and, crucially, the
epoch range is *derived from that interval* through
``clock.epoch_range(interval, semantics)``, never computed separately.
That makes the incremental evaluator and a fresh ``tree.query()`` agree
on the window by construction: both see exactly the epochs the interval
selects under the subscription's semantics.

The interval endpoints are chosen so the selected epochs are the
trailing ``window_epochs`` ones:

* the start is the ``ts`` of the first trailing epoch;
* for ``CONTAINED`` the end is the last epoch's ``te`` (its span must
  lie inside the interval), falling back to ``ts`` when the epoch is
  the open tail of a :class:`~repro.temporal.epochs.VariedEpochClock`
  (an infinite epoch is never contained in a finite interval);
* for ``INTERSECTS`` the end is the last epoch's midpoint (an endpoint
  at ``te`` would also intersect the *next* epoch), again falling back
  to ``ts`` for the open tail.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Union

from repro.temporal.epochs import EpochClock, TimeInterval, VariedEpochClock
from repro.temporal.tia import IntervalSemantics

Clock = Union[EpochClock, VariedEpochClock]


class WindowState(NamedTuple):
    """One subscription's window at one instant of the tree clock.

    ``epochs`` is the range ``clock.epoch_range(interval, semantics)``
    selects — the single source of truth for which epochs are "in" the
    window (it can be narrower than ``[first_epoch, latest_epoch]``,
    e.g. ``CONTAINED`` over a clock with an open tail epoch).
    """

    interval: TimeInterval
    epochs: range
    first_epoch: int
    latest_epoch: int

    def describe(self) -> dict[str, object]:
        """JSON-ready summary (used by the wire layer and the CLI)."""
        return {
            "interval": [self.interval.start, self.interval.end],
            "epochs": [self.epochs.start, self.epochs.stop],
            "first_epoch": self.first_epoch,
            "latest_epoch": self.latest_epoch,
        }


def window_state(
    clock: Clock,
    current_time: float,
    window_epochs: int,
    semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
) -> WindowState:
    """The trailing-``window_epochs`` window as of ``current_time``.

    The latest epoch is the newest one that has begun by
    ``current_time`` (epoch 0 before the clock starts); the window
    covers it and the ``window_epochs - 1`` epochs before it, clamped
    at epoch 0.
    """
    if window_epochs < 1:
        raise ValueError("window_epochs must be >= 1, got %d" % window_epochs)
    latest = max(clock.num_epochs(current_time) - 1, 0)
    first = max(latest - window_epochs + 1, 0)
    start = clock.bounds(first)[0]
    ts_last, te_last = clock.bounds(latest)
    if semantics.name == "CONTAINED":
        end = te_last if math.isfinite(te_last) else ts_last
    else:
        end = (ts_last + te_last) / 2.0 if math.isfinite(te_last) else ts_last
    interval = TimeInterval(start, end)
    epochs = clock.epoch_range(interval, semantics)
    return WindowState(interval, epochs, first, latest)
