"""A from-scratch R*-tree (Beckmann et al., SIGMOD 1990).

The module has two layers:

* Pure grouping algorithms — :func:`rstar_choose_subtree`,
  :func:`rstar_split_groups` and :func:`reinsert_indices` — that operate on
  plain lists of :class:`~repro.spatial.geometry.Rect`.  The TAR-tree
  (:mod:`repro.core.tar_tree`) reuses these for its spatial and integral-3D
  entry grouping strategies, so they are kept free of tree plumbing.
* :class:`RStarTree`, a complete standalone in-memory R*-tree with insert,
  delete, window search and best-first k-nearest-neighbour search.

The implementation follows the original paper: choose-subtree minimises
overlap enlargement at the leaf level and area enlargement above it,
overflow triggers one forced reinsertion per level per insertion (the 30%
of entries whose centers are farthest from the node center), and splits
pick the axis with the least margin sum and the distribution with the
least overlap.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import TYPE_CHECKING, Any, Iterator, Sequence, cast

from repro.spatial.geometry import Rect

if TYPE_CHECKING:
    from repro.storage.stats import AccessStats

DEFAULT_REINSERT_RATIO = 0.3
DEFAULT_MIN_FILL_RATIO = 0.4


# ---------------------------------------------------------------------------
# Pure grouping algorithms (shared with the TAR-tree strategies)
# ---------------------------------------------------------------------------


def rstar_choose_subtree(
    rects: Sequence[Rect], new_rect: Rect, children_are_leaves: bool
) -> int:
    """Return the index of the child rectangle that should receive ``new_rect``.

    ``rects`` are the (grouping-space) rectangles of the candidate child
    entries.  When the children are leaf nodes the R*-tree minimises the
    *overlap enlargement* caused by the insertion; otherwise it minimises
    the *area enlargement*.  Ties fall back to area enlargement and then
    to area, as in the original paper.
    """
    if not rects:
        raise ValueError("cannot choose a subtree among zero children")
    if children_are_leaves:
        return _choose_least_overlap_enlargement(rects, new_rect)
    return _choose_least_area_enlargement(rects, new_rect)


def _choose_least_area_enlargement(rects: Sequence[Rect], new_rect: Rect) -> int:
    best_index = 0
    best_key: tuple[float, float] | None = None
    for i, rect in enumerate(rects):
        key = (rect.enlargement(new_rect), rect.area())
        if best_key is None or key < best_key:
            best_key = key
            best_index = i
    return best_index


_OVERLAP_CANDIDATES = 32


def _choose_least_overlap_enlargement(rects: Sequence[Rect], new_rect: Rect) -> int:
    # Overlap enlargement is O(n^2) in the fan-out.  Beckmann et al.'s
    # remedy for large nodes: rank entries by area enlargement and test
    # overlap only for the best 32 candidates.
    candidates: Sequence[int] = range(len(rects))
    if len(rects) > _OVERLAP_CANDIDATES:
        candidates = sorted(
            candidates, key=lambda i: rects[i].enlargement(new_rect)
        )[:_OVERLAP_CANDIDATES]
    best_index = 0
    best_key: tuple[float, float, float] | None = None
    for i in candidates:
        rect = rects[i]
        enlarged = rect.union(new_rect)
        overlap_before = 0.0
        overlap_after = 0.0
        for j, other in enumerate(rects):
            if j == i:
                continue
            overlap_before += rect.overlap_area(other)
            overlap_after += enlarged.overlap_area(other)
        key = (
            overlap_after - overlap_before,
            rect.enlargement(new_rect),
            rect.area(),
        )
        if best_key is None or key < best_key:
            best_key = key
            best_index = i
    return best_index


def rstar_split_groups(
    rects: Sequence[Rect], min_fill: int
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split overflowing rectangles into two groups, R*-tree style.

    Returns two tuples of indices into ``rects``.  The split axis is the
    one minimising the margin sum over all legal distributions; along that
    axis the chosen distribution minimises overlap, breaking ties on total
    area.  Each group receives at least ``min_fill`` entries.
    """
    total = len(rects)
    if total < 2:
        raise ValueError("cannot split fewer than two entries")
    if min_fill < 1 or 2 * min_fill > total:
        raise ValueError(
            "min_fill %d is invalid for %d entries" % (min_fill, total)
        )
    dims = rects[0].dims

    best_axis_order: tuple[list[int], list[int]] | None = None
    best_margin_sum: float | None = None
    for axis in range(dims):
        by_low = sorted(range(total), key=lambda i: (rects[i].lows[axis], rects[i].highs[axis]))
        by_high = sorted(range(total), key=lambda i: (rects[i].highs[axis], rects[i].lows[axis]))
        margin_sum = 0.0
        for order in (by_low, by_high):
            prefixes, suffixes = _running_unions(rects, order)
            for split_at in range(min_fill, total - min_fill + 1):
                margin_sum += prefixes[split_at - 1].margin() + suffixes[split_at].margin()
        if best_margin_sum is None or margin_sum < best_margin_sum:
            best_margin_sum = margin_sum
            best_axis_order = (by_low, by_high)
    if best_axis_order is None:
        raise AssertionError("no split axis for %d-dimensional entries" % dims)

    best_groups: tuple[tuple[int, ...], tuple[int, ...]] | None = None
    best_key: tuple[float, float] | None = None
    for order in best_axis_order:
        prefixes, suffixes = _running_unions(rects, order)
        for split_at in range(min_fill, total - min_fill + 1):
            first = prefixes[split_at - 1]
            second = suffixes[split_at]
            key = (first.overlap_area(second), first.area() + second.area())
            if best_key is None or key < best_key:
                best_key = key
                best_groups = (tuple(order[:split_at]), tuple(order[split_at:]))
    if best_groups is None:
        raise AssertionError("no legal split distribution")
    return best_groups


def _running_unions(
    rects: Sequence[Rect], order: Sequence[int]
) -> tuple[list[Rect], list[Rect]]:
    """Prefix and suffix bounding rectangles along ``order``.

    ``prefixes[i]`` bounds ``order[:i+1]``; ``suffixes[i]`` bounds
    ``order[i:]``.  Makes every split distribution O(1) to evaluate.
    """
    prefixes: list[Rect] = []
    running: Rect | None = None
    for i in order:
        running = rects[i] if running is None else running.union(rects[i])
        prefixes.append(running)
    suffixes_reversed: list[Rect] = []
    running = None
    for position in range(len(order) - 1, -1, -1):
        rect = rects[order[position]]
        running = rect if running is None else running.union(rect)
        suffixes_reversed.append(running)
    suffixes_reversed.reverse()
    return prefixes, suffixes_reversed


def reinsert_indices(rects: Sequence[Rect], count: int) -> tuple[int, ...]:
    """Return the indices of the ``count`` entries to force-reinsert.

    Per the R*-tree, these are the entries whose centers are farthest from
    the center of the node's bounding rectangle, removed farthest-first.
    """
    if count <= 0:
        return ()
    node_center = Rect.union_all(rects).center
    order = sorted(
        range(len(rects)),
        key=lambda i: -_center_distance_sq(rects[i], node_center),
    )
    return tuple(order[:count])


def _center_distance_sq(rect: Rect, point: Sequence[float]) -> float:
    total = 0.0
    for lo, hi, value in zip(rect.lows, rect.highs, point):
        delta = (lo + hi) / 2.0 - value
        total += delta * delta
    return total


# ---------------------------------------------------------------------------
# Tree structure
# ---------------------------------------------------------------------------

_node_ids = itertools.count()


class Entry:
    """One slot of an R-tree node.

    Leaf entries carry a payload ``item``; internal entries carry a
    ``child`` node.  ``rect`` is the bounding rectangle in grouping space.
    The optional ``mbr`` and ``tia`` slots are used by the TAR-tree layer
    (spatial MBR when grouping space is 3-D, and the entry's temporal
    index); they stay ``None`` for plain spatial trees, where ``mbr`` is
    the same object as ``rect``.
    """

    __slots__ = ("rect", "child", "item", "mbr", "tia")

    def __init__(
        self,
        rect: Rect,
        child: Node | None = None,
        item: Any = None,
        mbr: Rect | None = None,
        tia: Any = None,
    ) -> None:
        self.rect = rect
        self.child = child
        self.item = item
        self.mbr = rect if mbr is None else mbr
        self.tia = tia

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:
        kind = "item=%r" % (self.item,) if self.child is None else "child=node"
        return "Entry(%r, %s)" % (self.rect, kind)


class Node:
    """An R-tree node; ``level`` 0 marks a leaf.

    ``stamp`` is a mutation counter for layers that cache per-node
    derived state (the TAR-tree's packed frames,
    :mod:`repro.core.frames`): code under such a cache that changes the
    entry list or an entry's rect/MBR/TIA content — splits, forced
    reinsertions, digest propagation, repairs — must bump it so stale
    caches are detected.  The plain R*-tree carries but never reads it.
    """

    __slots__ = ("node_id", "level", "entries", "parent", "stamp")

    def __init__(self, level: int) -> None:
        self.node_id = next(_node_ids)
        self.level = level
        self.entries: list[Entry] = []
        self.parent: Node | None = None
        self.stamp = 0

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def rect(self) -> Rect:
        """Bounding rectangle of all entries (grouping space)."""
        return Rect.union_all(entry.rect for entry in self.entries)

    def mbr(self) -> Rect:
        """Spatial bounding rectangle of all entries."""
        return Rect.union_all(entry.mbr for entry in self.entries)

    def entry_for_child(self, child: Node) -> Entry:
        """Return this node's entry pointing at ``child``."""
        for entry in self.entries:
            if entry.child is child:
                return entry
        raise LookupError("node %d has no entry for child %d" % (self.node_id, child.node_id))

    def __repr__(self) -> str:
        return "Node(id=%d, level=%d, entries=%d)" % (
            self.node_id,
            self.level,
            len(self.entries),
        )


class RStarTree:
    """A standalone in-memory R*-tree over ``dims``-dimensional rectangles.

    Parameters
    ----------
    dims:
        Dimensionality of indexed rectangles.
    capacity:
        Maximum entries per node (derive from a node size in bytes with
        :func:`repro.storage.pager.node_capacity`).
    min_fill_ratio:
        Minimum node fill as a fraction of ``capacity`` (R*-tree uses 0.4).
    reinsert_ratio:
        Fraction of entries removed on forced reinsertion (R*-tree uses 0.3).
    stats:
        Optional :class:`repro.storage.stats.AccessStats`; search and kNN
        record node accesses into it.
    """

    def __init__(
        self,
        dims: int = 2,
        capacity: int = 50,
        min_fill_ratio: float = DEFAULT_MIN_FILL_RATIO,
        reinsert_ratio: float = DEFAULT_REINSERT_RATIO,
        stats: AccessStats | None = None,
    ) -> None:
        if capacity < 4:
            raise ValueError("capacity must be >= 4, got %d" % capacity)
        self.dims = dims
        self.capacity = capacity
        self.min_fill = max(1, int(math.ceil(capacity * min_fill_ratio)))
        self.reinsert_count = max(1, int(capacity * reinsert_ratio))
        self.stats = stats
        self.root = Node(level=0)
        self._size = 0

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        return self.root.level + 1

    def node_count(self) -> int:
        """Total number of nodes (walks the tree)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(cast(Node, entry.child) for entry in node.entries)
        return count

    def bounds(self) -> Rect | None:
        """Bounding rectangle of the whole tree, or ``None`` when empty."""
        if not self.root.entries:
            return None
        return self.root.rect()

    # -- insertion ----------------------------------------------------------

    def insert(self, rect: Rect, item: Any) -> None:
        """Insert ``item`` with bounding rectangle ``rect``."""
        if rect.dims != self.dims:
            raise ValueError(
                "rect has %d dims but tree indexes %d" % (rect.dims, self.dims)
            )
        self._insert_entry(Entry(rect, item=item), level=0, split_allowed_levels=set())
        self._size += 1

    def _insert_entry(
        self, entry: Entry, level: int, split_allowed_levels: set[int]
    ) -> None:
        """Insert ``entry`` at ``level``; handles overflow recursively.

        ``split_allowed_levels`` tracks the levels where forced
        reinsertion already happened during this top-level insertion, so
        each level reinserts at most once (the R*-tree rule).
        """
        node = self._choose_node(entry.rect, level)
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node
        self._adjust_path(node)
        if len(node.entries) > self.capacity:
            self._overflow(node, split_allowed_levels)

    def _choose_node(self, rect: Rect, level: int) -> Node:
        node = self.root
        while node.level > level:
            rects = [entry.rect for entry in node.entries]
            index = rstar_choose_subtree(
                rects, rect, children_are_leaves=(node.level == level + 1)
            )
            node = cast(Node, node.entries[index].child)
        return node

    def _adjust_path(self, node: Node) -> None:
        """Refresh bounding rectangles from ``node`` up to the root."""
        while node.parent is not None:
            parent = node.parent
            entry = parent.entry_for_child(node)
            entry.rect = node.rect()
            node = parent

    def _overflow(self, node: Node, split_allowed_levels: set[int]) -> None:
        if node is not self.root and node.level not in split_allowed_levels:
            split_allowed_levels.add(node.level)
            self._force_reinsert(node, split_allowed_levels)
        else:
            self._split(node, split_allowed_levels)

    def _force_reinsert(self, node: Node, split_allowed_levels: set[int]) -> None:
        rects = [entry.rect for entry in node.entries]
        victims = set(reinsert_indices(rects, self.reinsert_count))
        removed = [node.entries[i] for i in victims]
        node.entries = [e for i, e in enumerate(node.entries) if i not in victims]
        self._adjust_path(node)
        for entry in removed:
            self._insert_entry(entry, node.level, split_allowed_levels)

    def _split(self, node: Node, split_allowed_levels: set[int]) -> None:
        rects = [entry.rect for entry in node.entries]
        group_a, group_b = rstar_split_groups(rects, self.min_fill)
        entries = node.entries
        sibling = Node(level=node.level)
        node.entries = [entries[i] for i in group_a]
        sibling.entries = [entries[i] for i in group_b]
        for entry in sibling.entries:
            if entry.child is not None:
                entry.child.parent = sibling

        if node is self.root:
            new_root = Node(level=node.level + 1)
            new_root.entries.append(Entry(node.rect(), child=node))
            new_root.entries.append(Entry(sibling.rect(), child=sibling))
            node.parent = new_root
            sibling.parent = new_root
            self.root = new_root
            return

        parent = cast(Node, node.parent)
        parent.entry_for_child(node).rect = node.rect()
        sibling_entry = Entry(sibling.rect(), child=sibling)
        parent.entries.append(sibling_entry)
        sibling.parent = parent
        self._adjust_path(parent)
        if len(parent.entries) > self.capacity:
            self._overflow(parent, split_allowed_levels)

    # -- deletion -----------------------------------------------------------

    def delete(self, rect: Rect, item: Any) -> bool:
        """Remove the entry with exactly ``rect`` and ``item``.

        Returns ``True`` when an entry was removed.  Underflowing nodes are
        dissolved and their entries reinserted (the classic condense-tree
        step).
        """
        found = self._find_leaf(self.root, rect, item)
        if found is None:
            return False
        leaf, index = found
        del leaf.entries[index]
        self._condense(leaf)
        self._size -= 1
        if not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = cast(Node, self.root.entries[0].child)
            self.root.parent = None
        return True

    def _find_leaf(
        self, node: Node, rect: Rect, item: Any
    ) -> tuple[Node, int] | None:
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.item == item and entry.rect == rect:
                    return node, i
            return None
        for entry in node.entries:
            if entry.rect.contains_rect(rect) or entry.rect.intersects(rect):
                found = self._find_leaf(cast(Node, entry.child), rect, item)
                if found is not None:
                    return found
        return None

    def _condense(self, node: Node) -> None:
        orphans: list[tuple[int, list[Entry]]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_fill:
                parent.entries.remove(parent.entry_for_child(node))
                orphans.append((node.level, list(node.entries)))
            else:
                parent.entry_for_child(node).rect = node.rect()
            node = parent
        for level, entries in orphans:
            for entry in entries:
                self._insert_entry(entry, level, split_allowed_levels=set())

    # -- queries ------------------------------------------------------------

    def _record_access(self, node: Node) -> None:
        if self.stats is not None:
            self.stats.record_node(node.is_leaf)

    def search(self, rect: Rect) -> list[Any]:
        """Return the items whose rectangles intersect ``rect``."""
        results: list[Any] = []
        if not self.root.entries:
            return results
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._record_access(node)
            for entry in node.entries:
                if entry.rect.intersects(rect):
                    if node.is_leaf:
                        results.append(entry.item)
                    else:
                        stack.append(cast(Node, entry.child))
        return results

    def search_contained(self, rect: Rect) -> list[Any]:
        """Return the items whose rectangles lie entirely inside ``rect``."""
        results: list[Any] = []
        if not self.root.entries:
            return results
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._record_access(node)
            for entry in node.entries:
                if node.is_leaf:
                    if rect.contains_rect(entry.rect):
                        results.append(entry.item)
                elif entry.rect.intersects(rect):
                    stack.append(cast(Node, entry.child))
        return results

    def nearest(self, point: Sequence[float], k: int = 1) -> list[tuple[float, Any]]:
        """Return the ``k`` items nearest to ``point`` (best-first search).

        Results are ``(distance, item)`` pairs in non-decreasing distance
        order, computed with the MINDIST lower bound of Hjaltason & Samet.
        """
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        results: list[tuple[float, Any]] = []
        if not self.root.entries:
            return results
        counter = itertools.count()
        heap: list[tuple[float, int, Entry]] = []
        self._record_access(self.root)
        for entry in self.root.entries:
            heapq.heappush(
                heap, (entry.rect.min_dist(point), next(counter), entry)
            )
        while heap and len(results) < k:
            distance, _, entry = heapq.heappop(heap)
            if entry.is_leaf_entry:
                results.append((distance, entry.item))
                continue
            child = cast(Node, entry.child)
            self._record_access(child)
            for child_entry in child.entries:
                heapq.heappush(
                    heap,
                    (child_entry.rect.min_dist(point), next(counter), child_entry),
                )
        return results

    def items(self) -> Iterator[tuple[Rect, Any]]:
        """Yield every ``(rect, item)`` pair in the tree."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    yield entry.rect, entry.item
                else:
                    stack.append(cast(Node, entry.child))

    # -- validation ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` when a structural invariant is violated.

        Checks: parent pointers; bounding rectangles exactly cover child
        entries; node fill bounds (root excepted); uniform leaf depth; and
        that the recorded size matches the number of leaf entries.  The
        checks are explicit ``raise`` statements, not ``assert``, so they
        hold under ``python -O`` too.
        """
        leaf_levels: set[int] = set()
        count = 0
        stack: list[tuple[Node, Node | None]] = [(self.root, None)]
        while stack:
            node, parent = stack.pop()
            if node.parent is not parent:
                raise AssertionError(
                    "broken parent pointer at node %d" % node.node_id
                )
            if node is not self.root and len(node.entries) < self.min_fill:
                raise AssertionError(
                    "node %d underfull: %d < %d"
                    % (node.node_id, len(node.entries), self.min_fill)
                )
            if len(node.entries) > self.capacity:
                raise AssertionError(
                    "node %d overfull: %d > %d"
                    % (node.node_id, len(node.entries), self.capacity)
                )
            if node.is_leaf:
                leaf_levels.add(node.level)
                count += len(node.entries)
            else:
                for entry in node.entries:
                    if entry.child is None:
                        raise AssertionError("internal entry without child")
                    if entry.child.level != node.level - 1:
                        raise AssertionError(
                            "level mismatch at node %d" % node.node_id
                        )
                    if entry.rect != entry.child.rect():
                        raise AssertionError(
                            "stale bounding rect at node %d" % node.node_id
                        )
                    stack.append((entry.child, node))
        if self._size and leaf_levels != {0}:
            raise AssertionError("leaves at mixed levels: %r" % leaf_levels)
        if count != self._size:
            raise AssertionError(
                "size mismatch: %d != %d" % (count, self._size)
            )
