"""Sort-tile-recursive (STR) bulk loading.

Building the TAR-tree one insertion at a time costs a choose-subtree
descent plus occasional splits and reinsertions per POI.  When the whole
data set is known up front (the paper's snapshot setting), STR packing
(Leutenegger et al., ICDE 1997) builds the same kind of tree in one
sorting pass per dimension: sort by the first coordinate, cut into
vertical slabs, sort each slab by the next coordinate, and so on,
emitting balanced groups of at most ``capacity`` entries.

The partitioner works in the grouping space of the active strategy (2-D
for ``IND-spa``, 3-D for integral-3D), so a bulk-loaded tree clusters
entries by exactly the criteria the incremental algorithms optimise.
"""

from __future__ import annotations

import math
from typing import Sequence


def _balanced_group_sizes(
    total: int, capacity: int, min_fill: int, fill_ratio: float
) -> list[int]:
    """Sizes of consecutive groups: balanced, within [min_fill, capacity].

    Chooses the group count so every group holds roughly
    ``fill_ratio * capacity`` entries while never violating the R-tree
    fill bounds (a single trailing group may hold fewer than ``min_fill``
    only when ``total`` itself is that small).
    """
    if total <= capacity:
        return [total]
    target = max(min_fill, int(capacity * fill_ratio))
    groups = max(2, int(math.ceil(total / float(target))))
    # Keep every group at or above min_fill.
    while groups > 1 and total // groups < min_fill:
        groups -= 1
    # Never exceed the hard capacity (possible only for extreme
    # min_fill ratios); capacity beats the fill floor.
    if int(math.ceil(total / float(groups))) > capacity:
        groups = int(math.ceil(total / float(capacity)))
    base = total // groups
    remainder = total % groups
    return [base + 1 if i < remainder else base for i in range(groups)]


def str_partition(
    points: Sequence[Sequence[float]],
    capacity: int,
    min_fill: int = 1,
    fill_ratio: float = 0.9,
) -> list[list[int]]:
    """Partition ``points`` into STR tiles of at most ``capacity``.

    ``points`` is a sequence of coordinate tuples (any dimensionality).
    Returns a list of index groups (lists of indices into ``points``),
    each of size within ``[min_fill, capacity]`` (except when fewer than
    ``min_fill`` points exist overall).
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    indices = list(range(len(points)))
    if not indices:
        return []
    dims = len(points[0])
    return _str_recurse(points, indices, dims, 0, capacity, min_fill, fill_ratio)


def _str_recurse(
    points: Sequence[Sequence[float]],
    indices: list[int],
    dims: int,
    axis: int,
    capacity: int,
    min_fill: int,
    fill_ratio: float,
) -> list[list[int]]:
    indices = sorted(indices, key=lambda i: points[i][axis])
    total = len(indices)
    if axis == dims - 1 or total <= capacity:
        sizes = _balanced_group_sizes(total, capacity, min_fill, fill_ratio)
        groups: list[list[int]] = []
        offset = 0
        for size in sizes:
            groups.append(indices[offset : offset + size])
            offset += size
        return groups

    # Number of leaves this subtree will produce, spread over slabs so
    # that each slab recursively tiles the remaining dimensions.
    target = max(min_fill, int(capacity * fill_ratio))
    n_leaves = max(1, int(math.ceil(total / float(target))))
    remaining = dims - axis
    slabs = max(1, int(math.ceil(n_leaves ** (1.0 / remaining))))
    slab_size = int(math.ceil(total / float(slabs)))
    groups: list[list[int]] = []
    for start in range(0, total, slab_size):
        slab = indices[start : start + slab_size]
        groups.extend(
            _str_recurse(points, slab, dims, axis + 1, capacity, min_fill, fill_ratio)
        )
    return groups
