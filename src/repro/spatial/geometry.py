"""Geometry primitives: points and axis-aligned rectangles of any dimension.

Points are plain tuples of floats.  :class:`Rect` is the minimum bounding
rectangle (MBR) used throughout the R-tree layer; it deliberately stays a
small, allocation-light value object because R*-tree maintenance creates
and compares millions of them.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

#: A point: one float per dimension.
Point = tuple[float, ...]


class Rect:
    """An axis-aligned rectangle (hyper-rectangle for ``dims > 2``).

    ``lows`` and ``highs`` are tuples of per-dimension bounds with
    ``lows[i] <= highs[i]``.  Rectangles are immutable; all combining
    operations return new instances.
    """

    __slots__ = ("lows", "highs")

    def __init__(self, lows: Iterable[float], highs: Iterable[float]) -> None:
        lows = tuple(float(v) for v in lows)
        highs = tuple(float(v) for v in highs)
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have equal length")
        if not lows:
            raise ValueError("rectangle needs at least one dimension")
        for lo, hi in zip(lows, highs):
            # NaN fails every comparison, so test validity positively —
            # otherwise NaN bounds would slip through and silently break
            # every downstream invariant.
            if not lo <= hi:
                raise ValueError("invalid bounds: low %r > high %r" % (lo, hi))
        self.lows: Point = lows
        self.highs: Point = highs

    @classmethod
    def from_point(cls, point: Iterable[float]) -> Rect:
        """Return the degenerate rectangle covering a single point."""
        point = tuple(point)
        return cls(point, point)

    @classmethod
    def union_all(cls, rects: Iterable[Rect]) -> Rect:
        """Return the minimum bounding rectangle of an iterable of rects."""
        rects = iter(rects)
        try:
            first = next(rects)
        except StopIteration:
            raise ValueError("union_all needs at least one rectangle") from None
        lows = list(first.lows)
        highs = list(first.highs)
        for rect in rects:
            for i, (lo, hi) in enumerate(zip(rect.lows, rect.highs)):
                if lo < lows[i]:
                    lows[i] = lo
                if hi > highs[i]:
                    highs[i] = hi
        return cls(lows, highs)

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    @property
    def center(self) -> Point:
        """Center point as a tuple."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lows, self.highs))

    def extent(self, dim: int) -> float:
        """Side length along dimension ``dim``."""
        return self.highs[dim] - self.lows[dim]

    def area(self) -> float:
        """Product of side lengths (volume for ``dims > 2``)."""
        result = 1.0
        for lo, hi in zip(self.lows, self.highs):
            result *= hi - lo
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree's 'margin' objective)."""
        return sum(hi - lo for lo, hi in zip(self.lows, self.highs))

    def union(self, other: Rect) -> Rect:
        """Minimum bounding rectangle of ``self`` and ``other``."""
        lows = tuple(
            lo if lo < olo else olo for lo, olo in zip(self.lows, other.lows)
        )
        highs = tuple(
            hi if hi > ohi else ohi for hi, ohi in zip(self.highs, other.highs)
        )
        return Rect(lows, highs)

    def enlargement(self, other: Rect) -> float:
        """Area increase needed for ``self`` to also cover ``other``."""
        enlarged = 1.0
        original = 1.0
        for lo, hi, olo, ohi in zip(self.lows, self.highs, other.lows, other.highs):
            enlarged *= (hi if hi > ohi else ohi) - (lo if lo < olo else olo)
            original *= hi - lo
        return enlarged - original

    def intersects(self, other: Rect) -> bool:
        """True when the rectangles share at least a boundary point."""
        for lo, hi, olo, ohi in zip(self.lows, self.highs, other.lows, other.highs):
            if lo > ohi or olo > hi:
                return False
        return True

    def overlap_area(self, other: Rect) -> float:
        """Area of the intersection (0 when disjoint)."""
        result = 1.0
        for lo, hi, olo, ohi in zip(self.lows, self.highs, other.lows, other.highs):
            side = (hi if hi < ohi else ohi) - (lo if lo > olo else olo)
            if side <= 0.0:
                return 0.0
            result *= side
        return result

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        for lo, hi, value in zip(self.lows, self.highs, point):
            if value < lo or value > hi:
                return False
        return True

    def contains_rect(self, other: Rect) -> bool:
        """True when ``other`` lies entirely inside ``self``."""
        for lo, hi, olo, ohi in zip(self.lows, self.highs, other.lows, other.highs):
            if olo < lo or ohi > hi:
                return False
        return True

    def min_dist(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest point of the rect.

        This is the classic MINDIST lower bound used by best-first search
        (Hjaltason & Samet).  Returns 0 when the point is inside.
        """
        total = 0.0
        for lo, hi, value in zip(self.lows, self.highs, point):
            if value < lo:
                delta = lo - value
            elif value > hi:
                delta = value - hi
            else:
                continue
            total += delta * delta
        return math.sqrt(total)

    def center_distance_sq(self, point: Sequence[float]) -> float:
        """Squared Euclidean distance from the rect center to ``point``."""
        total = 0.0
        for lo, hi, value in zip(self.lows, self.highs, point):
            delta = (lo + hi) / 2.0 - value
            total += delta * delta
        return total

    def diagonal(self) -> float:
        """Length of the main diagonal (max pairwise distance inside)."""
        total = 0.0
        for lo, hi in zip(self.lows, self.highs):
            side = hi - lo
            total += side * side
        return math.sqrt(total)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rect)
            and self.lows == other.lows
            and self.highs == other.highs
        )

    def __hash__(self) -> int:
        return hash((self.lows, self.highs))

    def __repr__(self) -> str:
        return "Rect(%r, %r)" % (self.lows, self.highs)


def point_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points given as tuples."""
    total = 0.0
    for av, bv in zip(a, b):
        delta = av - bv
        total += delta * delta
    return math.sqrt(total)


def rect_min_dist(rect: Rect, point: Sequence[float]) -> float:
    """Module-level alias of :meth:`Rect.min_dist` for functional callers."""
    return rect.min_dist(point)


def manhattan_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """L1 distance between two equal-length sequences."""
    return sum(abs(av - bv) for av, bv in zip(a, b))
