"""Spatial substrate: geometry primitives and a from-scratch R*-tree.

The TAR-tree (:mod:`repro.core.tar_tree`) reuses the R*-tree machinery
here — choose-subtree, forced reinsertion and the margin-driven split —
for both its 2-D (``IND-spa``) and 3-D (integral-3D) grouping strategies.
:class:`repro.spatial.rstar.RStarTree` is also usable standalone as a
classic in-memory spatial index.
"""

from repro.spatial.geometry import Rect, point_distance, rect_min_dist
from repro.spatial.rstar import RStarTree

__all__ = ["Rect", "RStarTree", "point_distance", "rect_min_dist"]
