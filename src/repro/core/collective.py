"""Collective processing of kNNTA query batches (Section 7.2).

A batch of ``c`` queries runs ``c`` best-first searches with ``c``
priority queues, but node accesses are shared: at each step the node
demanded by the *most* queue fronts is fetched once and expanded into
every queue that wanted it.  Queries with the same time interval are
additionally grouped so the aggregate computation on each TIA in the
fetched node happens once per interval rather than once per query —
effective in practice because applications offer only a few interval
presets ("one day", "one week", ...).
"""

import heapq
import itertools
from collections import defaultdict

from repro.core.knnta import knnta_search
from repro.core.query import QueryResult


class _QueryState:
    """Per-query search state inside a collective batch."""

    __slots__ = ("query", "normalizer", "heap", "results", "_tie")

    def __init__(self, query, normalizer, tie):
        self.query = query
        self.normalizer = normalizer
        self.heap = []
        self.results = []
        self._tie = tie

    @property
    def done(self):
        return len(self.results) >= self.query.k or not self.heap

    def push(self, entry, raw_distance, raw_aggregate):
        distance, aggregate = self.normalizer.components(raw_distance, raw_aggregate)
        score = self.query.alpha0 * distance + self.query.alpha1 * (1.0 - aggregate)
        heapq.heappush(
            self.heap, (score, next(self._tie), entry, distance, aggregate)
        )

    def drain_leaves(self):
        """Eject result POIs while the queue front is a leaf entry."""
        while self.heap and len(self.results) < self.query.k:
            score, _, entry, distance, aggregate = self.heap[0]
            if not entry.is_leaf_entry:
                break
            heapq.heappop(self.heap)
            self.results.append(QueryResult(entry.item, score, distance, aggregate))

    def front_node(self):
        """The child node the queue front demands, or ``None``."""
        if not self.heap or len(self.results) >= self.query.k:
            return None
        entry = self.heap[0][2]
        return None if entry.is_leaf_entry else entry.child


class CollectiveProcessor:
    """Processes batches of kNNTA queries with shared index traversal.

    Re-entrant: one processor (or several over the same tree) may run
    batches from multiple threads concurrently — all per-batch state
    (queues, tie-breakers) is local to each :meth:`run` call.  Callers
    running batches concurrently should pass a private ``stats`` object
    per batch so node accesses are attributed exactly.
    """

    def __init__(self, tree):
        self.tree = tree

    def run(self, queries, stats=None):
        """Answer every query in ``queries``; returns per-query result lists.

        Node accesses count each physically fetched node once, however
        many queries consumed it — the batch's whole point.  They are
        recorded into ``tree.stats`` by default; passing ``stats`` (an
        :class:`~repro.storage.stats.AccessStats`) records the batch's
        node accesses there *instead*, giving concurrent batches exact
        per-batch attribution.  (TIA page accesses always go to the
        backend's shared stats.)
        """
        tree = self.tree
        if stats is None:
            record_node = tree.record_node_access
        else:
            record_node = lambda node: stats.record_node(node.is_leaf)  # noqa: E731
        tie = itertools.count()
        normalizers = {}
        states = []
        for query in queries:
            query.validate()
            key = (query.interval, query.semantics)
            if key not in normalizers:
                normalizers[key] = tree.normalizer(query.interval, query.semantics)
            states.append(_QueryState(query, normalizers[key], tie))
        if not tree.root.entries:
            return [state.results for state in states]

        record_node(tree.root)
        self._expand(tree.root, states)

        # Demand map: node -> states whose queue front points at it.  A
        # state's front only changes when its demanded node is fetched,
        # so registration stays valid between fetches and each fetch
        # costs O(consumers), not O(batch).
        demand = defaultdict(list)

        def register(state):
            state.drain_leaves()
            node = state.front_node()
            if node is not None:
                demand[node].append(state)

        for state in states:
            register(state)
        while demand:
            # Greedy: fetch the node wanted by the most queues first.
            node = max(demand, key=lambda n: len(demand[n]))
            consumers = demand.pop(node)
            for state in consumers:
                heapq.heappop(state.heap)
            record_node(node)
            self._expand(node, consumers)
            for state in consumers:
                register(state)
        return [state.results for state in states]

    def _expand(self, node, states):
        """Push ``node``'s entries into every state, sharing aggregates.

        States are grouped by (interval, semantics); each group computes
        the per-entry aggregate once.
        """
        tree = self.tree
        groups = defaultdict(list)
        for state in states:
            groups[(state.query.interval, state.query.semantics)].append(state)
        for (interval, semantics), members in groups.items():
            for entry in node.entries:
                raw_aggregate = tree.tia_aggregate(entry.tia, interval, semantics)
                for state in members:
                    raw_distance = entry.mbr.min_dist(state.query.point)
                    state.push(entry, raw_distance, raw_aggregate)


def process_individually(tree, queries):
    """Baseline: answer each query independently (Section 8.4's rival).

    The paper's *individual* configuration gives the TIAs no buffer; set
    that through the tree's construction (``tia_buffer_slots=0``) — this
    function just runs :func:`~repro.core.knnta.knnta_search` per query.
    """
    normalizers = {}
    results = []
    for query in queries:
        key = (query.interval, query.semantics)
        if key not in normalizers:
            normalizers[key] = tree.normalizer(query.interval, query.semantics)
        results.append(knnta_search(tree, query, normalizer=normalizers[key]))
    return results
