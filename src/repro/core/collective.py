"""Collective processing of kNNTA query batches (Section 7.2).

A batch of ``c`` queries runs ``c`` best-first searches with ``c``
priority queues, but node accesses are shared: at each step the node
demanded by the *most* queue fronts is fetched once and expanded into
every queue that wanted it.  Queries with the same time interval are
additionally grouped so the aggregate computation on each TIA in the
fetched node happens once per interval rather than once per query —
effective in practice because applications offer only a few interval
presets ("one day", "one week", ...).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_left
from collections import defaultdict
from math import sqrt
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.core.knnta import knnta_search
from repro.core.query import QueryResult, RankedAnswer
from repro.temporal.tia import AggregateKind

if TYPE_CHECKING:
    from repro.core.query import KNNTAQuery, Normalizer
    from repro.core.tar_tree import TARTree
    from repro.spatial.rstar import Entry, Node
    from repro.storage.stats import AccessStats
    from repro.temporal.epochs import TimeInterval
    from repro.temporal.tia import IntervalSemantics


class _QueryState:
    """Per-query search state inside a collective batch."""

    __slots__ = ("query", "normalizer", "heap", "results", "_tie")

    def __init__(
        self, query: KNNTAQuery, normalizer: Normalizer, tie: Iterator[int]
    ) -> None:
        self.query = query
        self.normalizer = normalizer
        self.heap: list[tuple[float, int, Entry, float, float]] = []
        self.results: list[QueryResult] = []
        self._tie = tie

    @property
    def done(self) -> bool:
        return len(self.results) >= self.query.k or not self.heap

    def push(self, entry: Entry, raw_distance: float, raw_aggregate: float) -> None:
        distance, aggregate = self.normalizer.components(raw_distance, raw_aggregate)
        score = self.query.alpha0 * distance + self.query.alpha1 * (1.0 - aggregate)
        heapq.heappush(
            self.heap, (score, next(self._tie), entry, distance, aggregate)
        )

    def drain_leaves(self) -> None:
        """Eject result POIs while the queue front is a leaf entry."""
        while self.heap and len(self.results) < self.query.k:
            score, _, entry, distance, aggregate = self.heap[0]
            if not entry.is_leaf_entry:
                break
            heapq.heappop(self.heap)
            self.results.append(QueryResult(entry.item, score, distance, aggregate))

    def front_node(self) -> Node | None:
        """The child node the queue front demands, or ``None``."""
        if not self.heap or len(self.results) >= self.query.k:
            return None
        entry = self.heap[0][2]
        return None if entry.is_leaf_entry else entry.child


class CollectiveProcessor:
    """Processes batches of kNNTA queries with shared index traversal.

    Re-entrant: one processor (or several over the same tree) may run
    batches from multiple threads concurrently — all per-batch state
    (queues, tie-breakers) is local to each :meth:`run` call.  Callers
    running batches concurrently should pass a private ``stats`` object
    per batch so node accesses are attributed exactly.
    """

    def __init__(self, tree: TARTree) -> None:
        self.tree = tree

    def run(
        self, queries: Sequence[KNNTAQuery], stats: AccessStats | None = None
    ) -> list[RankedAnswer]:
        """Answer every query in ``queries``; returns per-query answers.

        Node accesses count each physically fetched node once, however
        many queries consumed it — the batch's whole point.  They are
        recorded into ``tree.stats`` by default; passing ``stats`` (an
        :class:`~repro.storage.stats.AccessStats`) records the batch's
        node accesses there *instead*, giving concurrent batches exact
        per-batch attribution.  (TIA page accesses always go to the
        backend's shared stats.)
        """
        tree = self.tree
        record_node: Callable[[Node], None]
        if stats is None:
            record_node = tree.record_node_access
        else:
            batch_stats = stats
            record_node = lambda node: batch_stats.record_node(node.is_leaf)  # noqa: E731
        tie = itertools.count()
        normalizers: dict[tuple[TimeInterval, IntervalSemantics], Normalizer] = {}
        states: list[_QueryState] = []
        for query in queries:
            query.validate()
            key = (query.interval, query.semantics)
            if key not in normalizers:
                normalizers[key] = tree.normalizer(query.interval, query.semantics)
            states.append(_QueryState(query, normalizers[key], tie))
        if not tree.root.entries:
            return [RankedAnswer(state.results) for state in states]

        record_node(tree.root)
        self._expand(tree.root, states)

        # Demand map: node -> states whose queue front points at it.  A
        # state's front only changes when its demanded node is fetched,
        # so registration stays valid between fetches and each fetch
        # costs O(consumers), not O(batch).
        demand: defaultdict[Node, list[_QueryState]] = defaultdict(list)

        def register(state: _QueryState) -> None:
            state.drain_leaves()
            node = state.front_node()
            if node is not None:
                demand[node].append(state)

        for state in states:
            register(state)
        while demand:
            # Greedy: fetch the node wanted by the most queues first.
            node = max(demand, key=lambda n: len(demand[n]))
            consumers = demand.pop(node)
            for state in consumers:
                heapq.heappop(state.heap)
            record_node(node)
            self._expand(node, consumers)
            for state in consumers:
                register(state)
        return [RankedAnswer(state.results) for state in states]

    def _expand(self, node: Node, states: Sequence[_QueryState]) -> None:
        """Push ``node``'s entries into every state, sharing aggregates.

        States are grouped by (interval, semantics); each group computes
        the per-entry aggregate once.  When the tree carries an enabled
        :class:`~repro.core.frames.FrameStore` the aggregates and
        MINDISTs are read from the node's packed frame (no TIA page
        I/O, no ``Rect`` chasing); results are bit-identical because
        the raw values feed the same :meth:`_QueryState.push`.
        """
        tree = self.tree
        groups: defaultdict[
            tuple[TimeInterval, IntervalSemantics], list[_QueryState]
        ] = defaultdict(list)
        for state in states:
            groups[(state.query.interval, state.query.semantics)].append(state)

        frames = getattr(tree, "frames", None)
        frame = frames.frame(node) if frames is not None and frames.enabled else None
        if frame is not None:
            coords = frame.coords
            epochs = frame.epochs
            values = frame.values
            offsets = frame.offsets
            is_max = tree.aggregate_kind is AggregateKind.MAX
            clock = tree.clock
            for (interval, semantics), members in groups.items():
                span = clock.epoch_range(interval, semantics)
                e_start, e_stop = span.start, span.stop
                for i, entry in enumerate(node.entries):
                    stop = offsets[i + 1]
                    first = bisect_left(epochs, e_start, offsets[i], stop)
                    last = bisect_left(epochs, e_stop, first, stop)
                    if is_max:
                        raw_aggregate = (
                            max(values[first:last]) if last > first else 0
                        )
                    else:
                        raw_aggregate = sum(values[first:last])
                    base = 4 * i
                    lo_x = coords[base]
                    hi_x = coords[base + 1]
                    lo_y = coords[base + 2]
                    hi_y = coords[base + 3]
                    for state in members:
                        qx, qy = state.query.point
                        if qx < lo_x:
                            dx = lo_x - qx
                        else:
                            dx = qx - hi_x if qx > hi_x else 0.0
                        if qy < lo_y:
                            dy = lo_y - qy
                        else:
                            dy = qy - hi_y if qy > hi_y else 0.0
                        state.push(entry, sqrt(dx * dx + dy * dy), raw_aggregate)
            return

        for (interval, semantics), members in groups.items():
            for entry in node.entries:
                raw_aggregate = tree.tia_aggregate(entry.tia, interval, semantics)
                for state in members:
                    raw_distance = entry.mbr.min_dist(state.query.point)
                    state.push(entry, raw_distance, raw_aggregate)


def process_individually(
    tree: TARTree, queries: Sequence[KNNTAQuery]
) -> list[RankedAnswer]:
    """Baseline: answer each query independently (Section 8.4's rival).

    The paper's *individual* configuration gives the TIAs no buffer; set
    that through the tree's construction (``tia_buffer_slots=0``) — this
    function just runs :func:`~repro.core.knnta.knnta_search` per query.
    """
    normalizers: dict[tuple[TimeInterval, IntervalSemantics], Normalizer] = {}
    results: list[RankedAnswer] = []
    for query in queries:
        key = (query.interval, query.semantics)
        if key not in normalizers:
            normalizers[key] = tree.normalizer(query.interval, query.semantics)
        results.append(knnta_search(tree, query, normalizer=normalizers[key]))
    return results
