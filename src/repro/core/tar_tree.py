"""The TAR-tree (temporal aggregate R-tree), Section 4.

A TAR-tree is an R-tree variant in which *every entry* — leaf and
internal — points to a TIA (temporal index on the aggregate).  A leaf
entry's TIA stores the per-epoch check-in counts of its POI; an internal
entry's TIA stores, for each epoch, the maximum over the TIAs in its
child node.  That max-invariant is what makes the BFS ranking function
consistent (Property 1) and hence the search correct.

The spatial and aggregate components are deliberately separate (the paper
notes aggregate updates are far more frequent than spatial ones):
check-ins are digested per epoch through :meth:`TARTree.digest_epoch`,
which touches only the affected leaf-to-root paths, while POI insertion
follows the configured entry grouping strategy
(:mod:`repro.core.grouping`).
"""

from __future__ import annotations

import math
import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    KeysView,
    Mapping,
    Protocol,
    Sequence,
    cast,
)

from repro.core.frames import FrameStore
from repro.core.grouping import resolve_strategy
from repro.core.query import KNNTAQuery, Normalizer
from repro.spatial.geometry import Rect
from repro.spatial.rstar import Entry, Node
from repro.storage.pager import node_capacity
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import (
    DEFAULT_TIA_BUFFER_SLOTS,
    DEFAULT_TIA_PAGE_SIZE,
    AggregateKind,
    IntervalSemantics,
    make_tia_factory,
)

if TYPE_CHECKING:
    from repro.core.grouping import GroupingStrategy
    from repro.core.query import QueryResult, RankedAnswer
    from repro.datasets.generator import Dataset
    from repro.reliability.recovery import RobustAnswer
    from repro.temporal.epochs import TimeInterval, VariedEpochClock
    from repro.temporal.tia import BaseTIA

    Clock = EpochClock | VariedEpochClock
    MutationObserver = Callable[[str, tuple[Any, ...]], None]

DEFAULT_NODE_SIZE = 1024
DEFAULT_EPOCH_LENGTH_DAYS = 7.0


class UnloggedMutationError(RuntimeError):
    """A WAL-wrapped tree was mutated in a way the log cannot express.

    Raised by structural rebuilds (:meth:`TARTree.bulk_load`,
    :meth:`TARTree.refresh_aggregate_dimension`) while a mutation
    listener is attached: their effects cannot be replayed from WAL
    records, so allowing them would silently diverge the durable state
    from the in-memory tree.  Detach the listener first (close the
    :class:`~repro.reliability.recovery.CheckpointedIngest`), rebuild,
    then re-wrap and take a fresh checkpoint.
    """


class MutationListener(Protocol):
    """The write-ahead mutation listener interface.

    See :meth:`TARTree.attach_mutation_listener` for the calling
    contract; :class:`~repro.reliability.recovery.CheckpointedIngest`
    is the canonical implementation.
    """

    def will_insert_poi(
        self,
        tree: TARTree,
        poi: POI,
        epoch_aggregates: Mapping[int, int] | None,
    ) -> None: ...

    def will_delete_poi(self, tree: TARTree, poi_id: Any) -> None: ...

    def will_digest_epoch(
        self, tree: TARTree, epoch_index: int, counts: Mapping[Any, int]
    ) -> None: ...


class POI:
    """A point of interest: an identifier plus a 2-D location."""

    __slots__ = ("poi_id", "x", "y")

    def __init__(self, poi_id: Any, x: float, y: float) -> None:
        self.poi_id = poi_id
        self.x = float(x)
        self.y = float(y)
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(
                "POI %r needs finite coordinates, got (%r, %r)" % (poi_id, x, y)
            )

    @property
    def point(self) -> tuple[float, float]:
        return (self.x, self.y)

    def __repr__(self) -> str:
        return "POI(%r, %g, %g)" % (self.poi_id, self.x, self.y)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, POI)
            and self.poi_id == other.poi_id
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.poi_id, self.x, self.y))


class TARTree:
    """The temporal aggregate R-tree.

    Parameters
    ----------
    world:
        2-D :class:`~repro.spatial.geometry.Rect` bounding every POI; its
        diagonal is the spatial normalisation constant.
    clock:
        Epoch clock (:class:`~repro.temporal.epochs.EpochClock` or
        :class:`~repro.temporal.epochs.VariedEpochClock`).
    current_time:
        The application's current time ``tc``; the denominator of the
        integral-3D ``lambda-hat`` statistic.
    strategy:
        Entry grouping strategy — ``"integral3d"`` (the paper's TAR-tree),
        ``"spatial"`` (``IND-spa``) or ``"aggregate"`` (``IND-agg``), or a
        :class:`~repro.core.grouping.GroupingStrategy` instance.
    node_size:
        R-tree node size in bytes; the entry capacity follows from the
        strategy's grouping dimensionality (1024 bytes gives 50 for 2-D
        and 36 for 3-D entries, as in the paper).
    tia_backend / tia_page_size / tia_buffer_slots:
        TIA configuration (see :mod:`repro.temporal.tia`).
    stats:
        Shared :class:`~repro.storage.stats.AccessStats`; one is created
        when omitted.
    """

    def __init__(
        self,
        world: Rect,
        clock: Clock,
        current_time: float,
        strategy: str | GroupingStrategy = "integral3d",
        node_size: int = DEFAULT_NODE_SIZE,
        tia_backend: str = "paged",
        tia_page_size: int = DEFAULT_TIA_PAGE_SIZE,
        tia_buffer_slots: int = DEFAULT_TIA_BUFFER_SLOTS,
        stats: AccessStats | None = None,
        min_fill_ratio: float = 0.4,
        reinsert_ratio: float = 0.3,
        aggregate_kind: AggregateKind | str = AggregateKind.COUNT,
    ) -> None:
        if world.dims != 2:
            raise ValueError("the world rectangle must be 2-D")
        self.world = world
        self.clock = clock
        self.current_time = float(current_time)
        if isinstance(aggregate_kind, str):
            aggregate_kind = AggregateKind(aggregate_kind.lower())
        self.aggregate_kind = aggregate_kind
        self.strategy = resolve_strategy(strategy)
        self.node_size = node_size
        self.capacity = node_capacity(node_size, self.strategy.dims)
        self.min_fill = max(1, int(math.ceil(self.capacity * min_fill_ratio)))
        self.reinsert_count = max(1, int(self.capacity * reinsert_ratio))
        self.stats = stats if stats is not None else AccessStats()
        self._tia_factory = make_tia_factory(
            tia_backend,
            stats=self.stats,
            page_size=tia_page_size,
            buffer_slots=tia_buffer_slots,
        )
        self.tia_backend = tia_backend
        self.root = Node(level=0)
        self._pois: dict[Any, POI] = {}
        self._poi_tias: dict[Any, BaseTIA] = {}
        self._leaf_of: dict[Any, Node] = {}
        self._global_epoch_max: dict[int, int] = {}
        self._global_max_dirty = False
        self._max_mean_rate = 0.0
        self._size = 0
        self._mutation_listener: MutationListener | None = None
        self._mutation_observers: list[MutationObserver] = []
        #: Packed per-node frame cache: the query hot path scores
        #: entries from its flat arrays instead of chasing Entry/Rect/
        #: TIA objects (see :mod:`repro.core.frames`).  Kept coherent
        #: through the post-mutation observers plus per-node stamps.
        self.frames = FrameStore(self)
        self.add_mutation_observer(self.frames.note_mutation)
        #: LSN of the last write-ahead-logged mutation applied to this
        #: tree (``None`` when the tree has never been WAL-wrapped).
        #: Persisted by :func:`repro.storage.serialize.save_tree` so a
        #: snapshot doubles as a replay high-water mark.
        self.applied_lsn: int | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        clock: Clock | None = None,
        epoch_length: float = DEFAULT_EPOCH_LENGTH_DAYS,
        strategy: str | GroupingStrategy = "integral3d",
        until_time: float | None = None,
        bulk: bool = False,
        **kwargs: Any,
    ) -> TARTree:
        """Build a TAR-tree over a data set's effective POIs.

        The per-POI check-in histories up to ``until_time`` (default: the
        data set's current time) are digested into the TIAs before the
        POIs are placed, so the integral-3D strategy sees the true
        ``lambda-hat`` of every POI — matching the paper's setting of
        indexing an existing LBSN snapshot.

        With ``bulk=True`` the tree is STR-packed in the strategy's
        grouping space (one sort pass per dimension) instead of inserted
        one POI at a time — much faster for large snapshots, supported
        for the rectangle-keyed strategies (integral-3D and ``IND-spa``).
        """
        if clock is None:
            clock = EpochClock(dataset.t0, epoch_length)
        current_time = dataset.tc if until_time is None else until_time
        tree = cls(
            world=dataset.world,
            clock=clock,
            current_time=current_time,
            strategy=strategy,
            **kwargs,
        )
        poi_ids = dataset.effective_poi_ids()
        counts = dataset.epoch_counts(clock, poi_ids)
        num_epochs = tree.num_epochs
        if num_epochs > 0:
            tree._max_mean_rate = max(
                (sum(c.values()) / num_epochs for c in counts.values()),
                default=0.0,
            )
        poi_histories = [
            (POI(poi_id, *dataset.positions[poi_id]), counts[poi_id])
            for poi_id in poi_ids
        ]
        if bulk:
            tree.bulk_load(poi_histories)
        else:
            for poi, history in poi_histories:
                tree.insert_poi(poi, history)
        return tree

    def bulk_load(
        self, poi_histories: Sequence[tuple[POI, Mapping[int, int]]]
    ) -> None:
        """STR-pack ``[(POI, {epoch: agg}), ...]`` into an empty tree.

        Packs in the grouping strategy's rectangle space (see
        :mod:`repro.spatial.bulk`), so the bulk-loaded tree clusters
        entries by the same criteria the incremental algorithms optimise.
        Only rectangle-keyed strategies support bulk loading; ``IND-agg``
        groups by distribution distance and must be built incrementally.
        """
        from repro.core.grouping import AggregateGrouping
        from repro.spatial.bulk import str_partition

        if self._mutation_listener is not None:
            raise UnloggedMutationError(
                "bulk_load cannot be write-ahead logged; detach the "
                "mutation listener (close the CheckpointedIngest), "
                "rebuild, then re-wrap with a fresh checkpoint"
            )
        if isinstance(self.strategy, AggregateGrouping):
            raise ValueError(
                "IND-agg groups by distribution distance; bulk loading is "
                "only supported for rectangle-keyed strategies"
            )
        if self._size:
            raise ValueError("bulk_load requires an empty tree")
        if not poi_histories:
            return
        num_epochs = self.num_epochs
        if num_epochs > 0:
            rate = max(
                sum(history.values()) / num_epochs for _, history in poi_histories
            )
            if rate > self._max_mean_rate:
                self._max_mean_rate = rate

        entries: list[Entry] = []
        maxima = self.global_epoch_max()
        for poi, history in poi_histories:
            if poi.poi_id in self._pois:
                raise ValueError("POI %r is already indexed" % (poi.poi_id,))
            if not self.world.contains_point(poi.point):
                raise ValueError(
                    "POI %r lies outside the world %r" % (poi, self.world)
                )
            tia = self._tia_factory()
            if history:
                tia.replace_all(history)
            self._pois[poi.poi_id] = poi
            self._poi_tias[poi.poi_id] = tia
            for epoch, value in history.items():
                if value > maxima.get(epoch, 0):
                    maxima[epoch] = value
            entries.append(
                Entry(
                    self.strategy.leaf_rect(poi, self),
                    item=poi.poi_id,
                    mbr=Rect.from_point(poi.point),
                    tia=tia,
                )
            )

        level = 0
        while len(entries) > self.capacity:
            groups = str_partition(
                [entry.rect.center for entry in entries],
                self.capacity,
                min_fill=self.min_fill,
            )
            parents: list[Entry] = []
            for group in groups:
                node = Node(level=level)
                node.entries = [entries[i] for i in group]
                for entry in node.entries:
                    if entry.child is not None:
                        entry.child.parent = node
                    else:
                        self._leaf_of[entry.item] = node
                parents.append(self._make_parent_entry(node))
            entries = parents
            level += 1
        root = Node(level=level)
        root.entries = entries
        for entry in root.entries:
            if entry.child is not None:
                entry.child.parent = root
            else:
                self._leaf_of[entry.item] = root
        self.root = root
        self._size = len(poi_histories)
        # Fresh node ids make any cached frames unreachable; drop them
        # rather than letting them linger as garbage.
        self.frames.clear()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, poi_id: object) -> bool:
        return poi_id in self._pois

    @property
    def height(self) -> int:
        return self.root.level + 1

    @property
    def num_epochs(self) -> int:
        """Epochs elapsed by ``current_time`` (the ``m`` of Section 3)."""
        return self.clock.num_epochs(self.current_time)

    def poi(self, poi_id: Any) -> POI:
        """Return the registered :class:`POI` for ``poi_id``."""
        return self._pois[poi_id]

    def poi_ids(self) -> KeysView[Any]:
        return self._pois.keys()

    def poi_tia(self, poi_id: Any) -> BaseTIA:
        """The leaf TIA of ``poi_id`` (its own per-epoch counts)."""
        return self._poi_tias[poi_id]

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(cast(Node, entry.child) for entry in node.entries)
        return count

    # ------------------------------------------------------------------
    # Normalisation helpers (used by grouping and by queries)
    # ------------------------------------------------------------------

    def normalized_position(self, poi: POI) -> tuple[float, float]:
        """Spatial coordinates scaled into the unit square."""
        wx = self.world.extent(0) or 1.0
        wy = self.world.extent(1) or 1.0
        return (
            (poi.x - self.world.lows[0]) / wx,
            (poi.y - self.world.lows[1]) / wy,
        )

    def max_mean_rate(self) -> float:
        """Largest ``lambda-hat`` seen so far (integral-3D normaliser)."""
        return self._max_mean_rate

    def aggregate_coordinate(self, poi_id: Any) -> float:
        """The integral-3D third coordinate ``z = 1 - lambda_hat / max``."""
        if self._max_mean_rate <= 0.0:
            return 1.0
        rate = self._poi_tias[poi_id].mean_rate(self.num_epochs)
        return 1.0 - rate / self._max_mean_rate

    def global_epoch_max(self) -> dict[int, int]:
        """Per-epoch maxima over all POIs: ``{epoch_index: max agg}``.

        This is exactly the information the root-level TIAs bound; the
        tree maintains it directly so queries can normalise ``g``.
        """
        if self._global_max_dirty:
            fresh: dict[int, int] = {}
            for tia in self._poi_tias.values():
                for epoch, value in tia.items():
                    if value > fresh.get(epoch, 0):
                        fresh[epoch] = value
            self._global_epoch_max = fresh
            self._global_max_dirty = False
        return self._global_epoch_max

    def tia_aggregate(
        self,
        tia: BaseTIA,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
    ) -> int:
        """Evaluate the tree's aggregate kind on a TIA over ``interval``."""
        return tia.aggregate(self.clock, interval, semantics, self.aggregate_kind)

    def max_aggregate_bound(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
    ) -> int:
        """Upper bound on any POI's aggregate over ``interval``.

        Combines the global per-epoch maxima over the matching epochs —
        a sum for count/sum aggregates, a max for the max aggregate; used
        as the default ``g`` normaliser (see DESIGN.md §5).
        """
        maxima = self.global_epoch_max()
        epoch_range = self.clock.epoch_range(interval, semantics)
        values = (maxima.get(epoch, 0) for epoch in epoch_range)
        if self.aggregate_kind is AggregateKind.MAX:
            return max(values, default=0)
        return sum(values)

    def normalizer(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        exact: bool = False,
    ) -> Normalizer:
        """Build the per-query :class:`~repro.core.query.Normalizer`.

        With ``exact=True`` the aggregate normaliser is the true maximum
        POI aggregate over ``interval`` (one scan over the leaf TIAs);
        otherwise it is the root-level upper bound.
        """
        d_max = self.world.diagonal()
        if exact:
            g_max = max(
                (
                    self.tia_aggregate(tia, interval, semantics)
                    for tia in self._poi_tias.values()
                ),
                default=0,
            )
        else:
            g_max = self.max_aggregate_bound(interval, semantics)
        return Normalizer.create(d_max, g_max)

    # ------------------------------------------------------------------
    # POI insertion / deletion
    # ------------------------------------------------------------------

    def insert_poi(
        self, poi: POI, epoch_aggregates: Mapping[int, int] | None = None
    ) -> None:
        """Insert ``poi``, optionally with an existing check-in history.

        ``epoch_aggregates`` is ``{epoch_index: count}``; the counts are
        loaded into the POI's TIA before placement so every grouping
        strategy sees the aggregate information.

        When a mutation listener is attached (the tree is wrapped by a
        :class:`~repro.reliability.recovery.CheckpointedIngest`) the
        insertion is write-ahead logged before any state changes.
        """
        if poi.poi_id in self._pois:
            raise ValueError("POI %r is already indexed" % (poi.poi_id,))
        if not self.world.contains_point(poi.point):
            raise ValueError("POI %r lies outside the world %r" % (poi, self.world))
        if self._mutation_listener is not None:
            self._mutation_listener.will_insert_poi(self, poi, epoch_aggregates)
        tia = self._tia_factory()
        if epoch_aggregates:
            tia.replace_all(epoch_aggregates)
        self._pois[poi.poi_id] = poi
        self._poi_tias[poi.poi_id] = tia
        rate = tia.mean_rate(self.num_epochs)
        if rate > self._max_mean_rate:
            self._max_mean_rate = rate
        entry = Entry(
            self.strategy.leaf_rect(poi, self),
            item=poi.poi_id,
            mbr=Rect.from_point(poi.point),
            tia=tia,
        )
        self._insert_entry(entry, level=0, reinserted_levels=set())
        if epoch_aggregates:
            maxima = self.global_epoch_max()
            for epoch, value in epoch_aggregates.items():
                if value > maxima.get(epoch, 0):
                    maxima[epoch] = value
        self._size += 1
        self._notify_mutation("insert", poi_ids=(poi.poi_id,))

    def delete_poi(self, poi_id: Any) -> bool:
        """Remove ``poi_id``; returns ``True`` when it was indexed.

        Write-ahead logged when a mutation listener is attached; a
        miss (unknown id) is not a mutation and is never logged.
        """
        if poi_id not in self._pois:
            return False
        if self._mutation_listener is not None:
            self._mutation_listener.will_delete_poi(self, poi_id)
        leaf = self._leaf_of[poi_id]
        for i, entry in enumerate(leaf.entries):
            if entry.item == poi_id:
                del leaf.entries[i]
                leaf.stamp += 1
                break
        else:
            raise AssertionError("registry points at a leaf missing POI %r" % (poi_id,))
        del self._pois[poi_id]
        del self._poi_tias[poi_id]
        del self._leaf_of[poi_id]
        self._condense(leaf)
        if not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = cast(Node, self.root.entries[0].child)
            self.root.parent = None
        self._global_max_dirty = True
        self._size -= 1
        self._notify_mutation("delete", poi_ids=(poi_id,))
        return True

    # ------------------------------------------------------------------
    # Check-in digestion (Section 4.2, "Inserting Check-ins")
    # ------------------------------------------------------------------

    def digest_epoch(self, epoch_index: int, counts: Mapping[Any, int]) -> None:
        """Digest one finished epoch's check-in counts.

        ``counts`` maps POI ids to the epoch's contribution: the number
        of check-ins for count/sum aggregates, or the epoch's peak value
        for the max aggregate.  Each non-zero value is stored in the
        POI's TIA and the per-epoch maxima along the leaf-to-root path
        are raised — the batch update procedure of Section 4.2.  With a
        mutation listener attached the batch is write-ahead logged
        (with the absolute per-POI value it must reach) before any TIA
        changes.
        """
        if self._mutation_listener is not None:
            self._mutation_listener.will_digest_epoch(self, epoch_index, counts)
        maxima = self.global_epoch_max()
        is_max_kind = self.aggregate_kind is AggregateKind.MAX
        for poi_id, delta in counts.items():
            if delta <= 0:
                continue
            if poi_id not in self._pois:
                raise KeyError("cannot digest check-ins for unknown POI %r" % (poi_id,))
            tia = self._poi_tias[poi_id]
            if is_max_kind:
                tia.raise_to(epoch_index, delta)
            else:
                tia.add(epoch_index, delta)
            value = tia.get(epoch_index)
            if value > maxima.get(epoch_index, 0):
                maxima[epoch_index] = value
            node = self._leaf_of[poi_id]
            node.stamp += 1
            while node.parent is not None:
                parent = node.parent
                if not parent.entry_for_child(node).tia.raise_to(epoch_index, value):
                    break
                parent.stamp += 1
                node = parent
        ts, te = self.clock.bounds(epoch_index)
        if math.isfinite(te) and te > self.current_time:
            self.current_time = te
        self._notify_mutation(
            "digest", poi_ids=tuple(poi_id for poi_id in counts if poi_id in self._pois)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self, query: KNNTAQuery, normalizer: Normalizer | None = None
    ) -> RankedAnswer:
        """Answer a :class:`~repro.core.query.KNNTAQuery` — *the* query
        entry point.

        Delegates to :func:`repro.core.knnta.knnta_search` and returns
        the ranked :class:`~repro.core.query.RankedAnswer` (a list of
        :class:`~repro.core.query.QueryResult` rows satisfying the
        :class:`~repro.core.query.Answer` protocol).  :meth:`robust_query`
        is the fault-tolerant companion; the :meth:`knnta` /
        :meth:`robust_knnta` facades are deprecated shims over these
        two, and every entry point accepts the same query value, so one
        ``KNNTAQuery`` serves them all.
        """
        from repro.core.knnta import knnta_search

        return knnta_search(self, query, normalizer=normalizer)

    def robust_query(self, query: KNNTAQuery, **options: Any) -> RobustAnswer:
        """Fault-tolerant form of :meth:`query`.

        Takes the same :class:`~repro.core.query.KNNTAQuery`; retries
        transient storage faults with bounded backoff and falls back to
        the sequential-scan baseline on persistent failure or detected
        corruption (see
        :func:`repro.reliability.recovery.robust_knnta` for the
        options).  Returns a
        :class:`~repro.reliability.recovery.RobustAnswer`, whose rows
        destructure exactly like :meth:`query`'s list.
        """
        from repro.reliability.recovery import robust_knnta

        return robust_knnta(self, query, **options)

    def _coerce_query(
        self,
        name: str,
        q: KNNTAQuery | Sequence[float],
        interval: TimeInterval | None,
        k: int,
        alpha0: float,
        semantics: IntervalSemantics,
    ) -> KNNTAQuery:
        """Shim support: warn, then accept either calling shape.

        The facades warn *unconditionally* — calling :meth:`knnta` with
        a ready ``KNNTAQuery`` is just :meth:`query` under an obsolete
        name and should say so, not pass silently.
        """
        warnings.warn(
            "TARTree.%s() is deprecated; call TARTree.query() / "
            "TARTree.robust_query() with a KNNTAQuery" % name,
            DeprecationWarning,
            # Frames above the warn call: [1] _coerce_query, [2] the
            # knnta/robust_knnta shim, [3] the caller — the warning must
            # name the caller's file, not this one (asserted in tests).
            stacklevel=3,
        )
        if isinstance(q, KNNTAQuery):
            return q
        if interval is None:
            raise TypeError(
                "%s() needs an interval when not given a KNNTAQuery" % name
            )
        return KNNTAQuery(
            cast("tuple[float, float]", tuple(q)), interval, k, alpha0, semantics
        )

    def knnta(
        self,
        q: KNNTAQuery | Sequence[float],
        interval: TimeInterval | None = None,
        k: int = 10,
        alpha0: float = 0.3,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        normalizer: Normalizer | None = None,
    ) -> RankedAnswer:
        """Deprecated shim over :meth:`query`; always warns.

        Accepts either a ready :class:`~repro.core.query.KNNTAQuery` or
        the legacy ``(q, interval, k, alpha0)`` kwargs shape; both emit
        a :class:`DeprecationWarning`.  Answers are identical to
        :meth:`query`.
        """
        return self.query(
            self._coerce_query("knnta", q, interval, k, alpha0, semantics),
            normalizer=normalizer,
        )

    def robust_knnta(
        self,
        q: KNNTAQuery | Sequence[float],
        interval: TimeInterval | None = None,
        k: int = 10,
        alpha0: float = 0.3,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        **options: Any,
    ) -> RobustAnswer:
        """Deprecated shim over :meth:`robust_query`; always warns.

        Accepts either a ready :class:`~repro.core.query.KNNTAQuery` or
        the legacy kwargs shape (both emit a
        :class:`DeprecationWarning`); returns the same
        :class:`~repro.reliability.recovery.RobustAnswer`.
        """
        return self.robust_query(
            self._coerce_query("robust_knnta", q, interval, k, alpha0, semantics),
            **options,
        )

    def entry_score(
        self, entry: Entry, query: KNNTAQuery, normalizer: Normalizer
    ) -> float:
        """Ranking score lower bound of an entry (Section 4.3).

        Weighted sum of MINDIST from the query point to the entry's MBR
        and the aggregate its TIA reports over the query interval.  For a
        leaf entry both components are exact, so the BFS pops POIs in
        true score order.
        """
        distance = entry.mbr.min_dist(query.point)
        aggregate = self.tia_aggregate(entry.tia, query.interval, query.semantics)
        return normalizer.score(query.alpha0, distance, aggregate)

    def record_node_access(self, node: Node) -> None:
        """Count one node access in the shared stats."""
        self.stats.record_node(node.is_leaf)

    # ------------------------------------------------------------------
    # Maintenance internals
    # ------------------------------------------------------------------

    def _insert_entry(
        self, entry: Entry, level: int, reinserted_levels: set[int]
    ) -> None:
        node = self.root
        while node.level > level:
            index = self.strategy.choose_child(node, entry, self)
            node = cast(Node, node.entries[index].child)
        node.entries.append(entry)
        node.stamp += 1
        if entry.child is not None:
            entry.child.parent = node
        elif node.is_leaf:
            self._leaf_of[entry.item] = node
        self._propagate_addition(node, entry)
        if len(node.entries) > self.capacity:
            self._overflow(node, reinserted_levels)

    def _propagate_addition(self, node: Node, added_entry: Entry) -> None:
        """Grow ancestor rects/MBRs/TIAs to cover a newly added entry."""
        added_items = list(added_entry.tia.items())
        while node.parent is not None:
            parent = node.parent
            parent_entry = parent.entry_for_child(node)
            parent_entry.rect = parent_entry.rect.union(added_entry.rect)
            parent_entry.mbr = parent_entry.mbr.union(added_entry.mbr)
            for epoch, value in added_items:
                parent_entry.tia.raise_to(epoch, value)
            parent.stamp += 1
            node = parent

    def _overflow(self, node: Node, reinserted_levels: set[int]) -> None:
        can_reinsert = (
            self.strategy.uses_reinsert
            and node is not self.root
            and node.level not in reinserted_levels
        )
        if can_reinsert:
            reinserted_levels.add(node.level)
            self._force_reinsert(node, reinserted_levels)
        else:
            self._split(node, reinserted_levels)

    def _force_reinsert(self, node: Node, reinserted_levels: set[int]) -> None:
        victims = set(self.strategy.reinsert_victims(node, self))
        removed = [node.entries[i] for i in victims]
        node.entries = [
            entry for i, entry in enumerate(node.entries) if i not in victims
        ]
        node.stamp += 1
        self._recompute_upward(node)
        for entry in removed:
            self._insert_entry(entry, node.level, reinserted_levels)

    def _split(self, node: Node, reinserted_levels: set[int]) -> None:
        group_a, group_b = self.strategy.split_groups(node, self)
        entries = node.entries
        sibling = Node(level=node.level)
        node.entries = [entries[i] for i in group_a]
        node.stamp += 1
        sibling.entries = [entries[i] for i in group_b]
        for entry in sibling.entries:
            if entry.child is not None:
                entry.child.parent = sibling
            else:
                self._leaf_of[entry.item] = sibling

        if node is self.root:
            new_root = Node(level=node.level + 1)
            new_root.entries.append(self._make_parent_entry(node))
            new_root.entries.append(self._make_parent_entry(sibling))
            node.parent = new_root
            sibling.parent = new_root
            self.root = new_root
            return

        parent = cast(Node, node.parent)
        self._refresh_parent_entry(parent.entry_for_child(node), node)
        parent.entries.append(self._make_parent_entry(sibling))
        parent.stamp += 1
        sibling.parent = parent
        self._recompute_upward(parent)
        if len(parent.entries) > self.capacity:
            self._overflow(parent, reinserted_levels)

    def _make_parent_entry(self, child_node: Node) -> Entry:
        entry = Entry(
            Rect.union_all(e.rect for e in child_node.entries),
            child=child_node,
            mbr=Rect.union_all(e.mbr for e in child_node.entries),
            tia=self._tia_factory(),
        )
        entry.tia.replace_all(self._epoch_maxima(child_node.entries))
        return entry

    def _refresh_parent_entry(self, entry: Entry, child_node: Node) -> None:
        entry.rect = Rect.union_all(e.rect for e in child_node.entries)
        entry.mbr = Rect.union_all(e.mbr for e in child_node.entries)
        entry.tia.replace_all(self._epoch_maxima(child_node.entries))
        if child_node.parent is not None:
            # The refreshed entry lives in the parent node; stale packed
            # frames of that node must not keep serving its old bounds.
            child_node.parent.stamp += 1

    @staticmethod
    def _epoch_maxima(entries: Iterable[Entry]) -> dict[int, int]:
        maxima: dict[int, int] = {}
        for entry in entries:
            for epoch, value in entry.tia.items():
                if value > maxima.get(epoch, 0):
                    maxima[epoch] = value
        return maxima

    def _recompute_upward(self, node: Node) -> None:
        """Exactly refresh ancestor entries after removals or splits."""
        while node.parent is not None:
            parent = node.parent
            self._refresh_parent_entry(parent.entry_for_child(node), node)
            node = parent

    def _condense(self, node: Node) -> None:
        orphans: list[tuple[int, list[Entry]]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_fill:
                parent.entries.remove(parent.entry_for_child(node))
                parent.stamp += 1
                orphans.append((node.level, list(node.entries)))
                node = parent
            else:
                self._recompute_upward(node)
                node = self.root  # path fully refreshed; stop the walk
        for level, entries in orphans:
            for entry in entries:
                self._insert_entry(entry, level, reinserted_levels=set())

    # ------------------------------------------------------------------
    # Periodic maintenance (Section 8.2's suggested reinsert/rebuild)
    # ------------------------------------------------------------------

    def refresh_aggregate_dimension(self) -> None:
        """Re-place every POI using its *current* ``lambda-hat``.

        The integral-3D z-coordinate is computed at insertion time and
        drifts as epochs accrue.  The paper suggests periodically
        reinserting entries (or rebuilding) when performance degrades;
        this method implements that refresh in place.  It is a no-op for
        the other strategies' placement quality but safe to call.
        """
        if self._mutation_listener is not None:
            raise UnloggedMutationError(
                "refresh_aggregate_dimension re-inserts every POI and "
                "cannot be write-ahead logged; detach the mutation "
                "listener (close the CheckpointedIngest) first, then "
                "re-wrap with a fresh checkpoint"
            )
        num_epochs = self.num_epochs
        if num_epochs > 0 and self._poi_tias:
            self._max_mean_rate = max(
                tia.mean_rate(num_epochs) for tia in self._poi_tias.values()
            )
        pois = [
            (self._pois[poi_id], dict(self._poi_tias[poi_id].items()))
            for poi_id in list(self._pois)
        ]
        self.root = Node(level=0)
        self._pois.clear()
        self._poi_tias.clear()
        self._leaf_of.clear()
        self._global_epoch_max = {}
        self._global_max_dirty = False
        self._size = 0
        self.frames.clear()
        for poi, epochs in pois:
            self.insert_poi(poi, epochs)

    # ------------------------------------------------------------------
    # Validation / reliability hooks
    # ------------------------------------------------------------------

    def attach_mutation_listener(
        self, listener: MutationListener
    ) -> MutationListener:
        """Register the write-ahead mutation listener (one at a time).

        ``listener`` must implement ``will_insert_poi(tree, poi,
        epoch_aggregates)``, ``will_delete_poi(tree, poi_id)`` and
        ``will_digest_epoch(tree, epoch_index, counts)``; each is called
        *before* the mutation touches any tree state, so a listener that
        durably logs the mutation (and only then returns) gives
        write-ahead semantics.  A listener raising aborts the mutation
        with no state change.  While attached, structural rebuilds that
        cannot be expressed as log records raise
        :class:`UnloggedMutationError`.  Attaching over a different
        live listener raises ``ValueError``.
        """
        if (
            self._mutation_listener is not None
            and self._mutation_listener is not listener
        ):
            raise ValueError(
                "tree already has a mutation listener attached; detach "
                "it (close the previous CheckpointedIngest) first"
            )
        self._mutation_listener = listener
        return listener

    def add_mutation_observer(self, observer: MutationObserver) -> MutationObserver:
        """Register a *post*-mutation callback (any number may attach).

        Unlike the single write-ahead mutation listener, observers are
        notified **after** a logical mutation fully applied, as
        ``observer(kind, poi_ids)`` with ``kind`` one of ``"insert"``,
        ``"delete"`` or ``"digest"`` and ``poi_ids`` the affected POI
        ids.  This is the hook the service layer uses to keep derived
        state (e.g. the scrubber's fingerprint manifest) in sync with
        mutations, whichever entry point issued them.  Observers must
        not mutate the tree.
        """
        if observer not in self._mutation_observers:
            self._mutation_observers.append(observer)
        return observer

    def remove_mutation_observer(self, observer: MutationObserver) -> bool:
        """Remove a post-mutation observer; returns ``True`` when removed."""
        try:
            self._mutation_observers.remove(observer)
        except ValueError:
            return False
        return True

    def _notify_mutation(self, kind: str, poi_ids: tuple[Any, ...]) -> None:
        # The mutation has fully applied by the time observers run, so a
        # raising observer must not rob the ones after it of the event
        # (their derived state would silently drift from the tree's).
        # Every observer is notified; the first failure propagates after.
        first_error: BaseException | None = None
        for observer in list(self._mutation_observers):
            try:
                observer(kind, poi_ids)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def detach_mutation_listener(self, listener: object | None = None) -> bool:
        """Remove the mutation listener; returns ``True`` when removed.

        With ``listener`` given, only that exact listener is removed
        (so a stale wrapper cannot detach a newer one); with ``None``
        any attached listener is removed.
        """
        if self._mutation_listener is None:
            return False
        if listener is not None and self._mutation_listener is not listener:
            return False
        self._mutation_listener = None
        return True

    def check_invariants(self) -> None:
        """Raise on any broken structural or aggregate invariant.

        Verifies parent pointers, fill bounds, exact MBR/grouping-rect
        coverage, the leaf registry, the per-epoch max property of every
        internal TIA (Property 1's precondition), and the global
        per-epoch maxima.  Delegates to the structured validators in
        :mod:`repro.reliability.validate` (so it keeps working under
        ``python -O``, where ``assert`` statements vanish) and raises
        ``AssertionError`` with the violation summary.
        """
        from repro.reliability.validate import validate_tree

        validate_tree(self).raise_if_failed(AssertionError)

    def wrap_tias(self, wrapper: Callable[[BaseTIA], BaseTIA]) -> TARTree:
        """Replace every TIA with ``wrapper(tia)``; returns the tree.

        ``wrapper`` is applied exactly once per distinct TIA object and
        the identity shared between a leaf entry and the POI registry is
        preserved.  The TIA factory is wrapped too, so entries created
        later (splits, inserts) are equally covered.  This is the hook
        the fault injector uses
        (:func:`repro.reliability.faults.inject_tree_faults`); wrappers
        must implement the :class:`~repro.temporal.tia.BaseTIA`
        interface.

        Wrapping permanently disables the packed frame cache: the
        packed hot path answers from flattened TIA snapshots and would
        bypass the wrappers entirely, hiding injected faults (and any
        accounting the wrapper performs) from every subsequent query.
        """
        self.frames.disable()
        seen: dict[int, BaseTIA] = {}

        def once(tia: BaseTIA) -> BaseTIA:
            replacement = seen.get(id(tia))
            if replacement is None:
                replacement = wrapper(tia)
                seen[id(tia)] = replacement
            return replacement

        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                entry.tia = once(entry.tia)
                if entry.child is not None:
                    stack.append(entry.child)
        self._poi_tias = {
            poi_id: once(tia) for poi_id, tia in self._poi_tias.items()
        }
        inner_factory = self._tia_factory
        self._tia_factory = lambda: wrapper(inner_factory())
        return self

    def __repr__(self) -> str:
        return "TARTree(strategy=%s, pois=%d, height=%d, capacity=%d)" % (
            self.strategy.name,
            self._size,
            self.height,
            self.capacity,
        )
