"""The paper's primary contribution: TAR-tree, kNNTA query and enhancements.

* :mod:`repro.core.query` — query/result/answer value types and
  normalisation.
* :mod:`repro.core.tar_tree` — the TAR-tree index (Section 4).
* :mod:`repro.core.frames` — packed per-node buffers the hot query
  paths score from.
* :mod:`repro.core.grouping` — the three entry grouping strategies
  (Section 5): spatial (``IND-spa``), aggregate-distribution
  (``IND-agg``) and the paper's integral-3D strategy.
* :mod:`repro.core.knnta` — best-first kNNTA search (Section 4.3).
* :mod:`repro.core.scan` — the sequential-scan baseline (Section 3.2).
* :mod:`repro.core.costmodel` — the node-access cost analysis (Section 6).
* :mod:`repro.core.mwa` — minimum weight adjustment (Section 7.1).
* :mod:`repro.core.collective` — collective query processing (Section 7.2).
"""

from repro.core.collective import CollectiveProcessor
from repro.core.costmodel import CostModel
from repro.core.grouping import (
    AggregateGrouping,
    Integral3DGrouping,
    SpatialGrouping,
    resolve_strategy,
)
from repro.core.frames import FrameStore, NodeFrame
from repro.core.knnta import knnta_search
from repro.core.mwa import minimum_weight_adjustment
from repro.core.query import Answer, KNNTAQuery, QueryResult, RankedAnswer
from repro.core.scan import sequential_scan
from repro.core.tar_tree import POI, TARTree

__all__ = [
    "TARTree",
    "POI",
    "KNNTAQuery",
    "QueryResult",
    "Answer",
    "RankedAnswer",
    "FrameStore",
    "NodeFrame",
    "CostModel",
    "CollectiveProcessor",
    "SpatialGrouping",
    "AggregateGrouping",
    "Integral3DGrouping",
    "resolve_strategy",
    "knnta_search",
    "sequential_scan",
    "minimum_weight_adjustment",
]
