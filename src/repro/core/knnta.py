"""Best-first kNNTA search over the TAR-tree (Section 4.3).

The entries of the root are seeded into a priority queue keyed by their
ranking-score lower bound; the front entry is repeatedly ejected — leaf
entries emit their POI as the next result, internal entries expand their
child node (one node access) and enqueue its entries.  The ranking
function is *consistent* (an entry's score never exceeds a child's,
Property 1), so the first ``k`` POIs ejected are exactly the top-``k``,
and by Berchtold et al. the search only ever accesses nodes intersecting
the final search region — the optimality the cost model of Section 6
estimates.

Scoring runs on one of two paths per expanded node.  The **packed
path** reads the node's :class:`~repro.core.frames.NodeFrame` — flat
``array`` buffers of MBR coordinates and CSR-packed per-epoch
aggregates — so MINDIST and the Property-1 bound are computed from
contiguous machine values without touching ``Rect`` or TIA objects (and
without TIA page I/O).  The **object path** is the original
entry-by-entry walk; it serves trees without a frame store, stores
disabled by :meth:`~repro.core.tar_tree.TARTree.wrap_tias`, and any
frame invalidated mid-flight.  Both paths execute the same float
operations in the same order, so answers — ids, scores, tie order —
are bit-identical whichever path scored each node.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_left
from math import sqrt
from typing import TYPE_CHECKING, Callable, Iterator, cast

from repro.core.query import QueryResult, RankedAnswer
from repro.temporal.tia import AggregateKind

if TYPE_CHECKING:
    from repro.core.query import KNNTAQuery, Normalizer
    from repro.core.tar_tree import TARTree
    from repro.spatial.rstar import Entry, Node


def knnta_search(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> RankedAnswer:
    """Answer ``query`` on ``tree``; returns the ranked rows.

    The return value is a :class:`~repro.core.query.RankedAnswer` — a
    ``list`` of :class:`~repro.core.query.QueryResult` rows that also
    satisfies the :class:`~repro.core.query.Answer` protocol.
    ``normalizer`` defaults to the tree's root-bound normaliser for the
    query interval (see ``TARTree.normalizer``).  Node accesses and TIA
    page accesses are recorded into ``tree.stats``.  This is the
    bounded form of :func:`knnta_browse` — it consumes exactly the
    first ``query.k`` results of the same best-first traversal, so the
    two functions are access-for-access identical up to ``k``.  (For
    fault-tolerant execution see
    :func:`repro.reliability.recovery.robust_knnta`.)
    """
    query.validate()
    return RankedAnswer(
        itertools.islice(knnta_browse(tree, query, normalizer=normalizer), query.k)
    )


def knnta_browse(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> Iterator[QueryResult]:
    """Yield results one at a time in ranking order (distance browsing).

    The incremental form of :func:`knnta_search` (Hjaltason & Samet's
    *distance browsing*): the caller can consume as many results as it
    needs — "give me more" after inspecting the first few — without
    deciding ``k`` up front.  ``query.k`` is ignored; node accesses are
    charged lazily, only as far as the consumer iterates.
    """
    query.validate()
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    root = tree.root
    if not root.entries:
        return
    tie = itertools.count()
    heap: list[tuple[float, int, Entry, float, float]] = []
    heappush = heapq.heappush

    def push(entry: Entry) -> None:
        raw_distance = entry.mbr.min_dist(query.point)
        raw_aggregate = tree.tia_aggregate(
            entry.tia, query.interval, query.semantics
        )
        distance, aggregate = normalizer.components(raw_distance, raw_aggregate)
        score = query.alpha0 * distance + query.alpha1 * (1.0 - aggregate)
        heappush(heap, (score, next(tie), entry, distance, aggregate))

    frames = getattr(tree, "frames", None)
    expand: Callable[[Node], None]
    if frames is not None and frames.enabled:
        # Hoist every per-query constant out of the inner loop: the
        # query point, the normalisation constants, the weight split
        # and — crucially — the epoch window, which the object path
        # re-derives from the clock on every single entry.
        qx, qy = query.point
        d_max = normalizer.d_max
        g_max = normalizer.g_max
        alpha0 = query.alpha0
        alpha1 = 1.0 - alpha0
        span = tree.clock.epoch_range(query.interval, query.semantics)
        e_start, e_stop = span.start, span.stop
        is_max = tree.aggregate_kind is AggregateKind.MAX

        def expand(node: Node) -> None:
            frame = frames.frame(node)
            if frame is None:  # store disabled mid-flight: object path
                for entry in node.entries:
                    push(entry)
                return
            coords = frame.coords
            epochs = frame.epochs
            values = frame.values
            offsets = frame.offsets
            for i, entry in enumerate(node.entries):
                base = 4 * i
                # MINDIST, operation for operation as Rect.min_dist.
                lo = coords[base]
                if qx < lo:
                    dx = lo - qx
                else:
                    hi = coords[base + 1]
                    dx = qx - hi if qx > hi else 0.0
                lo = coords[base + 2]
                if qy < lo:
                    dy = lo - qy
                else:
                    hi = coords[base + 3]
                    dy = qy - hi if qy > hi else 0.0
                # Property-1 aggregate bound over the epoch window: a
                # bisect into the entry's CSR slice plus an integer
                # fold — exactly BaseTIA.aggregate's value.
                stop = offsets[i + 1]
                first = bisect_left(epochs, e_start, offsets[i], stop)
                last = bisect_left(epochs, e_stop, first, stop)
                if is_max:
                    raw_aggregate = max(values[first:last]) if last > first else 0
                else:
                    raw_aggregate = sum(values[first:last])
                distance = sqrt(dx * dx + dy * dy) / d_max
                aggregate = raw_aggregate / g_max
                score = alpha0 * distance + alpha1 * (1.0 - aggregate)
                heappush(heap, (score, next(tie), entry, distance, aggregate))

    else:

        def expand(node: Node) -> None:
            for entry in node.entries:
                push(entry)

    tree.record_node_access(root)
    expand(root)
    while heap:
        score, _, entry, distance, aggregate = heapq.heappop(heap)
        if entry.is_leaf_entry:
            yield QueryResult(entry.item, score, distance, aggregate)
            continue
        child = cast("Node", entry.child)
        tree.record_node_access(child)
        expand(child)


def knnta_search_exhaustive(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> RankedAnswer:
    """Rank *every* POI by BFS order.

    Equivalent to :func:`knnta_search` with ``k = len(tree)`` but keeps
    the caller's ``k`` untouched; returns the full ranked list.
    """
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    full = query._replace(k=max(1, len(tree)))
    return knnta_search(tree, full, normalizer=normalizer)
