"""Best-first kNNTA search over the TAR-tree (Section 4.3).

The entries of the root are seeded into a priority queue keyed by their
ranking-score lower bound; the front entry is repeatedly ejected — leaf
entries emit their POI as the next result, internal entries expand their
child node (one node access) and enqueue its entries.  The ranking
function is *consistent* (an entry's score never exceeds a child's,
Property 1), so the first ``k`` POIs ejected are exactly the top-``k``,
and by Berchtold et al. the search only ever accesses nodes intersecting
the final search region — the optimality the cost model of Section 6
estimates.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Iterator, cast

from repro.core.query import QueryResult

if TYPE_CHECKING:
    from repro.core.query import KNNTAQuery, Normalizer
    from repro.core.tar_tree import TARTree
    from repro.spatial.rstar import Entry, Node


def knnta_search(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> list[QueryResult]:
    """Answer ``query`` on ``tree``; returns ranked :class:`QueryResult` s.

    ``normalizer`` defaults to the tree's root-bound normaliser for the
    query interval (see ``TARTree.normalizer``).  Node accesses and TIA
    page accesses are recorded into ``tree.stats``.  This is the
    bounded form of :func:`knnta_browse` — it consumes exactly the
    first ``query.k`` results of the same best-first traversal, so the
    two functions are access-for-access identical up to ``k``.  (For
    fault-tolerant execution see
    :func:`repro.reliability.recovery.robust_knnta`.)
    """
    query.validate()
    return list(
        itertools.islice(knnta_browse(tree, query, normalizer=normalizer), query.k)
    )


def knnta_browse(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> Iterator[QueryResult]:
    """Yield results one at a time in ranking order (distance browsing).

    The incremental form of :func:`knnta_search` (Hjaltason & Samet's
    *distance browsing*): the caller can consume as many results as it
    needs — "give me more" after inspecting the first few — without
    deciding ``k`` up front.  ``query.k`` is ignored; node accesses are
    charged lazily, only as far as the consumer iterates.
    """
    query.validate()
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    root = tree.root
    if not root.entries:
        return
    tie = itertools.count()
    heap: list[tuple[float, int, Entry, float, float]] = []

    def push(entry: Entry) -> None:
        raw_distance = entry.mbr.min_dist(query.point)
        raw_aggregate = tree.tia_aggregate(
            entry.tia, query.interval, query.semantics
        )
        distance, aggregate = normalizer.components(raw_distance, raw_aggregate)
        score = query.alpha0 * distance + query.alpha1 * (1.0 - aggregate)
        heapq.heappush(heap, (score, next(tie), entry, distance, aggregate))

    tree.record_node_access(root)
    for entry in root.entries:
        push(entry)
    while heap:
        score, _, entry, distance, aggregate = heapq.heappop(heap)
        if entry.is_leaf_entry:
            yield QueryResult(entry.item, score, distance, aggregate)
            continue
        child = cast("Node", entry.child)
        tree.record_node_access(child)
        for child_entry in child.entries:
            push(child_entry)


def knnta_search_exhaustive(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> list[QueryResult]:
    """Rank *every* POI by BFS order.

    Equivalent to :func:`knnta_search` with ``k = len(tree)`` but keeps
    the caller's ``k`` untouched; returns the full ranked list.
    """
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    full = query._replace(k=max(1, len(tree)))
    return knnta_search(tree, full, normalizer=normalizer)
