"""Query and result value types, and score normalisation.

The kNNTA ranking function (Equation 1) is

    f(p) = alpha0 * d(p, q) + alpha1 * (1 - g(p, Iq))

with ``d`` and ``g`` normalised into [0, 1] by the ranges of their
domains.  :class:`Normalizer` captures the two constants for one query:
the maximum spatial distance (the world diagonal) and the maximum
temporal aggregate over ``Iq``.
"""

from __future__ import annotations

from typing import List, NamedTuple, Protocol, Sequence, Tuple, runtime_checkable

from repro.temporal.epochs import TimeInterval
from repro.temporal.tia import IntervalSemantics


class KNNTAQuery(NamedTuple):
    """One kNNTA query: point, time interval, ``k`` and the weight split.

    ``alpha0`` weights the spatial distance; the aggregate weight is
    ``alpha1 = 1 - alpha0`` (the paper fixes ``alpha0 + alpha1 = 1``).
    """

    point: Tuple[float, float]
    interval: TimeInterval
    k: int = 10
    alpha0: float = 0.3
    semantics: IntervalSemantics = IntervalSemantics.INTERSECTS

    @property
    def alpha1(self) -> float:
        return 1.0 - self.alpha0

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed parameters."""
        if self.k < 1:
            raise ValueError("k must be >= 1, got %d" % self.k)
        if not 0.0 < self.alpha0 < 1.0:
            raise ValueError(
                "alpha0 must be strictly between 0 and 1, got %r" % (self.alpha0,)
            )


class QueryResult(NamedTuple):
    """One ranked POI: identifier, ranking score and its two components.

    ``distance`` and ``aggregate`` are the *normalised* criteria, i.e.
    ``score = alpha0 * distance + alpha1 * (1 - aggregate)``.
    """

    poi_id: object
    score: float
    distance: float
    aggregate: float

    @property
    def score_pair(self) -> tuple[float, float]:
        """``(s_0, s_1)`` as used by the MWA algorithms (Section 7.1)."""
        return (self.distance, 1.0 - self.aggregate)


@runtime_checkable
class Answer(Protocol):
    """The one shape every query answer presents, however it was made.

    ``tree.query`` / :func:`~repro.core.knnta.knnta_search` return a
    :class:`RankedAnswer`, ``tree.robust_query`` a
    :class:`~repro.reliability.recovery.RobustAnswer`, and a degraded
    cluster a :class:`~repro.cluster.resilience.DegradedAnswer` — all
    of them iterate/index like the ranked row list *and* expose these
    four attributes, so the service, wire and CLI layers never switch
    on the concrete type:

    * ``rows`` — the ranked :class:`QueryResult` sequence.
    * ``exact`` — ``True`` when every shard's data is reflected in (or
      provably irrelevant to) the answer; ``False`` marks an explicit,
      bounded degradation.
    * ``coverage`` — the fraction of shards covered (1.0 when exact).
    * ``score_bound`` — for a non-exact answer, the proven minimum
      score of anything the missed shards might contribute; ``None``
      when exact.
    """

    @property
    def rows(self) -> Sequence[QueryResult]: ...

    @property
    def exact(self) -> bool: ...

    @property
    def coverage(self) -> float: ...

    @property
    def score_bound(self) -> float | None: ...


class RankedAnswer(List[QueryResult]):
    """A plain ranked result list, dressed in the :class:`Answer` shape.

    It *is* the list (``list`` subclass), so every existing caller that
    destructures, slices, or compares the rows keeps working unchanged;
    the protocol attributes simply state what a full, undegraded answer
    always was: exact, full coverage, nothing withheld.
    """

    __slots__ = ()

    exact = True
    coverage = 1.0
    score_bound: float | None = None
    #: Legacy duck-type marker mirrored from the degraded types so wire
    #: code written against ``getattr(rows, "degraded", ...)`` keeps
    #: working one more release; prefer ``not answer.exact``.
    degraded = False
    missed_shards: Tuple[int, ...] = ()

    @property
    def rows(self) -> List[QueryResult]:
        return self


class Normalizer(NamedTuple):
    """Per-query normalisation constants.

    ``d_max`` is the maximum spatial distance (the paper divides by the
    range of the distance domain; we use the world diagonal).  ``g_max``
    is the maximum temporal aggregate over the query interval — obtained
    from the per-epoch global maxima the TAR-tree maintains at its root,
    or exactly via a scan (``TARTree.normalizer(..., exact=True)``).
    Either constant falls back to 1 to avoid division by zero.
    """

    d_max: float
    g_max: float

    @classmethod
    def create(cls, d_max: float, g_max: float) -> Normalizer:
        return cls(d_max if d_max > 0 else 1.0, g_max if g_max > 0 else 1.0)

    def score(self, alpha0: float, distance: float, aggregate: float) -> float:
        """Ranking score from *raw* (un-normalised) criteria."""
        return alpha0 * (distance / self.d_max) + (1.0 - alpha0) * (
            1.0 - aggregate / self.g_max
        )

    def components(self, distance: float, aggregate: float) -> tuple[float, float]:
        """Normalised ``(d, g)`` pair from raw criteria."""
        return distance / self.d_max, aggregate / self.g_max
