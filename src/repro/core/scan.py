"""The sequential-scan baseline (Section 3.2).

Assuming check-ins are pre-counted per epoch, the straightforward
approach sums each POI's per-epoch counts over the query interval,
scores every POI and keeps the top-k — time
``O(m'N + N log m + k log N)`` with ``m'`` epochs in the interval and
``N`` POIs.  It is exact, so besides serving as the paper's *baseline*
curve it is the ground truth the index implementations are tested
against.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

from repro.core.query import QueryResult, RankedAnswer
from repro.spatial.geometry import point_distance

if TYPE_CHECKING:
    from repro.core.query import KNNTAQuery, Normalizer
    from repro.core.tar_tree import TARTree


def sequential_scan(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> RankedAnswer:
    """Answer ``query`` by scanning every indexed POI of ``tree``.

    Returns the same ranked :class:`~repro.core.query.RankedAnswer` as
    :func:`repro.core.knnta.knnta_search` (ties may order
    differently).  Shares the tree's normaliser so scores are directly
    comparable.
    """
    query.validate()
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    alpha0 = query.alpha0
    alpha1 = query.alpha1
    heap: list[tuple[float, int, Any, float, float]] = []
    order = 0
    for poi_id in tree.poi_ids():
        poi = tree.poi(poi_id)
        raw_distance = point_distance(poi.point, query.point)
        raw_aggregate = tree.tia_aggregate(
            tree.poi_tia(poi_id), query.interval, query.semantics
        )
        distance, aggregate = normalizer.components(raw_distance, raw_aggregate)
        score = alpha0 * distance + alpha1 * (1.0 - aggregate)
        item = (-score, order, poi_id, distance, aggregate)
        order += 1
        if len(heap) < query.k:
            heapq.heappush(heap, item)
        elif item[0] > heap[0][0]:
            heapq.heapreplace(heap, item)
    ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
    return RankedAnswer(
        QueryResult(poi_id, -neg_score, distance, aggregate)
        for neg_score, _, poi_id, distance, aggregate in ranked
    )


def full_ranking(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> RankedAnswer:
    """Score and rank *every* indexed POI (used by MWA ground truth)."""
    query.validate()
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    alpha0 = query.alpha0
    alpha1 = query.alpha1
    results = RankedAnswer()
    for poi_id in tree.poi_ids():
        poi = tree.poi(poi_id)
        distance, aggregate = normalizer.components(
            point_distance(poi.point, query.point),
            tree.tia_aggregate(
                tree.poi_tia(poi_id), query.interval, query.semantics
            ),
        )
        score = alpha0 * distance + alpha1 * (1.0 - aggregate)
        results.append(QueryResult(poi_id, score, distance, aggregate))
    results.sort(key=lambda r: (r.score, str(r.poi_id)))
    return results
