"""Columnar packed frames for TAR-tree nodes (the kNNTA hot path).

The best-first search scores every entry of every expanded node: MINDIST
from the query point to the entry's MBR plus the Property-1 aggregate
bound its TIA reports over the query interval.  On the object path that
walk chases Python objects — ``Node`` → ``Entry`` list → ``Rect`` →
TIA handle — and the TIA read descends a paged B+-tree per entry.  A
:class:`NodeFrame` flattens one node's scoring inputs into contiguous
``array`` buffers so the inner loop reads plain machine values:

* ``coords`` (``array('d')``, 4 per entry) — the entry MBR as
  ``[lo_x, hi_x, lo_y, hi_y]``, in entry order.
* ``epochs`` / ``values`` (``array('q')``) — every entry's non-zero
  per-epoch aggregates (leaf counts, or the per-epoch child maxima of
  Property 1 for internal entries), concatenated in epoch order.
* ``offsets`` (``array('q')``, ``n + 1`` long) — CSR offsets: entry
  ``i``'s aggregates live in ``epochs[offsets[i]:offsets[i+1]]``.

Frame index ``i`` corresponds to ``node.entries[i]`` — the entry list
itself stays the payload/child handle, so heap contents (and therefore
tie-breaking) are identical between the packed and object paths.

The per-interval aggregate is a ``bisect`` over the entry's epoch slice
followed by an integer ``sum``/``max`` — exactly the value
``BaseTIA.aggregate`` computes, without touching the TIA backend (and
hence without simulated TIA page I/O: the packed path reads zero TIA
pages, which is the point).  MINDIST replicates
:meth:`repro.spatial.geometry.Rect.min_dist` operation for operation,
so scores are bit-identical to the object path.

Invalidation protocol
---------------------

Frames are built lazily on first access and cached per ``node_id``.
Two mechanisms keep them coherent:

* **Stamps.**  Every :class:`~repro.spatial.rstar.Node` carries a
  ``stamp`` counter; the TAR-tree bumps it whenever the node's entry
  list or any entry's rect/MBR/TIA content changes (insert, delete,
  split, forced reinsertion, condensation, digest propagation, scrubber
  repair).  A cached frame records the stamp it was built under and is
  discarded when it no longer matches — this is what makes a frame
  invalidated *mid-flight* (a mutation interleaved with an incremental
  ``knnta_browse``) safe: the next expansion simply rebuilds.
* **Post-mutation observers.**  The store registers as a tree mutation
  observer: ``digest`` pops the affected leaf-to-root paths (the cheap,
  frequent case — digestion never restructures the tree), while
  ``insert``/``delete`` clear the whole cache (splits and forced
  reinsertions can relocate arbitrary entries, so path-based
  invalidation would be unsound).  Observers bound the cache's memory;
  stamps guarantee correctness even if an invalidation is missed.

Fallback triggers
-----------------

The search falls back to the object path per node whenever
:meth:`FrameStore.frame` returns ``None``:

* the store is disabled — permanently so after
  :meth:`~repro.core.tar_tree.TARTree.wrap_tias`, because wrapped TIAs
  (fault injectors, retry shims) must see every read the search makes;
* the tree behind a duck-typed view exposes no store at all
  (``frames`` resolves to ``None``).

Mixing is safe: a packed push and an object push of the same entry
produce bit-identical heap tuples.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.tar_tree import TARTree
    from repro.spatial.rstar import Node


class NodeFrame:
    """The packed scoring inputs of one node, at one mutation stamp."""

    __slots__ = ("stamp", "count", "coords", "epochs", "values", "offsets")

    def __init__(
        self,
        stamp: int,
        count: int,
        coords: array[float],
        epochs: array[int],
        values: array[int],
        offsets: array[int],
    ) -> None:
        self.stamp = stamp
        self.count = count
        self.coords = coords
        self.epochs = epochs
        self.values = values
        self.offsets = offsets

    def __repr__(self) -> str:
        return "NodeFrame(entries=%d, records=%d, stamp=%d)" % (
            self.count,
            len(self.epochs),
            self.stamp,
        )


def build_frame(node: Node) -> NodeFrame:
    """Pack ``node``'s entries into a fresh :class:`NodeFrame`.

    Reads MBRs and TIA contents through the object layer; TIA ``items``
    is a structural read, so building charges no simulated I/O.
    """
    coords = array("d")
    epochs = array("q")
    values = array("q")
    offsets = array("q", [0])
    for entry in node.entries:
        mbr = entry.mbr
        lows = mbr.lows
        highs = mbr.highs
        coords.append(lows[0])
        coords.append(highs[0])
        coords.append(lows[1])
        coords.append(highs[1])
        for epoch, value in entry.tia.items():
            epochs.append(epoch)
            values.append(value)
        offsets.append(len(epochs))
    return NodeFrame(node.stamp, len(node.entries), coords, epochs, values, offsets)


class FrameStore:
    """Lazy per-node frame cache for one TAR-tree.

    Thread-safety matches the tree's own contract: concurrent readers
    may race to build the same frame (both builds are identical, last
    write wins); invalidation happens on the mutation path, which
    callers already serialise against readers (the service's
    readers-writer lock).
    """

    __slots__ = ("_tree", "_frames", "enabled")

    def __init__(self, tree: TARTree) -> None:
        self._tree = tree
        self._frames: dict[int, NodeFrame] = {}
        self.enabled = True

    def frame(self, node: Node) -> NodeFrame | None:
        """The current frame for ``node``; ``None`` when disabled.

        Serves the cached frame only while its stamp and entry count
        still match the node; otherwise rebuilds from the object layer.
        """
        if not self.enabled:
            return None
        frame = self._frames.get(node.node_id)
        if (
            frame is not None
            and frame.stamp == node.stamp
            and frame.count == len(node.entries)
        ):
            return frame
        frame = build_frame(node)
        self._frames[node.node_id] = frame
        return frame

    def cached(self, node: Node) -> NodeFrame | None:
        """The cached frame for ``node`` without building (tests/tools)."""
        return self._frames.get(node.node_id)

    def __len__(self) -> int:
        return len(self._frames)

    def clear(self) -> None:
        """Drop every cached frame (they rebuild lazily)."""
        self._frames.clear()

    def disable(self) -> None:
        """Permanently route queries to the object path.

        Called by :meth:`~repro.core.tar_tree.TARTree.wrap_tias`:
        wrapped TIAs (fault injection, retry accounting) must observe
        every aggregate read, which the packed path would bypass.
        """
        self.enabled = False
        self._frames.clear()

    def invalidate_path(self, poi_id: Any) -> None:
        """Pop the frames along ``poi_id``'s leaf-to-root path."""
        node = self._tree._leaf_of.get(poi_id)
        frames = self._frames
        while node is not None:
            frames.pop(node.node_id, None)
            node = node.parent

    def note_mutation(self, kind: str, poi_ids: tuple[Any, ...]) -> None:
        """Post-mutation observer hook (see the module docs)."""
        if not self._frames:
            return
        if kind == "digest":
            for poi_id in poi_ids:
                self.invalidate_path(poi_id)
        else:
            self._frames.clear()

    def __repr__(self) -> str:
        return "FrameStore(frames=%d, enabled=%r)" % (
            len(self._frames),
            self.enabled,
        )
