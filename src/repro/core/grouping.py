"""Entry grouping strategies for the TAR-tree (Section 5).

The BFS answers kNNTA queries correctly on *any* TAR-tree instance
(Property 1 holds regardless of grouping), but the grouping decides how
many nodes the search touches.  Three strategies are implemented:

* :class:`SpatialGrouping` (``IND-spa``) — the plain R*-tree criteria on
  the raw 2-D spatial extents (Section 5.1).
* :class:`AggregateGrouping` (``IND-agg``) — groups entries with similar
  aggregate distributions, measured by Manhattan distance between their
  per-epoch vectors (Section 5.1).
* :class:`Integral3DGrouping` — the paper's strategy (Section 5.2):
  entries are grouped as 3-D boxes whose first two dimensions are the
  normalised spatial coordinates and whose third is
  ``z = 1 - lambda_hat / max(lambda_hat)`` with ``lambda_hat`` the POI's
  mean per-epoch aggregate (its estimated Poisson check-in rate).

A strategy only drives *placement* (choose-subtree, split, forced
reinsertion).  Query processing always reads the spatial extents from the
entry MBRs and the aggregates from the TIAs, exactly as the paper
prescribes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.spatial.geometry import Rect
from repro.spatial.rstar import (
    reinsert_indices,
    rstar_choose_subtree,
    rstar_split_groups,
)

if TYPE_CHECKING:
    from repro.core.tar_tree import POI, TARTree
    from repro.spatial.rstar import Entry, Node
    from repro.temporal.tia import BaseTIA


def tia_manhattan(tia_a: BaseTIA, tia_b: BaseTIA) -> int:
    """Manhattan distance between two aggregate distributions.

    Sums ``|a_e - b_e|`` over every epoch present in either TIA, matching
    the paper's example (distance between the TIAs of POIs *c* and *g* in
    Table 1 is 0 + 1 + 1 = 2).
    """
    a = dict(tia_a.items())
    total = 0
    for epoch, value in tia_b.items():
        total += abs(a.pop(epoch, 0) - value)
    total += sum(a.values())
    return total


class GroupingStrategy:
    """Placement policy interface used by :class:`~repro.core.tar_tree.TARTree`."""

    name = "abstract"
    dims = 2
    uses_reinsert = True

    def leaf_rect(self, poi: POI, tree: TARTree) -> Rect:
        """Grouping-space rectangle for a new POI entry."""
        raise NotImplementedError

    def choose_child(self, node: Node, entry: Entry, tree: TARTree) -> int:
        """Index of the entry of ``node`` that should receive ``entry``."""
        raise NotImplementedError

    def split_groups(self, node: Node, tree: TARTree) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Two index tuples partitioning ``node.entries`` for a split."""
        raise NotImplementedError

    def reinsert_victims(self, node: Node, tree: TARTree) -> tuple[int, ...]:
        """Indices of entries to force-reinsert on overflow."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class _RectGrouping(GroupingStrategy):
    """Shared R*-tree mechanics for rectangle-keyed strategies."""

    def choose_child(self, node: Node, entry: Entry, tree: TARTree) -> int:
        rects = [e.rect for e in node.entries]
        return rstar_choose_subtree(
            rects, entry.rect, children_are_leaves=(node.level == 1)
        )

    def split_groups(self, node: Node, tree: TARTree) -> tuple[tuple[int, ...], tuple[int, ...]]:
        rects = [e.rect for e in node.entries]
        return rstar_split_groups(rects, tree.min_fill)

    def reinsert_victims(self, node: Node, tree: TARTree) -> tuple[int, ...]:
        rects = [e.rect for e in node.entries]
        return reinsert_indices(rects, tree.reinsert_count)


class SpatialGrouping(_RectGrouping):
    """``IND-spa``: group purely by spatial extents, as an R*-tree does.

    Strong spatial pruning, but nodes become tall hyper-rectangles in the
    aggregate dimension (Figure 5(a)), so queries weighted toward the
    aggregate touch many nodes whose POIs cannot qualify.
    """

    name = "spatial"
    dims = 2

    def leaf_rect(self, poi: POI, tree: TARTree) -> Rect:
        return Rect.from_point((poi.x, poi.y))


class Integral3DGrouping(_RectGrouping):
    """The paper's integral 3-D strategy (Section 5.2).

    Entries are grouped as 3-D boxes: the two spatial dimensions
    normalised by the world extents plus
    ``z = 1 - lambda_hat / max(lambda_hat)``, so that entries close in
    space *and* in expected check-in rate share nodes.  Node extents then
    follow the power law of the data (small boxes among the dense
    low-aggregate layers, Figure 4), preserving pruning power in every
    dimension.
    """

    name = "integral3d"
    dims = 3

    def leaf_rect(self, poi: POI, tree: TARTree) -> Rect:
        x, y = tree.normalized_position(poi)
        z = tree.aggregate_coordinate(poi.poi_id)
        return Rect((x, y, z), (x, y, z))


class AggregateGrouping(GroupingStrategy):
    """``IND-agg``: group entries with similar aggregate distributions.

    Insertion descends into the child whose TIA has the smallest
    Manhattan distance to the POI's aggregate vector; splits pick the two
    entries farthest apart as seeds and redistribute the rest to the
    nearer seed (maximising the distance between the new nodes).  Spatial
    proximity is ignored, so nodes sprawl spatially (Figure 5(b)).
    """

    name = "aggregate"
    dims = 2
    uses_reinsert = False

    def leaf_rect(self, poi: POI, tree: TARTree) -> Rect:
        return Rect.from_point((poi.x, poi.y))

    def choose_child(self, node: Node, entry: Entry, tree: TARTree) -> int:
        best_index = 0
        best_distance: int | None = None
        for i, candidate in enumerate(node.entries):
            distance = tia_manhattan(candidate.tia, entry.tia)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_index = i
        return best_index

    def split_groups(self, node: Node, tree: TARTree) -> tuple[tuple[int, ...], tuple[int, ...]]:
        entries = node.entries
        vectors = [dict(e.tia.items()) for e in entries]
        total = len(entries)
        seed_a, seed_b = self._pick_seeds(vectors)
        order = sorted(
            (i for i in range(total) if i not in (seed_a, seed_b)),
            key=lambda i: self._distance(vectors[i], vectors[seed_a])
            - self._distance(vectors[i], vectors[seed_b]),
        )
        min_fill = tree.min_fill
        group_a = [seed_a]
        group_b = [seed_b]
        remaining = len(order)
        for i in order:
            # Honour the minimum fill: once a group must absorb all the
            # remaining entries to reach min_fill, stop choosing freely.
            if len(group_a) + remaining <= min_fill:
                group_a.append(i)
            elif len(group_b) + remaining <= min_fill:
                group_b.append(i)
            else:
                da = self._distance(vectors[i], vectors[seed_a])
                db = self._distance(vectors[i], vectors[seed_b])
                (group_a if da <= db else group_b).append(i)
            remaining -= 1
        return tuple(group_a), tuple(group_b)

    def reinsert_victims(self, node: Node, tree: TARTree) -> tuple[int, ...]:
        raise NotImplementedError("IND-agg does not use forced reinsertion")

    @staticmethod
    def _distance(vector_a: dict[int, int], vector_b: dict[int, int]) -> int:
        total = 0
        for epoch, value in vector_b.items():
            total += abs(vector_a.get(epoch, 0) - value)
        for epoch, value in vector_a.items():
            if epoch not in vector_b:
                total += value
        return total

    def _pick_seeds(self, vectors: list[dict[int, int]]) -> tuple[int, int]:
        best_pair = (0, min(1, len(vectors) - 1))
        best_distance = -1
        for i in range(len(vectors)):
            for j in range(i + 1, len(vectors)):
                distance = self._distance(vectors[i], vectors[j])
                if distance > best_distance:
                    best_distance = distance
                    best_pair = (i, j)
        return best_pair


_STRATEGIES = {
    "spatial": SpatialGrouping,
    "ind-spa": SpatialGrouping,
    "aggregate": AggregateGrouping,
    "ind-agg": AggregateGrouping,
    "integral3d": Integral3DGrouping,
    "tar": Integral3DGrouping,
}


def resolve_strategy(strategy: str | GroupingStrategy) -> GroupingStrategy:
    """Return a strategy instance from a name or pass an instance through.

    Accepted names: ``"spatial"``/``"ind-spa"``, ``"aggregate"``/
    ``"ind-agg"``, ``"integral3d"``/``"tar"``.
    """
    if isinstance(strategy, GroupingStrategy):
        return strategy
    try:
        return _STRATEGIES[strategy.lower()]()
    except (KeyError, AttributeError):
        raise ValueError(
            "unknown grouping strategy %r; choose from %s"
            % (strategy, sorted(set(_STRATEGIES)))
        ) from None
