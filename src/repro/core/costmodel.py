"""The query-processing cost analysis of Section 6.

The model lives in the normalised 3-D unit cube (two spatial dimensions
plus the aggregate dimension).  POIs sit on countably many *layers*: a
POI with integer aggregate value ``x`` lies at height
``h_x = 1 - x / x_max``.  Layer populations follow the fitted discrete
power law ``p(x) = x^-beta / zeta(beta, x_min)`` (Hurwitz zeta), so the
expected POIs on layer ``x`` is ``N(x) = N * p(x)``.

The search region of a kNNTA query is a cone with base radius
``r_0 = f(p_k)/alpha_0`` at height 0 and apex at ``h_l = f(p_k)/alpha_1``.
``f(p_k)`` is estimated by solving

    k = sum_x N(x) * E[S_{D(q, r_x) and U_x}]

where the expected boundary-corrected disc area is the approximation of
Tao et al.:  ``(sqrt(pi) r - pi r^2 / 4)^2`` while ``sqrt(pi) r < 2``,
else 1.

Node accesses are estimated band by band: descending from the top layer,
a band closes when the accumulated population makes the Boehm node
extent ``S_y = (1 - 1/fanout) * min(fanout / sum N(i), 1)^(1/2)`` equal
the band height ``Delta h`` (cubic nodes).  A node in the band
intersects the search region with probability ``P_y`` given by the
Minkowski sum of the node extent and the cross-section at the band's
bottom layer, with the same boundary correction.  The band then
contributes ``(sum N(i) / fanout) * P_y`` leaf node accesses.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np
from scipy.special import zeta as hurwitz_zeta

if TYPE_CHECKING:
    import numpy.typing as npt

DEFAULT_FANOUT_RATIO = 0.69
"""Average node fill: 69% of capacity (Theodoridis & Sellis)."""


def boundary_corrected_disc_area(
    radius: float | Iterable[float] | npt.NDArray[np.float64],
) -> npt.NDArray[np.float64]:
    """Expected area of ``D(q, r)`` clipped to the unit square.

    Tao et al.'s approximation for a uniformly placed query point:
    ``(sqrt(pi) r - pi r^2 / 4)^2`` while ``sqrt(pi) r < 2``, else 1.
    """
    r = np.asarray(radius, dtype=np.float64)
    sqrt_pi_r = math.sqrt(math.pi) * r
    area = np.where(
        sqrt_pi_r < 2.0,
        np.square(sqrt_pi_r - math.pi * np.square(r) / 4.0),
        1.0,
    )
    return np.asarray(np.clip(area, 0.0, 1.0), dtype=np.float64)


class CostModel:
    """Estimates ``f(p_k)`` and leaf node accesses for kNNTA queries.

    Parameters
    ----------
    n_pois:
        Number of POIs in the power-law tail (aggregate >= ``xmin``);
        the unit-cube layers the model populates.
    beta:
        Power-law exponent of the aggregate distribution (Table 2).
    xmin:
        Lower bound of power-law behaviour; the model's ``Omega``.
    max_aggregate:
        The largest aggregate value — defines the height normalisation
        ``h_x = 1 - x / max_aggregate``.
    capacity:
        Leaf-node entry capacity of the index under analysis.
    fanout_ratio:
        Average fill fraction (default 0.69).
    """

    def __init__(
        self,
        n_pois: float,
        beta: float,
        xmin: int,
        max_aggregate: int,
        capacity: int,
        fanout_ratio: float = DEFAULT_FANOUT_RATIO,
    ) -> None:
        if n_pois <= 0:
            raise ValueError("n_pois must be positive")
        if beta <= 1.0:
            raise ValueError("beta must exceed 1 for a normalisable power law")
        if not 1 <= xmin <= max_aggregate:
            raise ValueError(
                "need 1 <= xmin <= max_aggregate, got xmin=%r max=%r"
                % (xmin, max_aggregate)
            )
        self.n_pois = float(n_pois)
        self.beta = float(beta)
        self.xmin = int(xmin)
        self.max_aggregate = int(max_aggregate)
        self.capacity = capacity
        self.fanout = max(2.0, fanout_ratio * capacity)

        self._layers = np.arange(self.xmin, self.max_aggregate + 1, dtype=np.float64)
        normaliser = float(hurwitz_zeta(self.beta, self.xmin))
        self._probabilities = self._layers ** (-self.beta) / normaliser
        self._counts = self.n_pois * self._probabilities
        self._heights = 1.0 - self._layers / float(self.max_aggregate)

    @classmethod
    def from_aggregates(
        cls,
        aggregates: Iterable[float],
        capacity: int,
        beta: float | None = None,
        xmin: int | None = None,
        **kwargs: Any,
    ) -> CostModel:
        """Build a model from observed per-POI aggregate values.

        ``beta``/``xmin`` default to a Clauset–Shalizi–Newman fit
        (:mod:`repro.analysis.powerlaw`) of the positive aggregates.
        """
        values = [int(v) for v in aggregates if v > 0]
        if not values:
            raise ValueError("no positive aggregates to model")
        if beta is None or xmin is None:
            from repro.analysis.powerlaw import fit_discrete_powerlaw

            fit = fit_discrete_powerlaw(values, xmin=xmin)
            beta = fit.beta if beta is None else beta
            xmin = fit.xmin if xmin is None else xmin
        max_aggregate = max(values)
        xmin = min(int(xmin), max_aggregate)
        n_tail = sum(1 for v in values if v >= xmin)
        return cls(n_tail, beta, xmin, max_aggregate, capacity, **kwargs)

    # ------------------------------------------------------------------
    # Layer structure
    # ------------------------------------------------------------------

    def layer_probability(self, x: float) -> float:
        """``p(x)`` under the fitted power law."""
        return float(x ** (-self.beta) / hurwitz_zeta(self.beta, self.xmin))

    def layer_count(self, x: float) -> float:
        """Expected POIs on layer ``x``."""
        return self.n_pois * self.layer_probability(x)

    def layer_height(self, x: float) -> float:
        """Normalised height of layer ``x`` in the unit cube."""
        return 1.0 - x / float(self.max_aggregate)

    # ------------------------------------------------------------------
    # Search region (Section 6.2)
    # ------------------------------------------------------------------

    def cross_section_radii(
        self, fpk: float, alpha0: float
    ) -> npt.NDArray[np.float64]:
        """Radius of the cone's cross-section at every modelled layer."""
        alpha1 = 1.0 - alpha0
        r0 = fpk / alpha0
        hl = fpk / alpha1
        if hl <= 0.0:
            return np.zeros_like(self._heights)
        radii = r0 * (hl - self._heights) / hl
        return np.asarray(np.clip(radii, 0.0, None), dtype=np.float64)

    def expected_pois_in_region(self, fpk: float, alpha0: float) -> float:
        """Expected POIs inside the search region defined by ``fpk``."""
        radii = self.cross_section_radii(fpk, alpha0)
        return float(np.sum(self._counts * boundary_corrected_disc_area(radii)))

    def estimate_fpk(self, k: int, alpha0: float, tolerance: float = 1e-9) -> float:
        """Estimate the ranking score of the k-th POI (Section 6.2).

        Solves ``expected_pois_in_region(f) = k`` for ``f`` by bisection;
        the left side is monotone in ``f``.  Returns the score in the
        normalised space (directly comparable with measured ``f(p_k)``).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        low, high = 0.0, 1.0
        if self.expected_pois_in_region(high, alpha0) < k:
            # Region saturated the modelled tail; the k-th POI lies past it.
            return high
        for _ in range(200):
            mid = (low + high) / 2.0
            if high - low < tolerance:
                break
            if self.expected_pois_in_region(mid, alpha0) < k:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    # ------------------------------------------------------------------
    # Node accesses (Section 6.3)
    # ------------------------------------------------------------------

    def bands(self) -> list[tuple[int, int, float, float]]:
        """Partition the layers into bands of cubic nodes.

        Yields ``(start_index, end_index, population, extent)`` where the
        indices address ``self._layers`` inclusively, ``population`` is
        the expected POIs in the band and ``extent`` the node side
        length ``S_y``.  A band closes when ``S_y <= Delta h`` (node
        height matches its spatial extent) or the layers run out.
        """
        counts = self._counts
        total_layers = len(counts)
        inverse_max = 1.0 / float(self.max_aggregate)
        fill = 1.0 - 1.0 / self.fanout
        start = 0
        result: list[tuple[int, int, float, float]] = []
        while start < total_layers:
            population = 0.0
            end = start
            while True:
                population += float(counts[end])
                extent = fill * math.sqrt(min(self.fanout / population, 1.0))
                delta_h = (end - start) * inverse_max
                if extent <= delta_h or end == total_layers - 1:
                    break
                end += 1
            result.append((start, end, population, extent))
            start = end + 1
        return result

    def estimate_node_accesses(
        self,
        k: int | None = None,
        alpha0: float = 0.3,
        fpk: float | None = None,
    ) -> float:
        """Expected leaf node accesses ``NA(alpha, k)`` (Section 6.3).

        Either ``k`` (then ``f(p_k)`` is estimated first) or an explicit
        ``fpk`` must be given.
        """
        if fpk is None:
            if k is None:
                raise ValueError("pass k or fpk")
            fpk = self.estimate_fpk(k, alpha0)
        radii = self.cross_section_radii(fpk, alpha0)
        total = 0.0
        for start, end, population, extent in self.bands():
            ry = float(radii[end])
            if ry <= 0.0:
                # Band lies entirely above the cone's apex: never touched.
                continue
            p_y = self._intersection_probability(extent, ry)
            total += (population / self.fanout) * p_y
        return total

    @staticmethod
    def _intersection_probability(extent: float, radius: float) -> float:
        """``P_y``: a node of side ``extent`` meets the cross-section disc.

        The Minkowski sum of the square node and the disc, with the
        boundary correction of Tao et al.
        """
        ly_squared = (
            extent * extent
            + 4.0 * extent * radius
            + math.pi * radius * radius
        )
        ly = math.sqrt(ly_squared)
        if ly + extent >= 2.0 or extent >= 1.0:
            return 1.0
        p_y = (4.0 * ly - (ly + extent) ** 2) / (4.0 * (1.0 - extent))
        return min(1.0, max(0.0, p_y)) ** 2

    def __repr__(self) -> str:
        return (
            "CostModel(n=%g, beta=%.3f, xmin=%d, max_agg=%d, capacity=%d)"
            % (self.n_pois, self.beta, self.xmin, self.max_aggregate, self.capacity)
        )
