"""Minimum weight adjustment (MWA), Section 7.1.

Users exploring results may adjust ``alpha0``; the MWA is the smallest
change to ``alpha0`` that alters the top-k *set*.  For a top-k POI ``p_i``
and a lower-ranked ``p_j`` with score pairs ``s_i = (s_i0, s_i1)`` and
``s_j``, the boundary weight at which their order flips is

    gamma_ij = delta_1 / (delta_1 - delta_0),   delta_t = s_it - s_jt,

defined only when ``delta_0 * delta_1 < 0`` (otherwise ``p_i`` dominates
``p_j`` and no weight can flip them).  The MWA is the pair

    Gamma_l = max{gamma_ij : delta_0 < 0},
    Gamma_u = min{gamma_ij : delta_0 > 0},

the boundaries nearest the current weight from below and above.  Two
algorithms compute it on the TAR-tree:

* :func:`mwa_enumerating` — the paper's straightforward approach: for
  each top-k POI, re-traverse the index pruning only subtrees the POI
  dominates.
* :func:`mwa_pruning` — the paper's proposed approach: the extremal
  ``gamma`` is always realised between the *skyline* of the lower-ranked
  POIs and the *reverse skyline* of the top-k (monotonicity of ``gamma``
  in ``s_j0``/``s_j1``), so one BBS skyline pass suffices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, NamedTuple, Optional, Sequence, cast

from repro.core.knnta import knnta_search
from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import dominates, skyline_of_points

if TYPE_CHECKING:
    from repro.core.query import KNNTAQuery, Normalizer, QueryResult
    from repro.core.tar_tree import TARTree
    from repro.spatial.rstar import Entry, Node


def weight_boundary(s_i: Sequence[float], s_j: Sequence[float]) -> float | None:
    """The boundary ``gamma_ij``, or ``None`` when ``p_i`` dominates ``p_j``.

    ``s_i`` must be the score pair of the higher-ranked POI under the
    current weights (``f(p_i) < f(p_j)``).
    """
    delta_0 = s_i[0] - s_j[0]
    delta_1 = s_i[1] - s_j[1]
    if delta_0 * delta_1 >= 0:
        return None
    return delta_1 / (delta_1 - delta_0)


class MWAResult(NamedTuple):
    """The minimum weight adjustment around the current ``alpha0``.

    ``gamma_lower``/``gamma_upper`` are the nearest boundary weights
    below/above ``alpha0`` (``None`` when no adjustment in that direction
    can change the result set).  Crossing either boundary swaps exactly
    one top-k POI with one lower-ranked POI.
    """

    alpha0: float
    gamma_lower: Optional[float]
    gamma_upper: Optional[float]

    @property
    def minimum_adjustment(self) -> float | None:
        """Smallest ``|alpha0' - alpha0|`` that changes the result set."""
        candidates: list[float] = []
        if self.gamma_lower is not None:
            candidates.append(self.alpha0 - self.gamma_lower)
        if self.gamma_upper is not None:
            candidates.append(self.gamma_upper - self.alpha0)
        return min(candidates) if candidates else None

    @property
    def nearest_weight(self) -> float | None:
        """The boundary weight nearest to ``alpha0`` (``None`` if immutable)."""
        down = self.alpha0 - self.gamma_lower if self.gamma_lower is not None else None
        up = self.gamma_upper - self.alpha0 if self.gamma_upper is not None else None
        if down is None and up is None:
            return None
        if up is None or (down is not None and down <= up):
            return self.gamma_lower
        return self.gamma_upper


def mwa_from_pairs(
    topk_pairs: Sequence[Sequence[float]],
    lower_pairs: Sequence[Sequence[float]],
    alpha0: float,
) -> MWAResult:
    """Exact MWA from explicit score-pair lists (the definition above).

    Quadratic in the list sizes; serves as ground truth for the index
    algorithms and powers the worked example of Table 3.
    """
    gamma_lower: float | None = None
    gamma_upper: float | None = None
    for s_i in topk_pairs:
        for s_j in lower_pairs:
            gamma = weight_boundary(s_i, s_j)
            if gamma is None:
                continue
            if s_i[0] - s_j[0] < 0:
                if gamma_lower is None or gamma > gamma_lower:
                    gamma_lower = gamma
            else:
                if gamma_upper is None or gamma < gamma_upper:
                    gamma_upper = gamma
    return MWAResult(alpha0, gamma_lower, gamma_upper)


def _topk_and_normalizer(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None
) -> tuple[list[QueryResult], Normalizer]:
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    topk = knnta_search(tree, query, normalizer=normalizer)
    return topk, normalizer


def mwa_enumerating(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> MWAResult:
    """The straightforward MWA computation (the paper's baseline).

    For each of the top-k POIs, the BFS is continued over the whole tree;
    subtrees whose score-pair lower bound is dominated by the POI are
    pruned (they can never be flipped with it), every other leaf
    contributes a candidate ``gamma``.  Cost grows with ``k`` because the
    tree is traversed once per top-k POI (Figure 13).
    """
    topk, normalizer = _topk_and_normalizer(tree, query, normalizer)
    topk_ids = {r.poi_id for r in topk}
    gamma_lower: float | None = None
    gamma_upper: float | None = None
    for result in topk:
        s_i = result.score_pair
        for s_j in _scan_non_dominated(tree, query, normalizer, s_i, topk_ids):
            gamma = weight_boundary(s_i, s_j)
            if gamma is None:
                continue
            if s_i[0] - s_j[0] < 0:
                if gamma_lower is None or gamma > gamma_lower:
                    gamma_lower = gamma
            else:
                if gamma_upper is None or gamma < gamma_upper:
                    gamma_upper = gamma
    return MWAResult(query.alpha0, gamma_lower, gamma_upper)


def _scan_non_dominated(
    tree: TARTree,
    query: KNNTAQuery,
    normalizer: Normalizer,
    pivot_pair: tuple[float, float],
    topk_ids: set[Any],
) -> Iterator[tuple[float, float]]:
    """Yield score pairs of POIs not dominated by ``pivot_pair``."""
    root = tree.root
    if not root.entries:
        return

    def corner(entry: Entry) -> tuple[float, float]:
        distance, aggregate = normalizer.components(
            entry.mbr.min_dist(query.point),
            tree.tia_aggregate(entry.tia, query.interval, query.semantics),
        )
        return (distance, 1.0 - aggregate)

    tree.record_node_access(root)
    stack = [(corner(entry), entry) for entry in root.entries]
    while stack:
        pair, entry = stack.pop()
        if dominates(pivot_pair, pair):
            continue
        if entry.is_leaf_entry:
            if entry.item not in topk_ids:
                yield pair
            continue
        child = cast("Node", entry.child)
        tree.record_node_access(child)
        for child_entry in child.entries:
            stack.append((corner(child_entry), child_entry))


def mwa_pruning(
    tree: TARTree, query: KNNTAQuery, normalizer: Normalizer | None = None
) -> MWAResult:
    """The skyline-based MWA computation (the paper's proposed algorithm).

    (i) Compute the reverse skyline of the top-k (no node accesses),
    (ii) compute the skyline of the lower-ranked POIs with one BBS pass
    over the TAR-tree, (iii) combine boundary weights across the two
    skylines.
    """
    topk, normalizer = _topk_and_normalizer(tree, query, normalizer)
    topk_ids = {r.poi_id for r in topk}
    reverse_skyline = skyline_of_points(
        [r.score_pair for r in topk], reverse=True
    )
    lower_skyline = bbs_skyline(
        tree, query, normalizer=normalizer, exclude=frozenset(topk_ids)
    )
    return mwa_from_pairs(
        reverse_skyline, [pair for _, pair in lower_skyline], query.alpha0
    )


def minimum_weight_adjustment(
    tree: TARTree,
    query: KNNTAQuery,
    method: str = "pruning",
    normalizer: Normalizer | None = None,
) -> MWAResult:
    """Compute the MWA for ``query`` on ``tree``.

    ``method`` is ``"pruning"`` (Section 7.1's proposed algorithm) or
    ``"enumerating"`` (the straightforward baseline).
    """
    if method == "pruning":
        return mwa_pruning(tree, query, normalizer)
    if method == "enumerating":
        return mwa_enumerating(tree, query, normalizer)
    raise ValueError("method must be 'pruning' or 'enumerating', got %r" % (method,))


def weight_adjustment_sequence(
    tree: TARTree,
    query: KNNTAQuery,
    changes: int,
    direction: str = "up",
    method: str = "pruning",
    normalizer: Normalizer | None = None,
    epsilon: float = 1e-9,
) -> list[float]:
    """Boundary weights at which the top-k changes 1st, 2nd, ... m-th.

    The paper notes the MWA algorithm "is not difficult to extend ... to
    compute the weight adjustment that leads to multiple top-k POIs being
    changed"; this is that extension.  Walking ``alpha0`` in one
    ``direction`` ("up" toward the spatial criterion, "down" toward the
    aggregate), each crossed boundary swaps one result POI, so the m-th
    returned weight is the least adjustment that changes m POIs
    cumulatively.

    Returns the (possibly shorter, if the result set becomes immutable
    in that direction) list of boundary weights in crossing order.
    """
    if changes < 1:
        raise ValueError("changes must be >= 1, got %d" % changes)
    if direction not in ("up", "down"):
        raise ValueError("direction must be 'up' or 'down', got %r" % (direction,))
    boundaries: list[float] = []
    current = query
    for _ in range(changes):
        result = minimum_weight_adjustment(tree, current, method, normalizer)
        boundary = result.gamma_upper if direction == "up" else result.gamma_lower
        if boundary is None:
            break
        boundaries.append(boundary)
        # Step just past the boundary so the next iteration sees the
        # swapped result set.
        next_alpha = boundary + epsilon if direction == "up" else boundary - epsilon
        if not 0.0 < next_alpha < 1.0:
            break
        current = current._replace(alpha0=next_alpha)
    return boundaries
