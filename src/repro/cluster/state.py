"""Durable cluster state: per-shard WAL directories plus one manifest.

On disk a cluster is a directory of shard state directories — each the
ordinary single-tree layout :class:`~repro.reliability.recovery
.CheckpointedIngest` maintains (``tree.json`` snapshot + ``tree.wal``)
— tied together by a ``cluster.json`` manifest holding the serialized
:class:`~repro.cluster.planner.ShardPlan` and each shard's applied-LSN
high-water mark as of the last cluster checkpoint::

    <dir>/cluster.json          # manifest: version, plan, shard LSNs
    <dir>/shard-0/tree.json     # shard 0 snapshot
    <dir>/shard-0/tree.wal      # shard 0 mutation WAL
    <dir>/shard-1/...

Recovery is per shard — each WAL replays independently onto its own
snapshot (crash-consistent exactly as in the single-tree story) — and
then the manifest is the cross-shard consistency check: a recovered
shard may be *ahead* of its manifest LSN (mutations landed after the
last checkpoint; the WAL preserved them) but never *behind* it, which
would mean durable state vanished.  :func:`recover_cluster` enforces
this and :func:`open_cluster` rebuilds a live
:class:`~repro.cluster.coordinator.ClusterTree` routing exactly as the
original process did.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.cluster.coordinator import ClusterStateError, ClusterTree, Shard
from repro.cluster.planner import ShardPlan
from repro.reliability.recovery import CheckpointedIngest, recover

__all__ = [
    "MANIFEST_NAME",
    "ClusterRecoveryReport",
    "check_reshard_consistency",
    "is_cluster_directory",
    "manifest_payload",
    "open_cluster",
    "read_manifest",
    "read_shard_meta",
    "recover_cluster",
    "save_cluster",
    "write_manifest",
    "write_manifest_payload",
    "write_shard_meta",
]

#: File name of the cluster manifest inside a cluster directory.
MANIFEST_NAME = "cluster.json"

#: Per-shard reshard metadata (plan epoch + commit flag) inside a
#: shard state directory; see :func:`check_reshard_consistency`.
SHARD_META_NAME = "meta.json"

_MANIFEST_VERSION = 1


def _manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def is_cluster_directory(path: str) -> bool:
    """Whether ``path`` holds a cluster manifest (vs. a tree snapshot)."""
    return os.path.isfile(_manifest_path(path))


def manifest_payload(
    name: str,
    parallelism: int,
    plan: ShardPlan,
    shards: list[tuple[str, Any]],
    plan_epoch: int = 0,
    next_dir: int | None = None,
) -> dict[str, Any]:
    """Build a manifest payload from raw parts.

    ``shards`` is ``[(dirname, applied_lsn), ...]`` in plan order.
    ``plan_epoch`` counts live resharding generations (0 = the plan as
    originally saved); ``next_dir`` is the next free shard-directory
    ordinal, so successor directories never collide with retired ones.
    """
    entries = [
        {"dir": dirname, "applied_lsn": lsn} for dirname, lsn in shards
    ]
    return {
        "version": _MANIFEST_VERSION,
        "name": name,
        "parallelism": parallelism,
        "plan": plan.as_json(),
        "plan_epoch": plan_epoch,
        "next_dir": len(entries) if next_dir is None else next_dir,
        "shards": entries,
    }


def write_manifest_payload(directory: str, payload: dict[str, Any]) -> str:
    """Atomically write a manifest payload under ``directory``."""
    path = _manifest_path(directory)
    temp_path = path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    return path


def write_manifest(directory: str, cluster: ClusterTree) -> str:
    """Atomically (re)write ``directory``'s manifest from ``cluster``.

    Called after every cluster checkpoint so the recorded per-shard
    applied LSNs always describe one consistent set of shard snapshots.
    """
    payload = manifest_payload(
        cluster.name,
        cluster.parallelism,
        cluster.plan,
        [(shard.dirname, shard.tree.applied_lsn) for shard in cluster.shards],
        plan_epoch=getattr(cluster, "plan_epoch", 0),
        next_dir=getattr(cluster, "next_dir", None),
    )
    return write_manifest_payload(directory, payload)


def write_shard_meta(
    shard_dir: str, plan_epoch: int, committed: bool
) -> str:
    """Atomically write a shard directory's reshard metadata.

    A reshard writes the successors' meta with ``committed=False``
    before any data lands, and flips it to ``True`` only *after* the
    manifest naming them is durable — so a crash anywhere in between
    leaves either ignorable orphans or detectable manifest rollback
    (see :func:`check_reshard_consistency`).
    """
    path = os.path.join(shard_dir, SHARD_META_NAME)
    temp_path = path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(
            {"plan_epoch": plan_epoch, "committed": committed},
            handle,
            sort_keys=True,
        )
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    return path


def read_shard_meta(shard_dir: str) -> dict[str, Any] | None:
    """The shard directory's reshard metadata, or None for pre-reshard dirs."""
    path = os.path.join(shard_dir, SHARD_META_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise ClusterStateError(
            "unreadable shard metadata %s: %s" % (path, exc)
        ) from exc
    if not isinstance(payload, dict):
        raise ClusterStateError("shard metadata %s is not an object" % path)
    return payload


def check_reshard_consistency(
    directory: str, payload: dict[str, Any]
) -> None:
    """Refuse a manifest that is behind committed reshard state.

    Scans every shard state directory under ``directory`` for committed
    reshard metadata carrying a plan epoch *newer* than the manifest's:
    that means a split committed (successor shards hold the data, the
    source was retired) but the manifest naming them was rolled back —
    opening with the stale routing table would serve from retired
    state.  Uncommitted metadata from a crashed split is ignorable by
    design (the old manifest and source shard are still authoritative).
    """
    manifest_epoch = int(payload.get("plan_epoch", 0))
    named = {entry["dir"] for entry in payload["shards"]}
    try:
        children = sorted(os.listdir(directory))
    except OSError:
        return
    for child in children:
        shard_dir = os.path.join(directory, child)
        if not os.path.isdir(shard_dir):
            continue
        meta = read_shard_meta(shard_dir)
        if meta is None or not meta.get("committed"):
            continue
        meta_epoch = int(meta.get("plan_epoch", 0))
        if meta_epoch > manifest_epoch and child not in named:
            raise ClusterStateError(
                "cluster manifest at plan epoch %d is behind committed "
                "shard state %s at plan epoch %d — the manifest was "
                "rolled back across a reshard; refusing to open"
                % (manifest_epoch, shard_dir, meta_epoch)
            )


def read_manifest(directory: str) -> dict[str, Any]:
    """Load and validate ``directory``'s cluster manifest."""
    path = _manifest_path(directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ClusterStateError(
            "%s is not a cluster directory (no %s)" % (directory, MANIFEST_NAME)
        ) from None
    except (OSError, ValueError) as exc:
        raise ClusterStateError(
            "unreadable cluster manifest %s: %s" % (path, exc)
        ) from exc
    if not isinstance(payload, dict):
        raise ClusterStateError("cluster manifest %s is not an object" % path)
    version = payload.get("version")
    if version != _MANIFEST_VERSION:
        raise ClusterStateError(
            "unsupported cluster manifest version %r in %s" % (version, path)
        )
    shards = payload.get("shards")
    if not isinstance(shards, list) or not shards:
        raise ClusterStateError("cluster manifest %s lists no shards" % path)
    return payload


def save_cluster(cluster: ClusterTree, directory: str) -> str:
    """Attach durable state under ``directory`` to an in-memory cluster.

    Creates one state directory per shard, attaches a
    :class:`~repro.reliability.recovery.CheckpointedIngest` to each
    shard tree (writing its base snapshot), and writes the manifest.
    From here on every routed mutation is write-ahead logged per shard.
    Returns the manifest path.
    """
    if cluster.directory is not None:
        raise ClusterStateError(
            "cluster already has durable state at %s" % cluster.directory
        )
    os.makedirs(directory, exist_ok=True)
    attached: list[Shard] = []
    try:
        for shard in cluster.shards:
            shard_dir = os.path.join(directory, shard.dirname)
            shard.ingest = CheckpointedIngest(shard.tree, shard_dir, name="tree")
            attached.append(shard)
    except Exception:
        for shard in attached:
            if shard.ingest is not None:
                shard.ingest.close()
                shard.ingest = None
        raise
    cluster.directory = directory
    return write_manifest(directory, cluster)


class ClusterRecoveryReport:
    """Per-shard recovery outcomes plus the manifest consistency check."""

    __slots__ = ("directory", "name", "plan", "manifest", "shard_reports")

    def __init__(
        self,
        directory: str,
        name: str,
        plan: ShardPlan,
        manifest: dict[str, Any],
        shard_reports: list[Any],
    ) -> None:
        self.directory = directory
        self.name = name
        self.plan = plan
        self.manifest = manifest
        self.shard_reports = shard_reports

    @property
    def replayed(self) -> int:
        """Total WAL records replayed across all shards (all types)."""
        return sum(
            sum(report.replayed.values()) for report in self.shard_reports
        )

    def summary(self) -> str:
        lines = [
            "cluster %r: %d shards recovered, %d records replayed"
            % (self.name, len(self.shard_reports), self.replayed)
        ]
        for index, report in enumerate(self.shard_reports):
            lines.append("  shard %d: %s" % (index, report.summary()))
        return "\n".join(lines)


def recover_cluster(
    directory: str, stats: Any = None, **overrides: Any
) -> ClusterRecoveryReport:
    """Recover every shard of the cluster under ``directory``.

    Each shard replays its own WAL onto its own snapshot via
    :func:`repro.reliability.recovery.recover`; afterwards each
    recovered tree must have reached *at least* the applied LSN the
    manifest recorded for it at the last cluster checkpoint — being
    ahead is normal (post-checkpoint mutations replayed from the WAL),
    being behind means durable state was lost and raises
    :class:`~repro.cluster.coordinator.ClusterStateError`.
    """
    payload = read_manifest(directory)
    check_reshard_consistency(directory, payload)
    plan = ShardPlan.from_json(payload["plan"])
    entries = payload["shards"]
    if len(entries) != len(plan):
        raise ClusterStateError(
            "cluster manifest lists %d shards but the plan has %d regions"
            % (len(entries), len(plan))
        )
    shard_reports: list[Any] = []
    for index, entry in enumerate(entries):
        shard_dir = os.path.join(directory, entry["dir"])
        if not os.path.isdir(shard_dir):
            raise ClusterStateError(
                "cluster manifest names missing shard directory %s" % shard_dir
            )
        report = recover(shard_dir, name="tree", stats=stats, **overrides)
        manifest_lsn = entry.get("applied_lsn")
        recovered_lsn = report.tree.applied_lsn
        if manifest_lsn is not None and (
            recovered_lsn is None or recovered_lsn < manifest_lsn
        ):
            raise ClusterStateError(
                "shard %d recovered to LSN %r but the cluster manifest "
                "recorded LSN %r — shard state is behind its checkpoint"
                % (index, recovered_lsn, manifest_lsn)
            )
        shard_reports.append(report)
    return ClusterRecoveryReport(
        directory, str(payload.get("name", "cluster")), plan, payload, shard_reports
    )


def open_cluster(
    directory: str,
    parallelism: int | None = None,
    stats: Any = None,
    resilience: Any = None,
    injector: Any = None,
    allow_degraded: bool = False,
    **overrides: Any,
) -> ClusterTree:
    """Recover and reopen the cluster under ``directory`` for serving.

    Runs :func:`recover_cluster`, re-attaches a fresh per-shard WAL
    ingest to every recovered tree, and rebuilds the coordinator from
    the manifest's routing plan.  ``parallelism`` defaults to the value
    recorded in the manifest.  ``resilience`` / ``injector`` /
    ``allow_degraded`` configure the coordinator's fault-domain layer
    (see :mod:`repro.cluster.resilience`).
    """
    report = recover_cluster(directory, stats=stats, **overrides)
    if parallelism is None:
        manifest_parallelism = report.manifest.get("parallelism", 1)
        parallelism = int(manifest_parallelism) if manifest_parallelism else 1
    shards: list[Shard] = []
    try:
        for index, shard_report in enumerate(report.shard_reports):
            dirname = str(report.manifest["shards"][index]["dir"])
            shard_dir = os.path.join(directory, dirname)
            ingest = CheckpointedIngest(shard_report.tree, shard_dir, name="tree")
            shards.append(
                Shard(
                    index,
                    report.plan.regions[index],
                    shard_report.tree,
                    ingest,
                    dirname=dirname,
                )
            )
    except Exception:
        for shard in shards:
            if shard.ingest is not None:
                shard.ingest.close()
        raise
    cluster = ClusterTree(
        report.plan,
        shards,
        parallelism=parallelism,
        directory=directory,
        name=report.name,
        resilience=resilience,
        injector=injector,
        allow_degraded=allow_degraded,
    )
    cluster.plan_epoch = int(report.manifest.get("plan_epoch", 0))
    cluster.next_dir = int(report.manifest.get("next_dir", len(shards)))
    return cluster
