"""Spatial shard planning: partition a POI set into routable regions.

A :class:`ShardPlan` is the cluster's routing table: an ordered list of
axis-aligned regions, one per shard, that tile the *data bounding box*
of the planned POI set.  Two planning methods are offered:

* ``"kd"`` — recursive median splits: the region with the most shards
  assigned is cut along its wider axis at the coordinate quantile that
  sends a proportional share of the POIs to each side.  Shard POI
  counts stay balanced even under heavy spatial skew (the LBSN
  generator clusters venues around hot spots).
* ``"grid"`` — a rows-by-columns tiling of the bounding box with equal
  cell edges; simple, but skewed data lands mostly in a few cells.

Routing is deterministic: :meth:`ShardPlan.route` returns the first
region (in index order) containing the point, so POIs on shared region
boundaries always map to one shard.  A point outside every region — a
later insert beyond the planned bounding box — is *routing overflow*:
:meth:`ShardPlan.nearest` picks the shard whose region is closest, and
the coordinator counts the event (see
:class:`~repro.cluster.coordinator.ClusterTree`).

The plan serialises to plain JSON (:meth:`ShardPlan.as_json` /
:meth:`ShardPlan.from_json`) and rides inside the cluster manifest, so
recovery routes exactly like the original process did.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.spatial.geometry import Rect

__all__ = ["ShardPlan", "plan_shards", "split_region"]

#: Planning methods accepted by :func:`plan_shards`.
PLAN_METHODS = ("kd", "grid")


class ShardPlan:
    """An ordered, JSON-serialisable routing table of shard regions."""

    __slots__ = ("regions", "method")

    def __init__(self, regions: Sequence[Rect], method: str = "kd") -> None:
        if not regions:
            raise ValueError("a shard plan needs at least one region")
        for region in regions:
            if region.dims != 2:
                raise ValueError("shard regions must be 2-D, got %r" % (region,))
        self.regions = tuple(regions)
        self.method = method

    def __len__(self) -> int:
        return len(self.regions)

    def route(self, point: Sequence[float]) -> int | None:
        """Shard index owning ``point``, or ``None`` when out of bounds.

        The first containing region (index order) wins, so boundary
        points route deterministically.
        """
        for index, region in enumerate(self.regions):
            if region.contains_point(point):
                return index
        return None

    def nearest(self, point: Sequence[float]) -> int:
        """The shard whose region is closest to ``point`` (MINDIST).

        The overflow fallback for inserts outside every region; exact
        ties break toward the lower shard index.
        """
        best = 0
        best_distance = self.regions[0].min_dist(point)
        for index in range(1, len(self.regions)):
            distance = self.regions[index].min_dist(point)
            if distance < best_distance:
                best = index
                best_distance = distance
        return best

    def as_json(self) -> dict[str, Any]:
        """The plan as a JSON-ready dict (the manifest's routing table)."""
        return {
            "method": self.method,
            "regions": [
                {"lows": list(region.lows), "highs": list(region.highs)}
                for region in self.regions
            ],
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> ShardPlan:
        """Rebuild a plan written by :meth:`as_json`."""
        regions = [
            Rect(entry["lows"], entry["highs"]) for entry in payload["regions"]
        ]
        return cls(regions, method=payload.get("method", "kd"))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardPlan)
            and self.regions == other.regions
            and self.method == other.method
        )

    def __hash__(self) -> int:
        return hash((self.regions, self.method))

    def __repr__(self) -> str:
        return "ShardPlan(%d %s regions)" % (len(self.regions), self.method)


def _bounding_box(
    points: Sequence[tuple[float, float]], fallback: Rect | None
) -> Rect:
    if not points:
        if fallback is None:
            raise ValueError("cannot plan shards over zero points with no world")
        return fallback
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    return Rect((min(xs), min(ys)), (max(xs), max(ys)))


def _kd_regions(
    region: Rect, points: Sequence[tuple[float, float]], num_shards: int
) -> list[Rect]:
    """Recursively split ``region`` into ``num_shards`` balanced cells."""
    if num_shards == 1:
        return [region]
    left_shards = num_shards // 2
    right_shards = num_shards - left_shards
    # Cut across the wider side so cells stay square-ish (good MINDIST
    # bounds); the cut coordinate is the quantile sending a share of
    # the points proportional to each side's shard count.
    dim = 0 if region.extent(0) >= region.extent(1) else 1
    if points:
        ordered = sorted(point[dim] for point in points)
        cut_rank = max(
            1, min(len(ordered) - 1, round(len(ordered) * left_shards / num_shards))
        ) if len(ordered) > 1 else 0
        cut = ordered[cut_rank] if len(ordered) > 1 else region.center[dim]
        # A degenerate quantile (many identical coordinates) would make
        # an empty-width cell; fall back to the spatial midpoint.
        if not region.lows[dim] < cut < region.highs[dim]:
            cut = region.center[dim]
    else:
        cut = region.center[dim]
    if dim == 0:
        low_region = Rect(region.lows, (cut, region.highs[1]))
        high_region = Rect((cut, region.lows[1]), region.highs)
    else:
        low_region = Rect(region.lows, (region.highs[0], cut))
        high_region = Rect((region.lows[0], cut), region.highs)
    low_points = [point for point in points if point[dim] <= cut]
    high_points = [point for point in points if point[dim] > cut]
    return _kd_regions(low_region, low_points, left_shards) + _kd_regions(
        high_region, high_points, right_shards
    )


def _grid_regions(box: Rect, num_shards: int) -> list[Rect]:
    """Tile ``box`` into exactly ``num_shards`` rectangular cells.

    Rows split the y-extent evenly; each row is split into its own
    number of columns, with the remainder spread over the first rows,
    so any shard count (not just perfect squares) tiles exactly.
    """
    rows = max(1, int(num_shards**0.5))
    base_cols, extra = divmod(num_shards, rows)
    y0, y1 = box.lows[1], box.highs[1]
    regions: list[Rect] = []
    for row in range(rows):
        cols = base_cols + (1 if row < extra else 0)
        row_low = y0 + (y1 - y0) * row / rows
        row_high = y0 + (y1 - y0) * (row + 1) / rows if row + 1 < rows else y1
        x0, x1 = box.lows[0], box.highs[0]
        for col in range(cols):
            col_low = x0 + (x1 - x0) * col / cols
            col_high = x0 + (x1 - x0) * (col + 1) / cols if col + 1 < cols else x1
            regions.append(Rect((col_low, row_low), (col_high, row_high)))
    return regions


def split_region(
    region: Rect, points: Sequence[tuple[float, float]]
) -> tuple[Rect, Rect]:
    """Split one shard region into two balanced successor cells.

    The live-reshard primitive (:mod:`repro.cluster.reshard`): the cut
    is the same wider-axis median split :func:`plan_shards` uses, so a
    grown-and-split plan routes like a freshly planned one.  The two
    cells tile ``region`` exactly; every point of ``points`` inside
    ``region`` lands in exactly one successor (boundary points route to
    the first, matching :meth:`ShardPlan.route`).
    """
    low_region, high_region = _kd_regions(region, list(points), 2)
    return low_region, high_region


def plan_shards(
    points: Sequence[tuple[float, float]],
    num_shards: int,
    method: str = "kd",
    world: Rect | None = None,
) -> ShardPlan:
    """Plan ``num_shards`` regions over ``points``.

    The regions tile the points' bounding box (``world`` is only the
    fallback box when ``points`` is empty).  ``method`` is ``"kd"``
    (balanced median splits, the default) or ``"grid"`` (uniform
    tiling).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1, got %r" % (num_shards,))
    if method not in PLAN_METHODS:
        raise ValueError(
            "unknown planning method %r (choose from %s)"
            % (method, ", ".join(PLAN_METHODS))
        )
    box = _bounding_box(points, world)
    if method == "grid":
        regions = _grid_regions(box, num_shards)
    else:
        regions = _kd_regions(box, list(points), num_shards)
    return ShardPlan(regions, method=method)
