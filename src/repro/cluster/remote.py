"""The remote coordinator: scatter-gather kNNTA over worker processes.

:class:`RemoteClusterTree` is the out-of-process twin of
:class:`~repro.cluster.coordinator.ClusterTree`: the same best-bound-
first scatter-gather, the same degradation certificate, the same
routed-mutation surface — but every shard lives in its own worker
process (:mod:`repro.cluster.workers`) and the coordinator holds only
:class:`~repro.cluster.resilience.ShardDescriptor` s plus one
JSON-lines socket per worker.  Answers are bit-identical to the single
tree's: the cluster-level normaliser is computed here from the merged
descriptor maxima (exactly the single tree's view) and pushed down the
wire as ``[d_max, g_max]`` — JSON floats round-trip exactly — and the
merge key ``(score, shard index, within-shard rank)`` is the same
deterministic tie-break the in-process coordinator uses.

Fault semantics are PR 6's, reinterpreted over a connection: a socket
timeout is a :class:`~repro.cluster.resilience.ShardCallTimeout`, a
refused/reset/closed connection a :class:`~repro.reliability.faults
.TransientIOError` (retried for reads, never for mutations), and each
worker sits behind its own :class:`~repro.cluster.resilience
.ShardGuard` circuit breaker.  A killed worker therefore yields an
exact answer (when the descriptor bound certifies it irrelevant), an
explicit :class:`~repro.cluster.resilience.DegradedAnswer`, or a
:class:`~repro.cluster.resilience.ClusterDegradedError` — never a
hang; :meth:`RemoteClusterTree.recover_worker` respawns the process
(worker startup *is* snapshot + WAL recovery) and readmits it.

Locking: the ``routing`` read-write lock guards the routing table
(plan, worker list, guards, descriptors).  Queries and mutations hold
the read side; a live reshard (:mod:`repro.cluster.reshard`) takes the
write side for its drain-and-cutover — acquiring it *is* the mutation
quiesce.  Each :class:`WorkerClient` frames one request/response pair
at a time under its own ``conn`` mutex.
"""

from __future__ import annotations

import json
import os
import socket
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Mapping, Sequence, cast

from repro.cluster.coordinator import ClusterStateError
from repro.cluster.planner import ShardPlan
from repro.cluster.resilience import (
    CALLER,
    CLOSED,
    CallToken,
    ClusterDegradedError,
    DegradedAnswer,
    ResilienceConfig,
    ShardCallTimeout,
    ShardDescriptor,
    ShardGuard,
    ShardHealthEvent,
    classify_error,
)
from repro.cluster.state import (
    check_reshard_consistency,
    manifest_payload,
    read_manifest,
    write_manifest_payload,
)
from repro.cluster.workers import WorkerHandle
from repro.core.query import KNNTAQuery, Normalizer, QueryResult, RankedAnswer
from repro.core.tar_tree import POI
from repro.devtools.lockmodel import CONN, COUNTER, RECOVERY, ROUTING
from repro.devtools.watchdog import monitored_lock
from repro.reliability.faults import TransientIOError
from repro.service.locks import ReadWriteLock
from repro.service.server import PROTO_VERSION
from repro.spatial.geometry import Rect
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock, TimeInterval
from repro.temporal.tia import AggregateKind, IntervalSemantics

__all__ = [
    "RemoteClusterTree",
    "RemoteShard",
    "WireProtocolError",
    "WorkerClient",
]


class WireProtocolError(RuntimeError):
    """The peer speaks a different wire-protocol version.

    Classified *fatal* by :func:`~repro.cluster.resilience
    .classify_error` (a RuntimeError): no amount of retrying fixes a
    version skew, so the breaker opens immediately.
    """


class WorkerClient:
    """One framed JSON-lines connection to a shard worker.

    Lazily connects on first :meth:`request` (validating the wire
    protocol via the ``hello`` exchange) and frames exactly one
    request/response pair at a time under the ``conn`` mutex.  Every
    transport-level failure drops the connection — the stream may be
    desynchronised mid-frame — so the next request reconnects cleanly;
    a restarted worker on the same announce file is picked up the same
    way.

    Error mapping (what the guard's classifier sees):

    * socket timeout → :class:`~repro.cluster.resilience
      .ShardCallTimeout` (transient, never retried inline);
    * refused / reset / EOF / undecodable frame →
      :class:`~repro.reliability.faults.TransientIOError`;
    * a ``bad-request`` response → ``ValueError`` (caller error — the
      worker is healthy, the request was wrong);
    * a ``proto-mismatch`` response (either direction) →
      :class:`WireProtocolError` (fatal);
    * any other error response → ``RuntimeError`` (fatal).
    """

    def __init__(
        self,
        host: str,
        port: int,
        index: int = -1,
        connect_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.index = index
        self.connect_timeout = connect_timeout
        #: The worker's ``hello`` payload once connected (descriptor,
        #: applied LSN, world/clock identity, pid).
        self.hello: dict[str, Any] | None = None
        self._lock = monitored_lock(CONN)
        self._sock: socket.socket | None = None
        self._rfile: Any = None

    # -- connection management -----------------------------------------

    def _connect_locked(self, timeout: float | None) -> None:
        budget = timeout if timeout is not None else self.connect_timeout
        sock = socket.create_connection((self.host, self.port), timeout=budget)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self.hello = self._check(self._exchange_locked({"op": "hello"}, budget))

    def _drop_locked(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _abandon(self) -> None:
        with self._lock:
            self._drop_locked()

    def close(self) -> None:
        """Drop the connection (idempotent; the worker keeps running)."""
        self._abandon()

    def connect(self, timeout: float | None = None) -> dict[str, Any]:
        """Connect eagerly; returns the worker's ``hello`` payload."""
        response = self.request({"op": "hello"}, timeout=timeout)
        self.hello = response
        return response

    # -- the framed exchange -------------------------------------------

    def _exchange_locked(
        self, payload: dict[str, Any], timeout: float | None
    ) -> dict[str, Any]:
        frame = dict(payload)
        frame.setdefault("proto", PROTO_VERSION)
        sock = self._sock
        if sock is None:
            raise TransientIOError(
                "worker %s:%d connection dropped before the exchange"
                % (self.host, self.port)
            )
        sock.settimeout(timeout)
        sock.sendall((json.dumps(frame) + "\n").encode("utf-8"))
        line = self._rfile.readline()
        if not line:
            raise TransientIOError(
                "worker %s:%d closed the connection" % (self.host, self.port)
            )
        try:
            response = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise TransientIOError(
                "undecodable frame from worker %s:%d: %s"
                % (self.host, self.port, exc)
            ) from exc
        if not isinstance(response, dict):
            raise TransientIOError(
                "non-object frame from worker %s:%d" % (self.host, self.port)
            )
        return response

    def _check(self, response: dict[str, Any]) -> dict[str, Any]:
        announced = response.get("proto", PROTO_VERSION)
        if announced != PROTO_VERSION or response.get("code") == "proto-mismatch":
            raise WireProtocolError(
                "worker %s:%d speaks wire protocol %r but this coordinator "
                "speaks %r" % (self.host, self.port, announced, PROTO_VERSION)
            )
        if response.get("ok"):
            return response
        code = response.get("code")
        message = str(response.get("error", "unknown worker error"))
        if code == "bad-request":
            raise ValueError(message)
        raise RuntimeError(
            "worker %s:%d error (%s): %s" % (self.host, self.port, code, message)
        )

    def request(
        self, payload: dict[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """Send one request and return its validated response."""
        try:
            with self._lock:
                if self._sock is None:
                    self._connect_locked(timeout)
                response = self._exchange_locked(payload, timeout)
        except WireProtocolError:
            self._abandon()
            raise
        except TimeoutError as exc:
            self._abandon()
            raise ShardCallTimeout(
                self.index,
                "worker.%d.request" % self.index,
                "no reply from %s:%d within %rs"
                % (self.host, self.port, timeout),
            ) from exc
        except TransientIOError:
            self._abandon()
            raise
        except OSError as exc:
            self._abandon()
            raise TransientIOError(
                "worker %s:%d connection failed: %s" % (self.host, self.port, exc)
            ) from exc
        return self._check(response)

    def __repr__(self) -> str:
        return "WorkerClient(%s:%d, %s)" % (
            self.host,
            self.port,
            "connected" if self._sock is not None else "idle",
        )


class RemoteShard:
    """One worker process as the coordinator sees it: endpoint + cache.

    Holds no tree — only the connection, the (optional) process handle,
    and the last state the worker reported: applied LSN, clock time and
    the manifest LSN of the last cluster checkpoint (for lag).
    """

    __slots__ = (
        "index",
        "region",
        "dirname",
        "client",
        "handle",
        "applied_lsn",
        "current_time",
        "manifest_lsn",
    )

    def __init__(
        self,
        index: int,
        region: Rect,
        dirname: str,
        client: WorkerClient,
        handle: WorkerHandle | None = None,
        manifest_lsn: int | None = None,
    ) -> None:
        self.index = index
        self.region = region
        self.dirname = dirname
        self.client = client
        self.handle = handle
        self.applied_lsn: int | None = None
        self.current_time: float | None = None
        self.manifest_lsn = manifest_lsn

    def __repr__(self) -> str:
        return "RemoteShard(%d, %s, %s:%d)" % (
            self.index,
            self.dirname,
            self.client.host,
            self.client.port,
        )


def _interval_pair(interval: TimeInterval) -> list[float]:
    return [interval.start, interval.end]


class RemoteClusterTree:
    """Scatter-gather kNNTA over out-of-process shard workers.

    Exposes the coordinator surface (``query`` / ``query_batch`` /
    ``insert_poi`` / ``delete_poi`` / ``digest_epoch`` / ``normalizer``
    / ``checkpoint`` / ``scrub_tick`` / ``health`` / ``counters``), so
    a :class:`~repro.service.QueryService` serves it unchanged.  Build
    one with :meth:`start`, which spawns one worker process per
    manifest shard directory and connects to each.

    ``parallelism`` defaults to the worker count — dispatching shard
    searches concurrently is the entire point of paying the process
    boundary — and 1 degenerates to the deterministic sequential
    best-bound-first walk.
    """

    #: Duck-typing marker the service layer keys on.
    is_cluster = True
    #: Standing subscriptions evaluate against in-heap trees; a remote
    #: coordinator has none, and the service refuses the op up front.
    supports_subscriptions = False

    def __init__(
        self,
        plan: ShardPlan,
        shards: Sequence[RemoteShard],
        directory: str,
        name: str = "cluster",
        parallelism: int | None = None,
        resilience: ResilienceConfig | None = None,
        allow_degraded: bool = False,
        request_timeout: float | None = 30.0,
        plan_epoch: int = 0,
        next_dir: int | None = None,
        reshard_policy: Any = None,
    ) -> None:
        if len(shards) != len(plan):
            raise ValueError(
                "plan has %d regions but %d shards were given"
                % (len(plan), len(shards))
            )
        self.plan = plan
        self.shards = list(shards)
        self.directory = directory
        self.name = name
        self.parallelism = (
            len(self.shards) if parallelism is None else parallelism
        )
        if self.parallelism < 1:
            raise ValueError(
                "parallelism must be >= 1, got %r" % (self.parallelism,)
            )
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self.allow_degraded = allow_degraded
        self.request_timeout = request_timeout
        self.plan_epoch = plan_epoch
        self.next_dir = len(self.shards) if next_dir is None else next_dir
        self.reshard_policy = reshard_policy
        first = self.shards[0].client.hello
        if first is None:
            raise ValueError(
                "shard worker clients must be connected (hello exchanged) "
                "before constructing the coordinator"
            )
        world = first["world"]
        self.world = Rect(tuple(world[0]), tuple(world[1]))
        clock_t0, clock_length = first["clock"]
        self.clock = EpochClock(float(clock_t0), float(clock_length))
        self.aggregate_kind = AggregateKind(first["aggregate_kind"])
        #: Surface parity with the in-process coordinator; node and TIA
        #: accesses accrue worker-side, so this stays empty by design.
        self.stats = AccessStats()
        self.queries = 0
        self.shards_visited = 0
        self.shards_pruned = 0
        self.routing_overflows = 0
        self.shards_failed = 0
        self.certified_exact = 0
        self.degraded_answers = 0
        self.recoveries = 0
        self.reshards = 0
        self.health_events: deque[ShardHealthEvent] = deque(maxlen=256)
        self._health_observers: list[Callable[[ShardHealthEvent], None]] = []
        self._guards = [
            ShardGuard(shard.index, self.resilience, on_event=self._note_health)
            for shard in self.shards
        ]
        self._descriptors = [ShardDescriptor() for _ in self.shards]
        self._routing = ReadWriteLock(ROUTING)
        self._counter_lock = monitored_lock(COUNTER)
        self._recovery_lock = monitored_lock(RECOVERY)
        self._scrub_cursor = 0
        #: Exclusive-maintenance claim (taken under the counter lock):
        #: a live reshard holds it for its whole Phase A/B span — splits
        #: serialise without holding any lock across the expensive
        #: successor build — and :meth:`checkpoint` claims it too, so a
        #: checkpoint can never compact a source WAL mid-drain.
        self._resharding = False
        for shard in self.shards:
            hello = shard.client.hello
            if hello is not None:
                self._absorb_state(shard, hello)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def start(
        cls,
        directory: str,
        parallelism: int | None = None,
        resilience: ResilienceConfig | None = None,
        allow_degraded: bool = False,
        request_timeout: float | None = 30.0,
        reshard_policy: Any = None,
        spawn_timeout: float = 30.0,
    ) -> RemoteClusterTree:
        """Spawn one worker per manifest shard and connect to each.

        Reads ``directory``'s cluster manifest (refusing one rolled
        back across a committed reshard, exactly like the in-process
        open), spawns a :class:`~repro.cluster.workers.WorkerHandle`
        per shard state directory — each worker's startup is its own
        snapshot + WAL recovery — and verifies every worker recovered
        to *at least* its manifest LSN.  Any failure tears down every
        worker already spawned before re-raising.
        """
        payload = read_manifest(directory)
        check_reshard_consistency(directory, payload)
        plan = ShardPlan.from_json(payload["plan"])
        entries = payload["shards"]
        if len(entries) != len(plan):
            raise ClusterStateError(
                "cluster manifest lists %d shards but the plan has %d regions"
                % (len(entries), len(plan))
            )
        shards: list[RemoteShard] = []
        try:
            for index, entry in enumerate(entries):
                dirname = str(entry["dir"])
                shard_dir = os.path.join(directory, dirname)
                if not os.path.isdir(shard_dir):
                    raise ClusterStateError(
                        "cluster manifest names missing shard directory %s"
                        % shard_dir
                    )
                handle = WorkerHandle.spawn(shard_dir, timeout=spawn_timeout)
                client = WorkerClient(handle.host, handle.port, index=index)
                shard = RemoteShard(
                    index,
                    plan.regions[index],
                    dirname,
                    client,
                    handle,
                    manifest_lsn=entry.get("applied_lsn"),
                )
                shards.append(shard)
                hello = client.connect(timeout=request_timeout)
                recovered_lsn = hello.get("applied_lsn")
                manifest_lsn = entry.get("applied_lsn")
                if manifest_lsn is not None and (
                    recovered_lsn is None or recovered_lsn < manifest_lsn
                ):
                    raise ClusterStateError(
                        "shard %d recovered to LSN %r but the cluster "
                        "manifest recorded LSN %r — shard state is behind "
                        "its checkpoint" % (index, recovered_lsn, manifest_lsn)
                    )
        except Exception:
            for shard in shards:
                shard.client.close()
                if shard.handle is not None and shard.handle.alive:
                    shard.handle.terminate()
            raise
        return cls(
            plan,
            shards,
            directory=directory,
            name=str(payload.get("name", "cluster")),
            parallelism=parallelism,
            resilience=resilience,
            allow_degraded=allow_degraded,
            request_timeout=request_timeout,
            plan_epoch=int(payload.get("plan_epoch", 0)),
            next_dir=int(payload.get("next_dir", len(entries))),
            reshard_policy=reshard_policy,
        )

    # ------------------------------------------------------------------
    # Worker-state absorption (descriptor cache maintenance)
    # ------------------------------------------------------------------

    def _timeout(self) -> float | None:
        return self.request_timeout

    def _absorb_state(self, shard: RemoteShard, payload: Mapping[str, Any]) -> None:
        """Fold a worker's reported state into its descriptor cache.

        Guarded LSN-monotonic: concurrent responses for one shard may
        interleave, and an older footer must never roll the descriptor
        back over a newer one.
        """
        lsn = payload.get("applied_lsn")
        if (
            shard.applied_lsn is not None
            and lsn is not None
            and lsn < shard.applied_lsn
        ):
            return
        descriptor = self._descriptors[shard.index]
        wire = payload.get("descriptor")
        if wire is not None:
            mbr = wire.get("mbr")
            descriptor.mbr = (
                None if mbr is None else Rect(tuple(mbr[0]), tuple(mbr[1]))
            )
            descriptor.epoch_max = {
                int(epoch): int(value) for epoch, value in wire["epoch_max"]
            }
            descriptor.pois = int(wire["pois"])
            descriptor.fresh = True
        shard.applied_lsn = lsn
        time_value = payload.get("current_time")
        if time_value is not None:
            shard.current_time = float(time_value)

    def _refresh_descriptor_locked(self, shard: RemoteShard) -> None:
        """Guarded descriptor rebuild; a down worker keeps stale values."""

        def refresh(token: CallToken) -> None:
            response = shard.client.request(
                {"op": "hello"}, timeout=self._timeout()
            )
            self._absorb_state(shard, response)

        try:
            self._guards[shard.index].call("query", refresh)
        except Exception as exc:
            if classify_error(exc) == CALLER:
                raise

    # ------------------------------------------------------------------
    # Basic surface parity
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._routing.read_locked():
            return sum(
                self._descriptors[shard.index].pois for shard in self.shards
            )

    def __contains__(self, poi_id: object) -> bool:
        with self._routing.read_locked():
            return self._owner_of_locked(poi_id) is not None

    @property
    def current_time(self) -> float:
        """The most advanced worker clock (digests advance per shard)."""
        with self._routing.read_locked():
            times = [
                shard.current_time
                for shard in self.shards
                if shard.current_time is not None
            ]
        if not times:
            raise ClusterStateError("no worker has reported a clock yet")
        return max(times)

    def applied_lsns(self) -> list[int | None]:
        """Each worker's applied-LSN high-water mark, in shard order."""
        with self._routing.read_locked():
            return [shard.applied_lsn for shard in self.shards]

    def counters(self) -> dict[str, int]:
        """The coordinator's running totals (same keys as in-process,
        plus ``reshards``)."""
        with self._routing.read_locked():
            guards = list(self._guards)
            shard_count = len(self.shards)
        with self._counter_lock:
            counters = {
                "shards": shard_count,
                "queries": self.queries,
                "shards.visited": self.shards_visited,
                "shards.pruned": self.shards_pruned,
                "routing_overflows": self.routing_overflows,
                "shards.failed": self.shards_failed,
                "certified_exact": self.certified_exact,
                "degraded_answers": self.degraded_answers,
                "recoveries": self.recoveries,
                "reshards": self.reshards,
            }
        counters["breaker_opens"] = sum(guard.breaker.opens for guard in guards)
        counters["shards.down"] = sum(
            1 for guard in guards if guard.breaker.state != CLOSED
        )
        counters["shards.retries"] = sum(guard.retries for guard in guards)
        counters["shards.timeouts"] = sum(guard.timeouts for guard in guards)
        return counters

    def _owner_of_locked(self, poi_id: object) -> RemoteShard | None:
        """Probe every worker for ownership of ``poi_id``.

        A positive probe is decisive (POI ids are unique cluster-wide),
        so finding the owner returns even if another worker is down.
        But an unreachable worker might *be* the owner — concluding
        "absent" there would let a duplicate insert through or turn a
        delete of an indexed POI into a silent ``False`` — so when no
        reachable worker owns the POI and any probe failed, the first
        probe failure propagates instead (the in-process coordinator's
        ``_owner_of`` can never fault, and remote semantics must not
        silently diverge from it).
        """
        first_failure: Exception | None = None
        for shard in self.shards:
            guard = self._guards[shard.index]

            def probe(token: CallToken, shard: RemoteShard = shard) -> bool:
                response = shard.client.request(
                    {"op": "contains", "poi_id": poi_id}, timeout=self._timeout()
                )
                return bool(response.get("contains"))

            try:
                if guard.call("query", probe):
                    return shard
            except Exception as exc:
                if classify_error(exc) == CALLER:
                    raise
                if first_failure is None:
                    first_failure = exc
        if first_failure is not None:
            raise first_failure
        return None

    # ------------------------------------------------------------------
    # Health surface
    # ------------------------------------------------------------------

    def _note_health(self, event: ShardHealthEvent) -> None:
        self.health_events.append(event)
        for observer in list(self._health_observers):
            observer(event)

    def add_health_observer(
        self, observer: Callable[[ShardHealthEvent], None]
    ) -> None:
        """Register a callback invoked on every shard health event."""
        self._health_observers.append(observer)

    def remove_health_observer(
        self, observer: Callable[[ShardHealthEvent], None]
    ) -> None:
        self._health_observers.remove(observer)

    def health(self) -> dict[str, Any]:
        """Per-worker breaker/process state plus recent health events.

        Extends the in-process shape with the process facts: ``pid``,
        ``alive``, ``port``, ``applied_lsn`` and ``checkpoint_lag``
        (records applied since the manifest's checkpoint LSN).
        """
        shards: list[dict[str, Any]] = []
        with self._routing.read_locked():
            for shard in self.shards:
                snapshot = self._guards[shard.index].snapshot()
                descriptor = self._descriptors[shard.index]
                snapshot["shard"] = shard.index
                snapshot["pois"] = descriptor.pois
                snapshot["descriptor_fresh"] = descriptor.fresh
                snapshot["dir"] = shard.dirname
                handle = shard.handle
                snapshot["pid"] = None if handle is None else handle.pid
                snapshot["alive"] = None if handle is None else handle.alive
                snapshot["port"] = shard.client.port
                snapshot["applied_lsn"] = shard.applied_lsn
                if shard.applied_lsn is not None:
                    snapshot["checkpoint_lag"] = shard.applied_lsn - (
                        shard.manifest_lsn or 0
                    )
                else:
                    snapshot["checkpoint_lag"] = None
                shards.append(snapshot)
            plan_epoch = self.plan_epoch
        with self._counter_lock:
            recoveries = self.recoveries
            degraded = self.degraded_answers
            certified = self.certified_exact
            reshards = self.reshards
        return {
            "shards": shards,
            "recoveries": recoveries,
            "degraded_answers": degraded,
            "certified_exact": certified,
            "reshards": reshards,
            "plan_epoch": plan_epoch,
            "events": [event.as_dict() for event in list(self.health_events)],
        }

    # ------------------------------------------------------------------
    # Cluster-level normalisation (identical to the single tree's)
    # ------------------------------------------------------------------

    def _global_epoch_max_locked(self) -> dict[int, int]:
        merged: dict[int, int] = {}
        for shard in self.shards:
            descriptor = self._descriptors[shard.index]
            if not descriptor.fresh:
                self._refresh_descriptor_locked(shard)
            for epoch, value in descriptor.epoch_max.items():
                if value > merged.get(epoch, 0):
                    merged[epoch] = value
        return merged

    def global_epoch_max(self) -> dict[int, int]:
        """Per-epoch maxima over all workers — the single tree's view."""
        with self._routing.read_locked():
            return self._global_epoch_max_locked()

    def _max_aggregate_bound_locked(
        self, interval: TimeInterval, semantics: IntervalSemantics
    ) -> int:
        maxima = self._global_epoch_max_locked()
        epoch_range = self.clock.epoch_range(interval, semantics)
        values = (maxima.get(epoch, 0) for epoch in epoch_range)
        if self.aggregate_kind is AggregateKind.MAX:
            return max(values, default=0)
        return sum(values)

    def max_aggregate_bound(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
    ) -> int:
        """Upper bound on any POI's aggregate over ``interval``."""
        with self._routing.read_locked():
            return self._max_aggregate_bound_locked(interval, semantics)

    def _normalizer_locked(
        self, interval: TimeInterval, semantics: IntervalSemantics
    ) -> Normalizer:
        d_max = self.world.diagonal()
        g_max = self._max_aggregate_bound_locked(interval, semantics)
        return Normalizer.create(d_max, g_max)

    def normalizer(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        exact: bool = False,
    ) -> Normalizer:
        """The per-query normaliser every worker search must share."""
        if exact:
            raise ValueError(
                "a remote cluster serves only the bound normaliser; "
                "exact=True needs per-POI aggregates the coordinator "
                "deliberately does not hold"
            )
        with self._routing.read_locked():
            return self._normalizer_locked(interval, semantics)

    # ------------------------------------------------------------------
    # Scatter-gather query path
    # ------------------------------------------------------------------

    def _query_fields(
        self, query: KNNTAQuery, normalizer: Normalizer
    ) -> dict[str, Any]:
        return {
            "point": [query.point[0], query.point[1]],
            "interval": _interval_pair(query.interval),
            "k": query.k,
            "alpha0": query.alpha0,
            "semantics": query.semantics.value,
            "normalizer": [normalizer.d_max, normalizer.g_max],
        }

    def _query_worker(
        self, shard: RemoteShard, query: KNNTAQuery, normalizer: Normalizer
    ) -> list[QueryResult]:
        payload = dict(self._query_fields(query, normalizer))
        payload["op"] = "query"

        def dispatch(token: CallToken) -> list[QueryResult]:
            response = shard.client.request(payload, timeout=self._timeout())
            return [QueryResult(*row) for row in response["results"]]

        return cast(
            "list[QueryResult]",
            self._guards[shard.index].call("query", dispatch),
        )

    def _scatter_locked(
        self, query: KNNTAQuery, normalizer: Normalizer | None
    ) -> tuple[
        list[tuple[float, int, int, QueryResult]],
        list[int],
        int,
        dict[int, float],
        dict[int, float],
    ]:
        """Bound-pruned scatter-gather over workers (routing read held).

        Same contract as the in-process ``_scatter``: rows are
        ``(score, shard index, within-shard rank, result)`` sorted
        ascending, *missed* maps every failed shard to its bound and
        *blocking* the subset the degradation certificate cannot cover.
        """
        query.validate()
        if normalizer is None:
            normalizer = self._normalizer_locked(query.interval, query.semantics)
        push = normalizer
        shard_of = {shard.index: shard for shard in self.shards}
        bounds: list[tuple[float, int]] = []
        for shard in self.shards:
            descriptor = self._descriptors[shard.index]
            if not descriptor.fresh:
                self._refresh_descriptor_locked(shard)
            bound = descriptor.bound(query, push, self.clock, self.aggregate_kind)
            if bound is not None:
                bounds.append((bound, shard.index))
        bounds.sort()
        bound_of = dict((index, bound) for bound, index in bounds)
        rows: list[tuple[float, int, int, QueryResult]] = []
        visited: list[int] = []
        missed: dict[int, float] = {}
        pruned = 0

        def kth_score() -> float:
            return rows[query.k - 1][0] if len(rows) >= query.k else float("inf")

        def absorb(index: int, results: list[QueryResult]) -> None:
            visited.append(index)
            rows.extend(
                (result.score, index, position, result)
                for position, result in enumerate(results)
            )
            rows.sort(key=lambda row: (row[0], row[1], row[2]))

        if self.parallelism == 1:
            for position, (bound, index) in enumerate(bounds):
                if bound >= kth_score():
                    pruned = len(bounds) - position
                    break
                try:
                    results = self._query_worker(shard_of[index], query, push)
                except Exception as exc:
                    if classify_error(exc) == CALLER:
                        raise
                    missed[index] = bound
                    continue
                absorb(index, results)
        else:
            queue = deque(bounds)
            pending: dict[Future[list[QueryResult]], int] = {}
            with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                while queue or pending:
                    while queue and len(pending) < self.parallelism:
                        bound, index = queue[0]
                        if bound >= kth_score():
                            pruned += len(queue)
                            queue.clear()
                            break
                        queue.popleft()
                        pending[
                            pool.submit(
                                self._query_worker, shard_of[index], query, push
                            )
                        ] = index
                    if not pending:
                        break
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        try:
                            results = future.result()
                        except Exception as exc:
                            if classify_error(exc) == CALLER:
                                raise
                            missed[index] = bound_of[index]
                            continue
                        absorb(index, results)
        final_kth = kth_score()
        blocking = dict(
            (index, bound)
            for index, bound in missed.items()
            if len(rows) < query.k or bound < final_kth
        )
        with self._counter_lock:
            self.queries += 1
            self.shards_visited += len(visited)
            self.shards_pruned += pruned
            self.shards_failed += len(missed)
            if missed and not blocking:
                self.certified_exact += 1
        return rows, visited, pruned, missed, blocking

    def _resolve(
        self,
        results: list[QueryResult],
        blocking: Mapping[int, float],
        allow_degraded: bool | None,
        shard_count: int,
    ) -> RankedAnswer | DegradedAnswer:
        """Apply the degradation policy to one scatter-gather outcome."""
        if not blocking:
            return RankedAnswer(results)
        coverage = 1.0 - len(blocking) / float(shard_count)
        score_bound = min(blocking.values())
        missed = tuple(sorted(blocking))
        permitted = (
            self.allow_degraded if allow_degraded is None else allow_degraded
        )
        if not permitted:
            raise ClusterDegradedError(missed, coverage, score_bound)
        with self._counter_lock:
            self.degraded_answers += 1
        return DegradedAnswer(results, missed, coverage, score_bound)

    def query(
        self,
        query: KNNTAQuery,
        normalizer: Normalizer | None = None,
        stats: AccessStats | None = None,
        allow_degraded: bool | None = None,
    ) -> RankedAnswer | DegradedAnswer:
        """Answer ``query`` exactly over the worker fleet.

        Contacts only workers whose descriptor bound could still beat
        the running k-th score (best-bound-first, concurrently under
        ``parallelism``).  ``stats`` is accepted for surface parity but
        stays empty: node accesses happen worker-side.  Degradation
        semantics match the in-process coordinator exactly.
        """
        with self._routing.read_locked():
            rows, _visited, _pruned, _missed, blocking = self._scatter_locked(
                query, normalizer
            )
            shard_count = len(self.shards)
            top = [row[3] for row in rows[: query.k]]
        return self._resolve(top, blocking, allow_degraded, shard_count)

    def query_batch(
        self,
        queries: Sequence[KNNTAQuery],
        stats: AccessStats | None = None,
        allow_degraded: bool | None = None,
    ) -> list[RankedAnswer | DegradedAnswer]:
        """Answer a batch: one ``batch`` frame per worker, full merge.

        Every worker runs the whole batch under a single shard read
        lock (a consistent snapshot), with the cluster normalisers
        pushed down; merges are deterministic per query.  Batches visit
        all workers — the per-query bound does not compose across a
        batch — and a failed worker degrades per query, exactly like
        the in-process coordinator.
        """
        for query in queries:
            query.validate()
        with self._routing.read_locked():
            shard_count = len(self.shards)
            normalizers: dict[
                tuple[TimeInterval, IntervalSemantics], Normalizer
            ] = {}
            for query in queries:
                key = (query.interval, query.semantics)
                if key not in normalizers:
                    normalizers[key] = self._normalizer_locked(
                        query.interval, query.semantics
                    )
            riders = [
                self._query_fields(
                    query, normalizers[(query.interval, query.semantics)]
                )
                for query in queries
            ]
            outcomes = self._dispatch_batch(riders)
            merged: list[list[tuple[float, int, int, QueryResult]]] = [
                [] for _ in queries
            ]
            visited = 0
            failed: list[int] = []
            for shard in self.shards:
                outcome = outcomes[shard.index]
                if isinstance(outcome, Exception):
                    if classify_error(outcome) == CALLER:
                        raise outcome
                    failed.append(shard.index)
                    continue
                visited += 1
                for i, results in enumerate(outcome):
                    merged[i].extend(
                        (result.score, shard.index, position, result)
                        for position, result in enumerate(results)
                    )
            any_blocking = False
            resolved: list[tuple[list[QueryResult], dict[int, float]]] = []
            for query, rows in zip(queries, merged):
                rows.sort(key=lambda row: (row[0], row[1], row[2]))
                top = [row[3] for row in rows[: query.k]]
                blocking: dict[int, float] = {}
                if failed:
                    kth = (
                        rows[query.k - 1][0]
                        if len(rows) >= query.k
                        else float("inf")
                    )
                    key = (query.interval, query.semantics)
                    for index in failed:
                        bound = self._descriptors[index].bound(
                            query,
                            normalizers[key],
                            self.clock,
                            self.aggregate_kind,
                        )
                        if bound is None:
                            continue
                        if len(rows) < query.k or bound < kth:
                            blocking[index] = bound
                            any_blocking = True
                resolved.append((top, blocking))
        with self._counter_lock:
            self.queries += len(queries)
            self.shards_visited += visited
            self.shards_failed += len(failed)
            if failed and not any_blocking:
                self.certified_exact += 1
        answers: list[RankedAnswer | DegradedAnswer] = []
        for top, blocking in resolved:
            answers.append(
                self._resolve(top, blocking, allow_degraded, shard_count)
            )
        return answers

    def _dispatch_batch(
        self, riders: list[dict[str, Any]]
    ) -> dict[int, list[list[QueryResult]] | Exception]:
        """Send the batch to every worker; exceptions ride the map."""

        def run(shard: RemoteShard) -> list[list[QueryResult]]:
            def dispatch(token: CallToken) -> list[list[QueryResult]]:
                response = shard.client.request(
                    {"op": "batch", "queries": riders}, timeout=self._timeout()
                )
                return [
                    [QueryResult(*row) for row in rows]
                    for rows in response["results"]
                ]

            return cast(
                "list[list[QueryResult]]",
                self._guards[shard.index].call("query", dispatch),
            )

        outcomes: dict[int, list[list[QueryResult]] | Exception] = {}
        if self.parallelism == 1 or len(self.shards) == 1:
            for shard in self.shards:
                try:
                    outcomes[shard.index] = run(shard)
                except Exception as exc:
                    outcomes[shard.index] = exc
        else:
            with ThreadPoolExecutor(
                max_workers=min(self.parallelism, len(self.shards))
            ) as pool:
                futures = {
                    pool.submit(run, shard): shard.index
                    for shard in self.shards
                }
                for future, index in futures.items():
                    try:
                        outcomes[index] = future.result()
                    except Exception as exc:
                        outcomes[index] = exc
        return outcomes

    # ------------------------------------------------------------------
    # Routed mutations (over the wire, through each worker's WAL)
    # ------------------------------------------------------------------

    def insert_poi(
        self, poi: POI, epoch_aggregates: Mapping[int, int] | None = None
    ) -> int | None:
        """Insert ``poi`` on its owning worker; returns the WAL LSN."""
        with self._routing.read_locked():
            if not self.world.contains_point(poi.point):
                raise ValueError(
                    "POI %r lies outside the world %r" % (poi, self.world)
                )
            if self._owner_of_locked(poi.poi_id) is not None:
                raise ValueError("POI %r is already indexed" % (poi.poi_id,))
            index = self.plan.route(poi.point)
            if index is None:
                index = self.plan.nearest(poi.point)
                with self._counter_lock:
                    self.routing_overflows += 1
            shard = self.shards[index]
            descriptor = self._descriptors[index]
            payload = {
                "op": "insert",
                "poi_id": poi.poi_id,
                "point": [poi.point[0], poi.point[1]],
                "aggregates": sorted(
                    (int(epoch), int(value))
                    for epoch, value in (epoch_aggregates or {}).items()
                ),
            }

            def apply(token: CallToken) -> int | None:
                descriptor.fresh = False
                response = shard.client.request(payload, timeout=self._timeout())
                self._absorb_state(shard, response)
                return cast("int | None", response.get("lsn"))

            return cast(
                "int | None", self._guards[index].call("mutate", apply)
            )

    def delete_poi(self, poi_id: Any) -> bool:
        """Delete ``poi_id`` from its owning worker; ``True`` if indexed."""
        with self._routing.read_locked():
            shard = self._owner_of_locked(poi_id)
            if shard is None:
                return False
            target = shard
            descriptor = self._descriptors[target.index]

            def apply(token: CallToken) -> bool:
                descriptor.fresh = False
                response = target.client.request(
                    {"op": "delete", "poi_id": poi_id}, timeout=self._timeout()
                )
                self._absorb_state(target, response)
                return bool(response.get("deleted"))

            return cast(
                bool, self._guards[target.index].call("mutate", apply)
            )

    def digest_epoch(self, epoch_index: int, counts: Mapping[Any, int]) -> None:
        """Digest one epoch batch, routed per owning worker.

        Validated against the whole cluster first (an unknown POI with
        a positive count raises ``KeyError`` before any worker applies
        anything), then each worker gets its sub-batch through its WAL.
        """
        with self._routing.read_locked():
            routed: dict[int, dict[Any, int]] = {}
            for poi_id, delta in counts.items():
                if delta <= 0:
                    continue
                owner = self._owner_of_locked(poi_id)
                if owner is None:
                    raise KeyError(
                        "cannot digest check-ins for unknown POI %r" % (poi_id,)
                    )
                routed.setdefault(owner.index, {})[poi_id] = delta
            for index in sorted(routed):
                shard = self.shards[index]
                sub_batch = routed[index]
                descriptor = self._descriptors[index]

                def apply(
                    token: CallToken,
                    shard: RemoteShard = shard,
                    sub_batch: dict[Any, int] = sub_batch,
                    descriptor: ShardDescriptor = descriptor,
                ) -> None:
                    descriptor.fresh = False
                    response = shard.client.request(
                        {
                            "op": "digest",
                            "epoch": epoch_index,
                            "counts": list(sub_batch.items()),
                        },
                        timeout=self._timeout(),
                    )
                    self._absorb_state(shard, response)

                self._guards[index].call("mutate", apply)

    # ------------------------------------------------------------------
    # Durability and maintenance
    # ------------------------------------------------------------------

    def checkpoint(self) -> str:
        """Checkpoint every worker and rewrite the cluster manifest.

        Mutually exclusive with a live reshard: both claim the same
        exclusive-maintenance flag, so a checkpoint raises
        :class:`~repro.cluster.coordinator.ClusterStateError` while a
        split is in flight (and vice versa).  The routing write lock
        alone would not be enough — a split's Phase A runs lock-free,
        and a worker checkpoint interleaving there would compact the
        split's source WAL out from under its Phase B drain, silently
        losing the tail.  The body runs under the routing write lock:
        mutations hold the read side, so the per-worker snapshots and
        the manifest LSNs recorded for them form one consistent cluster
        checkpoint.  Worker requests here are deliberately direct — a
        retry/backoff sleep must never run under an exclusive lock.
        """
        with self._counter_lock:
            if self._resharding:
                raise ClusterStateError(
                    "a live reshard is in flight; checkpointing now would "
                    "compact the split's source WAL out from under its drain"
                )
            self._resharding = True
        try:
            with self._routing.write_locked():
                entries: list[tuple[str, Any]] = []
                for shard in self.shards:
                    response = shard.client.request(
                        {"op": "checkpoint"}, timeout=self._timeout()
                    )
                    shard.applied_lsn = response.get("applied_lsn")
                    shard.manifest_lsn = shard.applied_lsn
                    entries.append((shard.dirname, shard.applied_lsn))
                payload = manifest_payload(
                    self.name,
                    self.parallelism,
                    self.plan,
                    entries,
                    plan_epoch=self.plan_epoch,
                    next_dir=self.next_dir,
                )
                return write_manifest_payload(self.directory, payload)
        finally:
            with self._counter_lock:
                self._resharding = False

    def scrub_tick(self, budget: int | None = None) -> int:
        """One scrub tick on the next worker (round-robin).

        Doubles as the maintenance driver: a worker flagged
        ``needs_recovery`` gets respawned instead of scrubbed, and —
        when a reshard policy is attached — overload triggers a live
        split (:func:`repro.cluster.reshard.maybe_split`).
        """
        if self.reshard_policy is not None:
            from repro.cluster.reshard import maybe_split

            try:
                maybe_split(self)
            except Exception as exc:
                if classify_error(exc) == CALLER:
                    raise
        with self._counter_lock:
            cursor = self._scrub_cursor
            self._scrub_cursor += 1
        with self._routing.read_locked():
            shard = self.shards[cursor % len(self.shards)]
            guard = self._guards[shard.index]
        if guard.breaker.needs_recovery:
            try:
                self.recover_worker(shard.index)
            except Exception as exc:
                if classify_error(exc) == CALLER:
                    raise
            return 0

        def tick(token: CallToken) -> int:
            response = shard.client.request(
                {"op": "scrub", "budget": budget}, timeout=self._timeout()
            )
            return int(response.get("nodes_checked", 0))

        try:
            return cast(int, guard.call("scrub", tick))
        except Exception as exc:
            if classify_error(exc) == CALLER:
                raise
            return 0

    # ------------------------------------------------------------------
    # Online worker recovery (restart = snapshot + WAL replay)
    # ------------------------------------------------------------------

    def recover_worker(self, index: int) -> dict[str, Any]:
        """Respawn worker ``index`` and cut the coordinator over to it.

        The respawn runs through the guard as an ``"open"`` call (never
        breaker-rejected): terminate whatever process is left, spawn a
        fresh one over the same shard directory — its startup replays
        snapshot + WAL — and validate its hello.  The cutover itself
        (pure pointer swaps) happens under the recovery lock; the new
        worker must have recovered to at least the coordinator's last
        known applied LSN for this shard.  Afterwards the breaker is
        readmitted half-open.  Returns the new worker's hello payload.
        """
        with self._routing.read_locked():
            shard = self.shards[index]
            guard = self._guards[index]
        shard_dir = os.path.join(self.directory, shard.dirname)

        def reopen(token: CallToken) -> tuple[WorkerHandle, WorkerClient, dict[str, Any]]:
            old_handle = shard.handle
            if old_handle is not None and old_handle.alive:
                old_handle.terminate()
            shard.client.close()
            handle = WorkerHandle.spawn(shard_dir)
            client = WorkerClient(handle.host, handle.port, index=index)
            hello = client.connect(timeout=self._timeout())
            return handle, client, hello

        handle, client, hello = cast(
            "tuple[WorkerHandle, WorkerClient, dict[str, Any]]",
            guard.call("open", reopen),
        )
        stale: str | None = None
        with self._recovery_lock:
            old_lsn = shard.applied_lsn
            new_lsn = hello.get("applied_lsn")
            if old_lsn is not None and (new_lsn is None or new_lsn < old_lsn):
                stale = (
                    "shard %d worker recovered to LSN %r behind the "
                    "coordinator's LSN %r — refusing the cutover"
                    % (index, new_lsn, old_lsn)
                )
            else:
                shard.handle = handle
                shard.client = client
                self._absorb_state(shard, hello)
        if stale is not None:
            client.close()
            handle.terminate()
            raise ClusterStateError(stale)
        with self._counter_lock:
            self.recoveries += 1
        guard.readmit()
        return hello

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down (politely, then firmly) and close
        the guards' executors."""
        for shard in self.shards:
            try:
                shard.client.request({"op": "shutdown"}, timeout=5.0)
            except Exception:
                pass
            shard.client.close()
            if shard.handle is not None:
                shard.handle.join(timeout=5.0)
                if shard.handle.alive:
                    shard.handle.terminate()
        for guard in self._guards:
            guard.close()

    def __enter__(self) -> RemoteClusterTree:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return "RemoteClusterTree(%d workers, %s plan, epoch %d)" % (
            len(self.shards),
            self.plan.method,
            self.plan_epoch,
        )
