"""The cluster coordinator: scatter-gather kNNTA over spatial shards.

:class:`ClusterTree` fronts N :class:`Shard` s — each a full TAR-tree
over one region of a :class:`~repro.cluster.planner.ShardPlan` — behind
the same :class:`~repro.core.query.KNNTAQuery` surface a single
:class:`~repro.core.tar_tree.TARTree` exposes.  Three properties make
the distribution *exact* (the sharded answer equals the single-tree
answer, score for score):

1. Every shard tree is built over the **full** dataset world, so the
   spatial normalisation constant ``d_max`` (the world diagonal) is
   identical everywhere.
2. The cluster's aggregate normaliser ``g_max`` merges the per-epoch
   maxima **across** shards before combining over the query interval —
   exactly the bound the single tree's root maintains — and the one
   resulting :class:`~repro.core.query.Normalizer` is pushed down into
   every shard search.
3. Each shard's *best-possible score* is a true lower bound on any of
   its POIs' scores (Property 1 again: MINDIST under-estimates every
   distance, the shard's root aggregate bound over-estimates every
   aggregate), so once the running k-th result's score is at or below
   a shard's bound, that shard cannot contribute and is skipped —
   the threshold-style early termination of the scatter-gather.

Mutations route to the owning shard by the plan: when the shard carries
a :class:`~repro.reliability.recovery.CheckpointedIngest`, the mutation
rides that shard's WAL (write-ahead, crash-recoverable per shard);
standalone shards mutate their tree directly.  Every access holds the
owning shard's :class:`~repro.service.locks.ReadWriteLock` on the
correct side — queries shared, mutations exclusive — the same protocol
the service layer enforces (lint rules RT001/RT002 cover this module).
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence, cast

from repro.cluster.planner import ShardPlan, plan_shards
from repro.core.collective import CollectiveProcessor
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery, Normalizer, QueryResult
from repro.core.tar_tree import DEFAULT_EPOCH_LENGTH_DAYS, POI, TARTree
from repro.service.locks import ReadWriteLock
from repro.spatial.geometry import Rect
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock, TimeInterval
from repro.temporal.tia import AggregateKind, IntervalSemantics

if TYPE_CHECKING:
    from repro.core.grouping import GroupingStrategy
    from repro.datasets.generator import Dataset
    from repro.reliability.recovery import CheckpointedIngest
    from repro.service.scrubber import Scrubber
    from repro.spatial.rstar import Node

__all__ = ["ClusterStateError", "Shard", "ClusterTree"]


class ClusterStateError(RuntimeError):
    """A durable-state operation on a cluster that has none attached."""


class Shard:
    """One partition: a region, its TAR-tree, lock and optional WAL."""

    __slots__ = ("index", "region", "tree", "lock", "ingest", "scrubber")

    def __init__(
        self,
        index: int,
        region: Rect,
        tree: TARTree,
        ingest: CheckpointedIngest | None = None,
    ) -> None:
        self.index = index
        self.region = region
        self.tree = tree
        self.lock = ReadWriteLock()
        self.ingest = ingest
        self.scrubber: Scrubber | None = None

    def __repr__(self) -> str:
        return "Shard(%d, %d POIs, wal=%s)" % (
            self.index,
            len(self.tree),
            "attached" if self.ingest is not None else "none",
        )


class _ShardView:
    """Duck-typed shard-tree view used during scatter-gather.

    Routes ``record_node_access`` into a per-call private
    :class:`~repro.storage.stats.AccessStats` (so concurrent queries
    attribute node accesses exactly, as the service's batch view does)
    and overrides ``normalizer`` to hand back the *cluster-level*
    normaliser — a shard computing its own would use shard-local
    per-epoch maxima and break cross-shard score comparability.
    Everything else resolves on the wrapped tree.  TIA page accesses
    stay on the shard tree's own stats, as they do for service batches.
    """

    __slots__ = ("_tree", "stats", "_normalizers")

    def __init__(
        self,
        tree: TARTree,
        stats: AccessStats,
        normalizers: Mapping[tuple[TimeInterval, IntervalSemantics], Normalizer]
        | None = None,
    ) -> None:
        self._tree = tree
        self.stats = stats
        self._normalizers = normalizers

    def __getattr__(self, name: str) -> Any:
        return getattr(self._tree, name)

    def record_node_access(self, node: Node) -> None:
        self.stats.record_node(node.is_leaf)

    def normalizer(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        exact: bool = False,
    ) -> Normalizer:
        if self._normalizers is None:
            return self._tree.normalizer(interval, semantics, exact)
        return self._normalizers[(interval, semantics)]


class ClusterTree:
    """Scatter-gather kNNTA over spatially sharded TAR-trees.

    Exposes the single-tree query/mutation surface (``query``,
    ``insert_poi``, ``delete_poi``, ``digest_epoch``, ``normalizer``,
    ``current_time``, ``len``/``in``), so a
    :class:`~repro.service.QueryService` — or any other TARTree caller —
    can serve a cluster unchanged.  ``parallelism`` > 1 dispatches shard
    searches onto a thread pool, best-bound-first; the default of 1
    visits shards sequentially in bound order, which is deterministic
    and prunes identically.

    Running totals: ``queries``, ``shards_visited``, ``shards_pruned``
    (shards never dispatched because the k-th result already beat their
    bound) and ``routing_overflows`` (inserts outside every planned
    region, placed on the nearest shard).
    """

    #: Duck-typing marker the service layer keys on; a ClusterTree is
    #: deliberately never imported there (the cluster imports the
    #: service's lock, so the reverse import would cycle).
    is_cluster = True

    def __init__(
        self,
        plan: ShardPlan,
        shards: Sequence[Shard],
        parallelism: int = 1,
        directory: str | None = None,
        name: str = "cluster",
    ) -> None:
        if len(shards) != len(plan):
            raise ValueError(
                "plan has %d regions but %d shards were given"
                % (len(plan), len(shards))
            )
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1, got %r" % (parallelism,))
        self.plan = plan
        self.shards = list(shards)
        self.parallelism = parallelism
        self.directory = directory
        self.name = name
        first = self.shards[0].tree
        self.world = first.world
        self.clock = first.clock
        self.aggregate_kind = first.aggregate_kind
        #: Merged access totals across all cluster queries (the cluster
        #: analogue of ``TARTree.stats``; node accesses only — TIA page
        #: accesses accrue on each shard tree's own stats).
        self.stats = AccessStats()
        self.queries = 0
        self.shards_visited = 0
        self.shards_pruned = 0
        self.routing_overflows = 0
        self._counter_lock = threading.Lock()
        self._scrub_cursor = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        num_shards: int = 4,
        method: str = "kd",
        clock: EpochClock | None = None,
        epoch_length: float = DEFAULT_EPOCH_LENGTH_DAYS,
        strategy: str | GroupingStrategy = "integral3d",
        until_time: float | None = None,
        bulk: bool = False,
        parallelism: int = 1,
        **kwargs: Any,
    ) -> ClusterTree:
        """Plan shards over ``dataset`` and build one TAR-tree per shard.

        Mirrors :meth:`TARTree.build`: the effective POIs' check-in
        histories up to ``until_time`` are digested before placement.
        Every shard tree gets the dataset's full world (identical
        ``d_max``) and its own private
        :class:`~repro.storage.stats.AccessStats`.
        """
        if clock is None:
            clock = EpochClock(dataset.t0, epoch_length)
        current_time = dataset.tc if until_time is None else until_time
        poi_ids = dataset.effective_poi_ids()
        counts = dataset.epoch_counts(clock, poi_ids)
        positions: list[tuple[float, float]] = [
            (float(dataset.positions[poi_id][0]), float(dataset.positions[poi_id][1]))
            for poi_id in poi_ids
        ]
        plan = plan_shards(positions, num_shards, method=method, world=dataset.world)
        shards = [
            Shard(
                index,
                region,
                TARTree(
                    world=dataset.world,
                    clock=clock,
                    current_time=current_time,
                    strategy=strategy,
                    stats=AccessStats(),
                    **kwargs,
                ),
            )
            for index, region in enumerate(plan.regions)
        ]
        assignments: list[list[tuple[POI, dict[int, int]]]] = [
            [] for _ in plan.regions
        ]
        for poi_id, point in zip(poi_ids, positions):
            index = plan.route(point)
            if index is None:
                index = plan.nearest(point)
            assignments[index].append((POI(poi_id, *point), counts[poi_id]))
        for shard in shards:
            rows = assignments[shard.index]
            with shard.lock.write_locked():
                if shard.ingest is None:
                    if bulk:
                        shard.tree.bulk_load(rows)
                    else:
                        for poi, history in rows:
                            shard.tree.insert_poi(poi, history or None)
        return cls(plan, shards, parallelism=parallelism)

    # ------------------------------------------------------------------
    # Basic surface parity with TARTree
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard.tree) for shard in self.shards)

    def __contains__(self, poi_id: object) -> bool:
        return any(poi_id in shard.tree for shard in self.shards)

    @property
    def current_time(self) -> float:
        """The most advanced shard clock (digests advance per shard)."""
        return max(shard.tree.current_time for shard in self.shards)

    def poi(self, poi_id: Any) -> POI:
        """The registered :class:`~repro.core.tar_tree.POI`, any shard."""
        shard = self._owner_of(poi_id)
        if shard is None:
            raise KeyError(poi_id)
        return shard.tree.poi(poi_id)

    def poi_ids(self) -> list[Any]:
        """Every indexed POI id across all shards (shard order)."""
        ids: list[Any] = []
        for shard in self.shards:
            ids.extend(shard.tree.poi_ids())
        return ids

    def poi_tia(self, poi_id: Any) -> Any:
        """The POI's leaf TIA, wherever it is sharded."""
        shard = self._owner_of(poi_id)
        if shard is None:
            raise KeyError(poi_id)
        return shard.tree.poi_tia(poi_id)

    def tia_aggregate(
        self,
        tia: Any,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
    ) -> int:
        """Aggregate ``tia`` over ``interval`` (baseline-scan support).

        TIA aggregation is stateless with respect to the owning tree —
        any shard evaluates it identically — so the sequential-scan
        ground truth runs against a cluster unchanged.
        """
        return self.shards[0].tree.tia_aggregate(tia, interval, semantics)

    def node_count(self) -> int:
        return sum(shard.tree.node_count() for shard in self.shards)

    def counters(self) -> dict[str, int]:
        """The coordinator's running totals as a JSON-ready dict."""
        with self._counter_lock:
            return {
                "shards": len(self.shards),
                "queries": self.queries,
                "shards_visited": self.shards_visited,
                "shards_pruned": self.shards_pruned,
                "routing_overflows": self.routing_overflows,
            }

    def _owner_of(self, poi_id: Any) -> Shard | None:
        for shard in self.shards:
            if poi_id in shard.tree:
                return shard
        return None

    # ------------------------------------------------------------------
    # Cluster-level normalisation (identical to the single tree's)
    # ------------------------------------------------------------------

    def global_epoch_max(self) -> dict[int, int]:
        """Per-epoch maxima over *all* shards — the single tree's view."""
        merged: dict[int, int] = {}
        for shard in self.shards:
            for epoch, value in shard.tree.global_epoch_max().items():
                if value > merged.get(epoch, 0):
                    merged[epoch] = value
        return merged

    def max_aggregate_bound(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
    ) -> int:
        """Upper bound on any POI's aggregate over ``interval``, cluster-wide."""
        maxima = self.global_epoch_max()
        epoch_range = self.clock.epoch_range(interval, semantics)
        values = (maxima.get(epoch, 0) for epoch in epoch_range)
        if self.aggregate_kind is AggregateKind.MAX:
            return max(values, default=0)
        return sum(values)

    def normalizer(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        exact: bool = False,
    ) -> Normalizer:
        """The per-query normaliser every shard search must share."""
        d_max = self.world.diagonal()
        if exact:
            g_max = 0
            for shard in self.shards:
                for poi_id in shard.tree.poi_ids():
                    value = shard.tree.tia_aggregate(
                        shard.tree.poi_tia(poi_id), interval, semantics
                    )
                    if value > g_max:
                        g_max = value
        else:
            g_max = self.max_aggregate_bound(interval, semantics)
        return Normalizer.create(d_max, g_max)

    # ------------------------------------------------------------------
    # Scatter-gather query path
    # ------------------------------------------------------------------

    def query(
        self,
        query: KNNTAQuery,
        normalizer: Normalizer | None = None,
        stats: AccessStats | None = None,
    ) -> list[QueryResult]:
        """Answer ``query`` exactly; see the module docs for the bound.

        ``stats`` (when given) additionally receives the merged node
        accesses of this call, for per-request attribution.
        """
        rows, per_shard, _visited, _pruned = self._scatter(query, normalizer)
        for shard_stats in per_shard.values():
            self.stats.merge(shard_stats)
            if stats is not None:
                stats.merge(shard_stats)
        return [row[3] for row in rows[: query.k]]

    def explain(
        self, query: KNNTAQuery, normalizer: Normalizer | None = None
    ) -> tuple[list[QueryResult], dict[str, int]]:
        """Answer ``query`` and report a flat, diffable cost mapping.

        The mapping carries the merged access counters (the plain
        :meth:`AccessStats.as_dict` keys), per-shard counters under
        ``shards.<i>.*``, and the pruning outcome
        (``shards_visited`` / ``shards_pruned``).
        """
        rows, per_shard, visited, pruned = self._scatter(query, normalizer)
        cost: dict[str, int] = {
            "shards": len(self.shards),
            "shards_visited": len(visited),
            "shards_pruned": pruned,
        }
        total = AccessStats()
        for index in sorted(per_shard):
            shard_stats = per_shard[index]
            total.merge(shard_stats)
            cost.update(shard_stats.as_dict(label="shards.%d" % index))
        cost.update(total.as_dict())
        self.stats.merge(total)
        return [row[3] for row in rows[: query.k]], cost

    def query_batch(
        self,
        queries: Sequence[KNNTAQuery],
        stats: AccessStats | None = None,
    ) -> list[list[QueryResult]]:
        """Answer a collective batch: per-shard shared traversal, full merge.

        Every non-empty shard runs the batch through its own
        :class:`~repro.core.collective.CollectiveProcessor` (sharing
        node fetches and per-interval aggregates within the shard), with
        the cluster-level normalisers pushed down; per-query results
        merge deterministically.  Batches visit all shards — the
        per-query pruning bound does not compose across a whole batch.
        """
        for query in queries:
            query.validate()
        normalizers: dict[tuple[TimeInterval, IntervalSemantics], Normalizer] = {}
        for query in queries:
            key = (query.interval, query.semantics)
            if key not in normalizers:
                normalizers[key] = self.normalizer(query.interval, query.semantics)
        merged: list[list[tuple[float, int, int, QueryResult]]] = [
            [] for _ in queries
        ]
        batch_total = AccessStats()
        visited = 0
        for shard in self.shards:
            shard_stats = AccessStats()
            view = cast(
                TARTree, _ShardView(shard.tree, shard_stats, normalizers)
            )
            with shard.lock.read_locked():
                empty = not shard.tree.root.entries
                if not empty:
                    tia_before = shard.tree.stats.snapshot()
                    shard_lists = CollectiveProcessor(view).run(
                        queries, stats=shard_stats
                    )
                    shard_stats.merge(shard.tree.stats.diff(tia_before))
            if empty:
                continue
            visited += 1
            batch_total.merge(shard_stats)
            for i, results in enumerate(shard_lists):
                merged[i].extend(
                    (result.score, shard.index, position, result)
                    for position, result in enumerate(results)
                )
        self.stats.merge(batch_total)
        if stats is not None:
            stats.merge(batch_total)
        with self._counter_lock:
            self.queries += len(queries)
            self.shards_visited += visited
        answers: list[list[QueryResult]] = []
        for query, rows in zip(queries, merged):
            rows.sort(key=lambda row: (row[0], row[1], row[2]))
            answers.append([row[3] for row in rows[: query.k]])
        return answers

    # -- internals -----------------------------------------------------------

    def _shard_bound(
        self, shard: Shard, query: KNNTAQuery, normalizer: Normalizer
    ) -> float | None:
        """Best possible score of any POI in ``shard``; ``None`` if empty.

        MINDIST from the query point to the shard's root MBR bounds
        every POI distance from below; the shard's root-level aggregate
        bound (Property 1) bounds every aggregate from above — so this
        weighted sum under-estimates every shard POI's score.
        """
        with shard.lock.read_locked():
            entries = shard.tree.root.entries
            if not entries:
                return None
            mbr = Rect.union_all(entry.mbr for entry in entries)
            raw_aggregate = shard.tree.max_aggregate_bound(
                query.interval, query.semantics
            )
        distance, aggregate = normalizer.components(
            mbr.min_dist(query.point), raw_aggregate
        )
        return query.alpha0 * distance + query.alpha1 * (1.0 - aggregate)

    def _query_shard(
        self, index: int, query: KNNTAQuery, normalizer: Normalizer
    ) -> tuple[list[QueryResult], AccessStats]:
        shard = self.shards[index]
        shard_stats = AccessStats()
        view = cast(TARTree, _ShardView(shard.tree, shard_stats))
        with shard.lock.read_locked():
            # Node accesses route through the view; TIA page accesses
            # land on the shard tree's own stats, so diff them into the
            # per-call stats (approximate only under concurrent readers,
            # exactly as for service batches on a single tree).
            tia_before = shard.tree.stats.snapshot()
            results = knnta_search(view, query, normalizer=normalizer)
            shard_stats.merge(shard.tree.stats.diff(tia_before))
        return results, shard_stats

    def _scatter(
        self, query: KNNTAQuery, normalizer: Normalizer | None
    ) -> tuple[
        list[tuple[float, int, int, QueryResult]],
        dict[int, AccessStats],
        list[int],
        int,
    ]:
        """Run the bound-pruned scatter-gather; returns merged rows.

        Rows are ``(score, shard index, within-shard rank, result)``
        sorted ascending — ties (probability zero on continuous data)
        break toward the lower shard index, matching the deterministic
        batch merge.
        """
        query.validate()
        if normalizer is None:
            normalizer = self.normalizer(query.interval, query.semantics)
        bounds: list[tuple[float, int]] = []
        for shard in self.shards:
            bound = self._shard_bound(shard, query, normalizer)
            if bound is not None:
                bounds.append((bound, shard.index))
        bounds.sort()
        rows: list[tuple[float, int, int, QueryResult]] = []
        per_shard: dict[int, AccessStats] = {}
        visited: list[int] = []
        pruned = 0

        def kth_score() -> float:
            return rows[query.k - 1][0] if len(rows) >= query.k else float("inf")

        def absorb(index: int, answer: tuple[list[QueryResult], AccessStats]) -> None:
            results, shard_stats = answer
            visited.append(index)
            per_shard[index] = shard_stats
            rows.extend(
                (result.score, index, position, result)
                for position, result in enumerate(results)
            )
            rows.sort(key=lambda row: (row[0], row[1], row[2]))

        if self.parallelism == 1:
            for position, (bound, index) in enumerate(bounds):
                if bound >= kth_score():
                    pruned = len(bounds) - position
                    break
                absorb(index, self._query_shard(index, query, normalizer))
        else:
            queue = deque(bounds)
            pending: dict[Future[tuple[list[QueryResult], AccessStats]], int] = {}
            with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                while queue or pending:
                    while queue and len(pending) < self.parallelism:
                        bound, index = queue[0]
                        if bound >= kth_score():
                            pruned += len(queue)
                            queue.clear()
                            break
                        queue.popleft()
                        pending[
                            pool.submit(self._query_shard, index, query, normalizer)
                        ] = index
                    if not pending:
                        break
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        absorb(pending.pop(future), future.result())
        with self._counter_lock:
            self.queries += 1
            self.shards_visited += len(visited)
            self.shards_pruned += pruned
        return rows, per_shard, visited, pruned

    # ------------------------------------------------------------------
    # Routed mutations (per-shard lock + WAL)
    # ------------------------------------------------------------------

    def insert_poi(
        self, poi: POI, epoch_aggregates: Mapping[int, int] | None = None
    ) -> int | None:
        """Insert ``poi`` into its owning shard; returns the WAL LSN.

        Routing follows the plan; a point inside the world but outside
        every planned region falls back to the *nearest* region's shard
        and bumps ``routing_overflows``.  Returns ``None`` when the
        shard has no WAL attached.  Raises like the single tree on a
        duplicate id or an out-of-world point.
        """
        if not self.world.contains_point(poi.point):
            raise ValueError(
                "POI %r lies outside the world %r" % (poi, self.world)
            )
        if self._owner_of(poi.poi_id) is not None:
            raise ValueError("POI %r is already indexed" % (poi.poi_id,))
        index = self.plan.route(poi.point)
        if index is None:
            index = self.plan.nearest(poi.point)
            with self._counter_lock:
                self.routing_overflows += 1
        shard = self.shards[index]
        with shard.lock.write_locked():
            if shard.ingest is None:
                shard.tree.insert_poi(poi, epoch_aggregates)
                return None
            lsn = shard.ingest.insert(poi, epoch_aggregates)
            return cast("int | None", lsn)

    def delete_poi(self, poi_id: Any) -> bool:
        """Delete ``poi_id`` from its owning shard; ``True`` if indexed."""
        shard = self._owner_of(poi_id)
        if shard is None:
            return False
        with shard.lock.write_locked():
            if shard.ingest is None:
                return shard.tree.delete_poi(poi_id)
            return shard.ingest.delete(poi_id) is not None

    def digest_epoch(self, epoch_index: int, counts: Mapping[Any, int]) -> None:
        """Digest one epoch batch, routed per owning shard.

        The whole batch is validated against the cluster first (an
        unknown POI with a positive count raises ``KeyError`` before
        *any* shard applies anything), then each shard receives its
        sub-batch under its own write lock — through its WAL when one
        is attached.  Non-positive counts are dropped, matching both
        the single tree and the ingest semantics.
        """
        routed: dict[int, dict[Any, int]] = {}
        for poi_id, delta in counts.items():
            if delta <= 0:
                continue
            owner = self._owner_of(poi_id)
            if owner is None:
                raise KeyError(
                    "cannot digest check-ins for unknown POI %r" % (poi_id,)
                )
            routed.setdefault(owner.index, {})[poi_id] = delta
        for index in sorted(routed):
            shard = self.shards[index]
            sub_batch = routed[index]
            with shard.lock.write_locked():
                if shard.ingest is None:
                    shard.tree.digest_epoch(epoch_index, sub_batch)
                else:
                    shard.ingest.digest(epoch_index, sub_batch)

    # ------------------------------------------------------------------
    # Durability and maintenance
    # ------------------------------------------------------------------

    def applied_lsns(self) -> list[int | None]:
        """Each shard's applied-LSN high-water mark, in shard order."""
        return [shard.tree.applied_lsn for shard in self.shards]

    def checkpoint(self) -> str:
        """Checkpoint every shard and rewrite the cluster manifest.

        Each shard snapshot is taken under that shard's write lock;
        the manifest written afterwards records the per-shard applied
        LSNs of exactly these snapshots, tying them into one consistent
        cluster checkpoint.  Returns the manifest path.
        """
        from repro.cluster.state import write_manifest

        if self.directory is None:
            raise ClusterStateError(
                "this cluster has no durable state; create one with "
                "save_cluster() or open_cluster()"
            )
        for shard in self.shards:
            if shard.ingest is None:
                raise ClusterStateError(
                    "shard %d has no CheckpointedIngest attached" % shard.index
                )
            with shard.lock.write_locked():
                shard.ingest.checkpoint()
            if shard.scrubber is not None:
                shard.scrubber.persist_manifest()
        return write_manifest(self.directory, self)

    def scrub_tick(self, budget: int | None = None) -> int:
        """One bounded scrubber tick on the next shard (round-robin)."""
        with self._counter_lock:
            cursor = self._scrub_cursor
            self._scrub_cursor += 1
        shard = self.shards[cursor % len(self.shards)]
        return cast(int, self._shard_scrubber(shard).tick(budget))

    def _shard_scrubber(self, shard: Shard) -> Scrubber:
        if shard.scrubber is None:
            from repro.service.scrubber import Scrubber

            manifest_path = None
            if shard.ingest is not None:
                manifest_path = (
                    shard.ingest.snapshot_path.rsplit(".json", 1)[0] + ".scrub.json"
                )
            shard.scrubber = Scrubber(
                shard.tree, shard.lock, manifest_path=manifest_path
            )
            shard.tree.add_mutation_observer(shard.scrubber.observe_mutation)
        return shard.scrubber

    def close(self) -> None:
        """Detach shard scrubbers and close shard WALs (checkpoint first
        if the logs must stay minimal — closing never loses records)."""
        for shard in self.shards:
            if shard.scrubber is not None:
                shard.tree.remove_mutation_observer(shard.scrubber.observe_mutation)
                shard.scrubber.persist_manifest()
                shard.scrubber = None
            if shard.ingest is not None:
                shard.ingest.close()
                shard.ingest = None

    def __enter__(self) -> ClusterTree:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __repr__(self) -> str:
        return "ClusterTree(%d shards, %d POIs, %s plan%s)" % (
            len(self.shards),
            len(self),
            self.plan.method,
            ", durable" if self.directory is not None else "",
        )
