"""The cluster coordinator: scatter-gather kNNTA over spatial shards.

:class:`ClusterTree` fronts N :class:`Shard` s — each a full TAR-tree
over one region of a :class:`~repro.cluster.planner.ShardPlan` — behind
the same :class:`~repro.core.query.KNNTAQuery` surface a single
:class:`~repro.core.tar_tree.TARTree` exposes.  Three properties make
the distribution *exact* (the sharded answer equals the single-tree
answer, score for score):

1. Every shard tree is built over the **full** dataset world, so the
   spatial normalisation constant ``d_max`` (the world diagonal) is
   identical everywhere.
2. The cluster's aggregate normaliser ``g_max`` merges the per-epoch
   maxima **across** shards before combining over the query interval —
   exactly the bound the single tree's root maintains — and the one
   resulting :class:`~repro.core.query.Normalizer` is pushed down into
   every shard search.
3. Each shard's *best-possible score* is a true lower bound on any of
   its POIs' scores (Property 1 again: MINDIST under-estimates every
   distance, the shard's root aggregate bound over-estimates every
   aggregate), so once the running k-th result's score is at or below
   a shard's bound, that shard cannot contribute and is skipped —
   the threshold-style early termination of the scatter-gather.

Mutations route to the owning shard by the plan: when the shard carries
a :class:`~repro.reliability.recovery.CheckpointedIngest`, the mutation
rides that shard's WAL (write-ahead, crash-recoverable per shard);
standalone shards mutate their tree directly.  Every access holds the
owning shard's :class:`~repro.service.locks.ReadWriteLock` on the
correct side — queries shared, mutations exclusive — the same protocol
the service layer enforces (lint rules RT001/RT002 cover this module).

Every shard is additionally its own *fault domain*: dispatch, routed
mutations and scrub ticks cross a :class:`~repro.cluster.resilience
.ShardGuard` (per-shard timeout, seeded retry/backoff, circuit
breaker — lint rule RT007 enforces the crossing).  Queries that miss a
quarantined shard stay correct by construction: the coordinator keeps
a :class:`~repro.cluster.resilience.ShardDescriptor` per shard (root
MBR + epoch maxima, refreshed inside every guarded mutation), so a
down shard whose best-possible score cannot beat the running k-th
result is *certified* irrelevant and the answer is exact; otherwise
the answer is an explicit :class:`~repro.cluster.resilience
.DegradedAnswer` (under ``allow_degraded``) or a
:class:`~repro.cluster.resilience.ClusterDegradedError` — never a
hang, crash or silently wrong result.  Quarantined shards recover
*online* via :meth:`ClusterTree.recover_shard`.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence, cast

from repro.cluster.planner import ShardPlan, plan_shards
from repro.cluster.resilience import (
    CALLER,
    CLOSED,
    CallToken,
    ClusterDegradedError,
    DegradedAnswer,
    ResilienceConfig,
    ShardDescriptor,
    ShardGuard,
    ShardHealthEvent,
    classify_error,
)
from repro.core.collective import CollectiveProcessor
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery, Normalizer, QueryResult, RankedAnswer
from repro.core.tar_tree import DEFAULT_EPOCH_LENGTH_DAYS, POI, TARTree
from repro.devtools.lockmodel import COUNTER, RECOVERY, SHARD_RW
from repro.devtools.watchdog import monitored_lock
from repro.reliability.faults import FaultInjector
from repro.service.locks import ReadWriteLock
from repro.spatial.geometry import Rect
from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock, TimeInterval
from repro.temporal.tia import AggregateKind, IntervalSemantics

if TYPE_CHECKING:
    from repro.core.grouping import GroupingStrategy
    from repro.datasets.generator import Dataset
    from repro.reliability.recovery import CheckpointedIngest, RecoveryReport
    from repro.service.scrubber import Scrubber
    from repro.spatial.rstar import Node

__all__ = ["ClusterStateError", "Shard", "ClusterTree"]


class ClusterStateError(RuntimeError):
    """A durable-state operation on a cluster that has none attached."""


class Shard:
    """One partition: a region, its TAR-tree, lock and optional WAL."""

    __slots__ = ("index", "region", "tree", "lock", "ingest", "scrubber",
                 "dirname")

    def __init__(
        self,
        index: int,
        region: Rect,
        tree: TARTree,
        ingest: CheckpointedIngest | None = None,
        dirname: str | None = None,
    ) -> None:
        self.index = index
        self.region = region
        self.tree = tree
        self.lock = ReadWriteLock(SHARD_RW)
        self.ingest = ingest
        self.scrubber: Scrubber | None = None
        #: Shard state directory name inside the cluster directory.  A
        #: live reshard retires and mints directories, so post-reshard
        #: names need not be contiguous in the shard index.
        self.dirname = dirname if dirname is not None else "shard-%d" % index

    def __repr__(self) -> str:
        return "Shard(%d, %d POIs, wal=%s)" % (
            self.index,
            len(self.tree),
            "attached" if self.ingest is not None else "none",
        )


class _ShardView:
    """Duck-typed shard-tree view used during scatter-gather.

    Routes ``record_node_access`` into a per-call private
    :class:`~repro.storage.stats.AccessStats` (so concurrent queries
    attribute node accesses exactly, as the service's batch view does)
    and overrides ``normalizer`` to hand back the *cluster-level*
    normaliser — a shard computing its own would use shard-local
    per-epoch maxima and break cross-shard score comparability.
    Everything else resolves on the wrapped tree.  TIA page accesses
    stay on the shard tree's own stats, as they do for service batches.
    """

    __slots__ = ("_tree", "stats", "_normalizers")

    def __init__(
        self,
        tree: TARTree,
        stats: AccessStats,
        normalizers: Mapping[tuple[TimeInterval, IntervalSemantics], Normalizer]
        | None = None,
    ) -> None:
        self._tree = tree
        self.stats = stats
        self._normalizers = normalizers

    def __getattr__(self, name: str) -> Any:
        return getattr(self._tree, name)

    def record_node_access(self, node: Node) -> None:
        self.stats.record_node(node.is_leaf)

    def normalizer(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        exact: bool = False,
    ) -> Normalizer:
        if self._normalizers is None:
            return self._tree.normalizer(interval, semantics, exact)
        return self._normalizers[(interval, semantics)]


class ClusterTree:
    """Scatter-gather kNNTA over spatially sharded TAR-trees.

    Exposes the single-tree query/mutation surface (``query``,
    ``insert_poi``, ``delete_poi``, ``digest_epoch``, ``normalizer``,
    ``current_time``, ``len``/``in``), so a
    :class:`~repro.service.QueryService` — or any other TARTree caller —
    can serve a cluster unchanged.  ``parallelism`` > 1 dispatches shard
    searches onto a thread pool, best-bound-first; the default of 1
    visits shards sequentially in bound order, which is deterministic
    and prunes identically.

    Running totals: ``queries``, ``shards_visited``, ``shards_pruned``
    (shards never dispatched because the k-th result already beat their
    bound) and ``routing_overflows`` (inserts outside every planned
    region, placed on the nearest shard).
    """

    #: Duck-typing marker the service layer keys on; a ClusterTree is
    #: deliberately never imported there (the cluster imports the
    #: service's lock, so the reverse import would cycle).
    is_cluster = True

    def __init__(
        self,
        plan: ShardPlan,
        shards: Sequence[Shard],
        parallelism: int = 1,
        directory: str | None = None,
        name: str = "cluster",
        resilience: ResilienceConfig | None = None,
        injector: FaultInjector | None = None,
        allow_degraded: bool = False,
    ) -> None:
        if len(shards) != len(plan):
            raise ValueError(
                "plan has %d regions but %d shards were given"
                % (len(plan), len(shards))
            )
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1, got %r" % (parallelism,))
        self.plan = plan
        self.shards = list(shards)
        self.parallelism = parallelism
        self.directory = directory
        self.name = name
        #: Live-reshard generation of ``plan`` (0 = as originally
        #: saved) and the next free shard-directory ordinal; both ride
        #: in the manifest so recovery is reshard-consistent.
        self.plan_epoch = 0
        self.next_dir: int | None = None
        first = self.shards[0].tree
        self.world = first.world
        self.clock = first.clock
        self.aggregate_kind = first.aggregate_kind
        #: Merged access totals across all cluster queries (the cluster
        #: analogue of ``TARTree.stats``; node accesses only — TIA page
        #: accesses accrue on each shard tree's own stats).
        self.stats = AccessStats()
        self.queries = 0
        self.shards_visited = 0
        self.shards_pruned = 0
        self.routing_overflows = 0
        self.shards_failed = 0
        self.certified_exact = 0
        self.degraded_answers = 0
        self.recoveries = 0
        self._counter_lock = monitored_lock(COUNTER)
        self._scrub_cursor = 0
        # -- fault domains -------------------------------------------------
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.allow_degraded = allow_degraded
        self.injector = injector
        #: Recent :class:`ShardHealthEvent` s (bounded; newest last).
        self.health_events: deque[ShardHealthEvent] = deque(maxlen=256)
        self._health_observers: list[Callable[[ShardHealthEvent], None]] = []
        self._guards = [
            ShardGuard(
                shard.index,
                self.resilience,
                injector=injector,
                on_event=self._note_health,
            )
            for shard in self.shards
        ]
        self._descriptors = [ShardDescriptor() for _ in self.shards]
        self._recovery_lock = monitored_lock(RECOVERY)
        for shard in self.shards:
            with shard.lock.read_locked():
                self._descriptors[shard.index].refresh(shard.tree)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        num_shards: int = 4,
        method: str = "kd",
        clock: EpochClock | None = None,
        epoch_length: float = DEFAULT_EPOCH_LENGTH_DAYS,
        strategy: str | GroupingStrategy = "integral3d",
        until_time: float | None = None,
        bulk: bool = False,
        parallelism: int = 1,
        resilience: ResilienceConfig | None = None,
        injector: FaultInjector | None = None,
        allow_degraded: bool = False,
        **kwargs: Any,
    ) -> ClusterTree:
        """Plan shards over ``dataset`` and build one TAR-tree per shard.

        Mirrors :meth:`TARTree.build`: the effective POIs' check-in
        histories up to ``until_time`` are digested before placement.
        Every shard tree gets the dataset's full world (identical
        ``d_max``) and its own private
        :class:`~repro.storage.stats.AccessStats`.
        """
        if clock is None:
            clock = EpochClock(dataset.t0, epoch_length)
        current_time = dataset.tc if until_time is None else until_time
        poi_ids = dataset.effective_poi_ids()
        counts = dataset.epoch_counts(clock, poi_ids)
        positions: list[tuple[float, float]] = [
            (float(dataset.positions[poi_id][0]), float(dataset.positions[poi_id][1]))
            for poi_id in poi_ids
        ]
        plan = plan_shards(positions, num_shards, method=method, world=dataset.world)
        shards = [
            Shard(
                index,
                region,
                TARTree(
                    world=dataset.world,
                    clock=clock,
                    current_time=current_time,
                    strategy=strategy,
                    stats=AccessStats(),
                    **kwargs,
                ),
            )
            for index, region in enumerate(plan.regions)
        ]
        assignments: list[list[tuple[POI, dict[int, int]]]] = [
            [] for _ in plan.regions
        ]
        for poi_id, point in zip(poi_ids, positions):
            index = plan.route(point)
            if index is None:
                index = plan.nearest(point)
            assignments[index].append((POI(poi_id, *point), counts[poi_id]))
        cluster = cls(
            plan,
            shards,
            parallelism=parallelism,
            resilience=resilience,
            injector=injector,
            allow_degraded=allow_degraded,
        )
        for shard in shards:
            cluster._load_shard(shard, assignments[shard.index], bulk)
        return cluster

    def _load_shard(
        self,
        shard: Shard,
        rows: list[tuple[POI, dict[int, int]]],
        bulk: bool,
    ) -> None:
        """Guarded initial load of one shard (build time has no WAL)."""
        descriptor = self._descriptors[shard.index]

        def load(token: CallToken) -> None:
            with shard.lock.write_locked():
                descriptor.fresh = False
                if shard.ingest is None:
                    if bulk:
                        shard.tree.bulk_load(rows)
                    else:
                        for poi, history in rows:
                            shard.tree.insert_poi(poi, history or None)
                descriptor.refresh(shard.tree)

        self._guards[shard.index].call("mutate", load)

    # ------------------------------------------------------------------
    # Basic surface parity with TARTree
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard.tree) for shard in self.shards)

    def __contains__(self, poi_id: object) -> bool:
        return any(poi_id in shard.tree for shard in self.shards)

    @property
    def current_time(self) -> float:
        """The most advanced shard clock (digests advance per shard)."""
        return max(shard.tree.current_time for shard in self.shards)

    def poi(self, poi_id: Any) -> POI:
        """The registered :class:`~repro.core.tar_tree.POI`, any shard."""
        shard = self._owner_of(poi_id)
        if shard is None:
            raise KeyError(poi_id)
        return shard.tree.poi(poi_id)

    def poi_ids(self) -> list[Any]:
        """Every indexed POI id across all shards (shard order)."""
        ids: list[Any] = []
        for shard in self.shards:
            ids.extend(shard.tree.poi_ids())
        return ids

    def poi_tia(self, poi_id: Any) -> Any:
        """The POI's leaf TIA, wherever it is sharded."""
        shard = self._owner_of(poi_id)
        if shard is None:
            raise KeyError(poi_id)
        return shard.tree.poi_tia(poi_id)

    def tia_aggregate(
        self,
        tia: Any,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
    ) -> int:
        """Aggregate ``tia`` over ``interval`` (baseline-scan support).

        TIA aggregation is stateless with respect to the owning tree —
        any shard evaluates it identically — so the sequential-scan
        ground truth runs against a cluster unchanged.
        """
        return self.shards[0].tree.tia_aggregate(tia, interval, semantics)

    def node_count(self) -> int:
        return sum(shard.tree.node_count() for shard in self.shards)

    def counters(self) -> dict[str, int]:
        """The coordinator's running totals as a JSON-ready dict.

        Shard-scoped totals use the canonical dotted keys
        (``shards.visited``, ``shards.retries``, ...; same scheme as
        the per-shard ``shards.<i>.*`` blocks in :meth:`explain`).
        The pre-unification snake-case aliases are gone.
        """
        with self._counter_lock:
            counters = {
                "shards": len(self.shards),
                "queries": self.queries,
                "shards.visited": self.shards_visited,
                "shards.pruned": self.shards_pruned,
                "routing_overflows": self.routing_overflows,
                "shards.failed": self.shards_failed,
                "certified_exact": self.certified_exact,
                "degraded_answers": self.degraded_answers,
                "recoveries": self.recoveries,
            }
        counters["breaker_opens"] = sum(
            guard.breaker.opens for guard in self._guards
        )
        counters["shards.down"] = sum(
            1 for guard in self._guards if guard.breaker.state != CLOSED
        )
        counters["shards.retries"] = sum(guard.retries for guard in self._guards)
        counters["shards.timeouts"] = sum(guard.timeouts for guard in self._guards)
        return counters

    # ------------------------------------------------------------------
    # Health surface
    # ------------------------------------------------------------------

    def _note_health(self, event: ShardHealthEvent) -> None:
        self.health_events.append(event)
        for observer in list(self._health_observers):
            observer(event)

    def add_health_observer(
        self, observer: Callable[[ShardHealthEvent], None]
    ) -> None:
        """Register a callback invoked on every shard health event."""
        self._health_observers.append(observer)

    def remove_health_observer(
        self, observer: Callable[[ShardHealthEvent], None]
    ) -> None:
        self._health_observers.remove(observer)

    def health(self) -> dict[str, Any]:
        """Per-shard breaker/guard state plus recent health events."""
        shards = []
        for shard in self.shards:
            snapshot = self._guards[shard.index].snapshot()
            descriptor = self._descriptors[shard.index]
            snapshot["shard"] = shard.index
            snapshot["pois"] = descriptor.pois
            snapshot["descriptor_fresh"] = descriptor.fresh
            shards.append(snapshot)
        with self._counter_lock:
            recoveries = self.recoveries
            degraded = self.degraded_answers
            certified = self.certified_exact
        return {
            "shards": shards,
            "recoveries": recoveries,
            "degraded_answers": degraded,
            "certified_exact": certified,
            "events": [event.as_dict() for event in list(self.health_events)],
        }

    def _owner_of(self, poi_id: Any) -> Shard | None:
        for shard in self.shards:
            if poi_id in shard.tree:
                return shard
        return None

    # ------------------------------------------------------------------
    # Cluster-level normalisation (identical to the single tree's)
    # ------------------------------------------------------------------

    def global_epoch_max(self) -> dict[int, int]:
        """Per-epoch maxima over *all* shards — the single tree's view.

        Served from the per-shard descriptors, which every successful
        guarded mutation refreshes synchronously — so the query path
        never touches a shard tree for normalisation, and a *down*
        shard contributes its last consistent maxima instead of
        failing the whole cluster.
        """
        merged: dict[int, int] = {}
        for shard in self.shards:
            descriptor = self._descriptors[shard.index]
            if not descriptor.fresh:
                self._refresh_descriptor(shard)
            for epoch, value in descriptor.epoch_max.items():
                if value > merged.get(epoch, 0):
                    merged[epoch] = value
        return merged

    def _refresh_descriptor(self, shard: Shard) -> None:
        """Guarded descriptor rebuild; a down shard keeps stale values."""
        descriptor = self._descriptors[shard.index]

        def refresh(token: CallToken) -> None:
            with shard.lock.read_locked():
                descriptor.refresh(shard.tree)

        try:
            self._guards[shard.index].call("query", refresh)
        except Exception as exc:
            # The shard is unreachable: its last-known descriptor keeps
            # serving bounds (that is the whole point of the cache).
            if classify_error(exc) == CALLER:
                raise

    def max_aggregate_bound(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
    ) -> int:
        """Upper bound on any POI's aggregate over ``interval``, cluster-wide."""
        maxima = self.global_epoch_max()
        epoch_range = self.clock.epoch_range(interval, semantics)
        values = (maxima.get(epoch, 0) for epoch in epoch_range)
        if self.aggregate_kind is AggregateKind.MAX:
            return max(values, default=0)
        return sum(values)

    def normalizer(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics = IntervalSemantics.INTERSECTS,
        exact: bool = False,
    ) -> Normalizer:
        """The per-query normaliser every shard search must share."""
        d_max = self.world.diagonal()
        if exact:
            g_max = 0
            for shard in self.shards:
                for poi_id in shard.tree.poi_ids():
                    value = shard.tree.tia_aggregate(
                        shard.tree.poi_tia(poi_id), interval, semantics
                    )
                    if value > g_max:
                        g_max = value
        else:
            g_max = self.max_aggregate_bound(interval, semantics)
        return Normalizer.create(d_max, g_max)

    # ------------------------------------------------------------------
    # Scatter-gather query path
    # ------------------------------------------------------------------

    def query(
        self,
        query: KNNTAQuery,
        normalizer: Normalizer | None = None,
        stats: AccessStats | None = None,
        allow_degraded: bool | None = None,
    ) -> RankedAnswer | DegradedAnswer:
        """Answer ``query`` exactly; see the module docs for the bound.

        ``stats`` (when given) additionally receives the merged node
        accesses of this call, for per-request attribution.

        When a shard is down, the answer is still *exact* whenever the
        degradation certificate holds (the shard's best-possible score
        cannot beat the running k-th result).  Otherwise the call
        raises :class:`ClusterDegradedError` — or, under
        ``allow_degraded`` (argument, else the cluster default),
        returns a :class:`DegradedAnswer` carrying the coverage, the
        missed shard ids and the tight score bound.
        """
        rows, per_shard, _visited, _pruned, _missed, blocking = self._scatter(
            query, normalizer
        )
        for shard_stats in per_shard.values():
            self.stats.merge(shard_stats)
            if stats is not None:
                stats.merge(shard_stats)
        return self._resolve(
            [row[3] for row in rows[: query.k]], blocking, allow_degraded
        )

    def _resolve(
        self,
        results: list[QueryResult],
        blocking: Mapping[int, float],
        allow_degraded: bool | None,
    ) -> RankedAnswer | DegradedAnswer:
        """Apply the degradation policy to one scatter-gather outcome.

        Both branches return :class:`~repro.core.query.Answer` shapes:
        an exact outcome is a :class:`RankedAnswer`, a permitted
        partial one a :class:`DegradedAnswer`.
        """
        if not blocking:
            return RankedAnswer(results)
        coverage = 1.0 - len(blocking) / float(len(self.shards))
        score_bound = min(blocking.values())
        missed = tuple(sorted(blocking))
        permitted = (
            self.allow_degraded if allow_degraded is None else allow_degraded
        )
        if not permitted:
            raise ClusterDegradedError(missed, coverage, score_bound)
        with self._counter_lock:
            self.degraded_answers += 1
        return DegradedAnswer(results, missed, coverage, score_bound)

    def explain(
        self,
        query: KNNTAQuery,
        normalizer: Normalizer | None = None,
        allow_degraded: bool | None = None,
    ) -> tuple[RankedAnswer | DegradedAnswer, dict[str, int]]:
        """Answer ``query`` and report a flat, diffable cost mapping.

        The mapping carries the merged access counters (the plain
        :meth:`AccessStats.as_dict` keys), per-shard counters under
        ``shards.<i>.*``, the pruning outcome (``shards.visited`` /
        ``shards.pruned``) and the fault-domain outcome
        (``shards.failed`` — shards that errored out of the dispatch,
        ``shards.certified`` — failed shards proven irrelevant by the
        bound certificate, ``shards.down`` — breakers currently open).

        Coordinator-level keys use the same dot-separated scheme as the
        per-shard ``shards.<i>.*`` blocks (see
        :meth:`AccessStats.as_dict`).  The pre-unification snake-case
        spellings (``shards_visited``, ...) are no longer emitted.
        """
        rows, per_shard, visited, pruned, missed, blocking = self._scatter(
            query, normalizer
        )
        cost: dict[str, int] = {
            "shards": len(self.shards),
            "shards.visited": len(visited),
            "shards.pruned": pruned,
            "shards.failed": len(missed),
            "shards.certified": len(missed) - len(blocking),
            "shards.down": sum(
                1 for guard in self._guards if guard.breaker.state != CLOSED
            ),
        }
        total = AccessStats()
        for index in sorted(per_shard):
            shard_stats = per_shard[index]
            total.merge(shard_stats)
            cost.update(shard_stats.as_dict(label="shards.%d" % index))
        cost.update(total.as_dict())
        self.stats.merge(total)
        answer = self._resolve(
            [row[3] for row in rows[: query.k]], blocking, allow_degraded
        )
        return answer, cost

    def query_batch(
        self,
        queries: Sequence[KNNTAQuery],
        stats: AccessStats | None = None,
        allow_degraded: bool | None = None,
    ) -> list[RankedAnswer | DegradedAnswer]:
        """Answer a collective batch: per-shard shared traversal, full merge.

        Every non-empty shard runs the batch through its own
        :class:`~repro.core.collective.CollectiveProcessor` (sharing
        node fetches and per-interval aggregates within the shard), with
        the cluster-level normalisers pushed down; per-query results
        merge deterministically.  Batches visit all shards — the
        per-query pruning bound does not compose across a whole batch.

        A shard failing out of the dispatch degrades *per query*: each
        rider's answer is certified exact on its own bound (the missed
        shard's best-possible score for *that* query versus that
        query's k-th result) and only the riders the certificate cannot
        cover degrade (or raise, under the strict default).
        """
        for query in queries:
            query.validate()
        normalizers: dict[tuple[TimeInterval, IntervalSemantics], Normalizer] = {}
        for query in queries:
            key = (query.interval, query.semantics)
            if key not in normalizers:
                normalizers[key] = self.normalizer(query.interval, query.semantics)
        merged: list[list[tuple[float, int, int, QueryResult]]] = [
            [] for _ in queries
        ]
        batch_total = AccessStats()
        visited = 0
        failed: list[int] = []
        for shard in self.shards:
            try:
                outcome = self._batch_shard(shard, queries, normalizers)
            except Exception as exc:
                if classify_error(exc) == CALLER:
                    raise
                failed.append(shard.index)
                continue
            if outcome is None:
                continue
            shard_lists, shard_stats = outcome
            visited += 1
            batch_total.merge(shard_stats)
            for i, results in enumerate(shard_lists):
                merged[i].extend(
                    (result.score, shard.index, position, result)
                    for position, result in enumerate(results)
                )
        self.stats.merge(batch_total)
        if stats is not None:
            stats.merge(batch_total)
        any_blocking = False
        answers: list[RankedAnswer | DegradedAnswer] = []
        resolved: list[
            tuple[list[QueryResult], dict[int, float]]
        ] = []
        for query, rows in zip(queries, merged):
            rows.sort(key=lambda row: (row[0], row[1], row[2]))
            top = [row[3] for row in rows[: query.k]]
            blocking: dict[int, float] = {}
            if failed:
                kth = (
                    rows[query.k - 1][0]
                    if len(rows) >= query.k
                    else float("inf")
                )
                key = (query.interval, query.semantics)
                for index in failed:
                    bound = self._descriptors[index].bound(
                        query, normalizers[key], self.clock, self.aggregate_kind
                    )
                    if bound is None:
                        continue
                    if len(rows) < query.k or bound < kth:
                        blocking[index] = bound
                        any_blocking = True
            resolved.append((top, blocking))
        with self._counter_lock:
            self.queries += len(queries)
            self.shards_visited += visited
            self.shards_failed += len(failed)
            if failed and not any_blocking:
                self.certified_exact += 1
        for top, blocking in resolved:
            answers.append(self._resolve(top, blocking, allow_degraded))
        return answers

    def _batch_shard(
        self,
        shard: Shard,
        queries: Sequence[KNNTAQuery],
        normalizers: Mapping[tuple[TimeInterval, IntervalSemantics], Normalizer],
    ) -> tuple[list[list[QueryResult]], AccessStats] | None:
        """Guarded collective run on one shard; ``None`` if it is empty."""

        def dispatch(
            token: CallToken,
        ) -> tuple[list[list[QueryResult]], AccessStats] | None:
            shard_stats = AccessStats()
            view = cast(
                TARTree, _ShardView(shard.tree, shard_stats, normalizers)
            )
            with shard.lock.read_locked():
                token.check()
                if not shard.tree.root.entries:
                    return None
                tia_before = shard.tree.stats.snapshot()
                shard_lists = CollectiveProcessor(view).run(
                    queries, stats=shard_stats
                )
                shard_stats.merge(shard.tree.stats.diff(tia_before))
            return shard_lists, shard_stats

        return cast(
            "tuple[list[list[QueryResult]], AccessStats] | None",
            self._guards[shard.index].call("query", dispatch),
        )

    # -- internals -----------------------------------------------------------

    def _shard_bound(
        self, shard: Shard, query: KNNTAQuery, normalizer: Normalizer
    ) -> float | None:
        """Best possible score of any POI in ``shard``; ``None`` if empty.

        MINDIST from the query point to the shard's root MBR bounds
        every POI distance from below; the shard's root-level aggregate
        bound (Property 1) bounds every aggregate from above — so this
        weighted sum under-estimates every shard POI's score.  Served
        from the shard's descriptor (refreshed inside every guarded
        mutation), so computing it never touches the shard tree — a
        down shard's *last consistent* bound is exactly what the
        degradation certificate needs.
        """
        descriptor = self._descriptors[shard.index]
        if not descriptor.fresh:
            self._refresh_descriptor(shard)
        return descriptor.bound(
            query, normalizer, self.clock, self.aggregate_kind
        )

    def _query_shard(
        self, index: int, query: KNNTAQuery, normalizer: Normalizer
    ) -> tuple[list[QueryResult], AccessStats]:
        shard = self.shards[index]

        def dispatch(
            token: CallToken,
        ) -> tuple[list[QueryResult], AccessStats]:
            shard_stats = AccessStats()
            view = cast(TARTree, _ShardView(shard.tree, shard_stats))
            with shard.lock.read_locked():
                token.check()
                # Node accesses route through the view; TIA page accesses
                # land on the shard tree's own stats, so diff them into
                # the per-call stats (approximate only under concurrent
                # readers, exactly as for service batches on one tree).
                tia_before = shard.tree.stats.snapshot()
                results = knnta_search(view, query, normalizer=normalizer)
                shard_stats.merge(shard.tree.stats.diff(tia_before))
            return results, shard_stats

        return cast(
            "tuple[list[QueryResult], AccessStats]",
            self._guards[index].call("query", dispatch),
        )

    def _scatter(
        self, query: KNNTAQuery, normalizer: Normalizer | None
    ) -> tuple[
        list[tuple[float, int, int, QueryResult]],
        dict[int, AccessStats],
        list[int],
        int,
        dict[int, float],
        dict[int, float],
    ]:
        """Run the bound-pruned scatter-gather; returns merged rows.

        Rows are ``(score, shard index, within-shard rank, result)``
        sorted ascending — ties (probability zero on continuous data)
        break toward the lower shard index, matching the deterministic
        batch merge.  The two final mappings are ``{shard index:
        bound}`` for every shard that failed out of the dispatch
        (*missed*) and for the subset whose bound could still beat the
        k-th score (*blocking*); a missed shard absent from *blocking*
        was certified irrelevant and the answer stays provably exact.
        """
        query.validate()
        if normalizer is None:
            normalizer = self.normalizer(query.interval, query.semantics)
        bounds: list[tuple[float, int]] = []
        for shard in self.shards:
            bound = self._shard_bound(shard, query, normalizer)
            if bound is not None:
                bounds.append((bound, shard.index))
        bounds.sort()
        bound_of = dict((index, bound) for bound, index in bounds)
        rows: list[tuple[float, int, int, QueryResult]] = []
        per_shard: dict[int, AccessStats] = {}
        visited: list[int] = []
        missed: dict[int, float] = {}
        pruned = 0

        def kth_score() -> float:
            return rows[query.k - 1][0] if len(rows) >= query.k else float("inf")

        def absorb(index: int, answer: tuple[list[QueryResult], AccessStats]) -> None:
            results, shard_stats = answer
            visited.append(index)
            per_shard[index] = shard_stats
            rows.extend(
                (result.score, index, position, result)
                for position, result in enumerate(results)
            )
            rows.sort(key=lambda row: (row[0], row[1], row[2]))

        if self.parallelism == 1:
            for position, (bound, index) in enumerate(bounds):
                if bound >= kth_score():
                    pruned = len(bounds) - position
                    break
                try:
                    answer = self._query_shard(index, query, normalizer)
                except Exception as exc:
                    if classify_error(exc) == CALLER:
                        raise
                    missed[index] = bound
                    continue
                absorb(index, answer)
        else:
            queue = deque(bounds)
            pending: dict[Future[tuple[list[QueryResult], AccessStats]], int] = {}
            with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                while queue or pending:
                    while queue and len(pending) < self.parallelism:
                        bound, index = queue[0]
                        if bound >= kth_score():
                            pruned += len(queue)
                            queue.clear()
                            break
                        queue.popleft()
                        pending[
                            pool.submit(self._query_shard, index, query, normalizer)
                        ] = index
                    if not pending:
                        break
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        try:
                            answer = future.result()
                        except Exception as exc:
                            if classify_error(exc) == CALLER:
                                raise
                            missed[index] = bound_of[index]
                            continue
                        absorb(index, answer)
        # The degradation certificate: a missed shard is harmless when
        # the answer already holds k results whose k-th score is at or
        # below the shard's best-possible score (its bound is a true
        # lower bound on every POI it holds, so nothing it could have
        # contributed would displace the current top-k).  Shards that
        # fail the test are *blocking* — the answer is not provably
        # exact without them.
        final_kth = kth_score()
        blocking = dict(
            (index, bound)
            for index, bound in missed.items()
            if len(rows) < query.k or bound < final_kth
        )
        with self._counter_lock:
            self.queries += 1
            self.shards_visited += len(visited)
            self.shards_pruned += pruned
            self.shards_failed += len(missed)
            if missed and not blocking:
                self.certified_exact += 1
        return rows, per_shard, visited, pruned, missed, blocking

    # ------------------------------------------------------------------
    # Routed mutations (per-shard lock + WAL)
    # ------------------------------------------------------------------

    def insert_poi(
        self, poi: POI, epoch_aggregates: Mapping[int, int] | None = None
    ) -> int | None:
        """Insert ``poi`` into its owning shard; returns the WAL LSN.

        Routing follows the plan; a point inside the world but outside
        every planned region falls back to the *nearest* region's shard
        and bumps ``routing_overflows``.  Returns ``None`` when the
        shard has no WAL attached.  Raises like the single tree on a
        duplicate id or an out-of-world point.
        """
        if not self.world.contains_point(poi.point):
            raise ValueError(
                "POI %r lies outside the world %r" % (poi, self.world)
            )
        if self._owner_of(poi.poi_id) is not None:
            raise ValueError("POI %r is already indexed" % (poi.poi_id,))
        index = self.plan.route(poi.point)
        if index is None:
            index = self.plan.nearest(poi.point)
            with self._counter_lock:
                self.routing_overflows += 1
        shard = self.shards[index]
        descriptor = self._descriptors[index]

        def apply(token: CallToken) -> int | None:
            with shard.lock.write_locked():
                token.check()
                descriptor.fresh = False
                if shard.ingest is None:
                    shard.tree.insert_poi(poi, epoch_aggregates)
                    lsn: int | None = None
                else:
                    lsn = cast(
                        "int | None", shard.ingest.insert(poi, epoch_aggregates)
                    )
                descriptor.refresh(shard.tree)
                return lsn

        return cast(
            "int | None", self._guards[index].call("mutate", apply)
        )

    def delete_poi(self, poi_id: Any) -> bool:
        """Delete ``poi_id`` from its owning shard; ``True`` if indexed."""
        shard = self._owner_of(poi_id)
        if shard is None:
            return False
        target = shard
        descriptor = self._descriptors[target.index]

        def apply(token: CallToken) -> bool:
            with target.lock.write_locked():
                token.check()
                descriptor.fresh = False
                if target.ingest is None:
                    deleted = target.tree.delete_poi(poi_id)
                else:
                    deleted = target.ingest.delete(poi_id) is not None
                descriptor.refresh(target.tree)
                return deleted

        return cast(bool, self._guards[target.index].call("mutate", apply))

    def digest_epoch(self, epoch_index: int, counts: Mapping[Any, int]) -> None:
        """Digest one epoch batch, routed per owning shard.

        The whole batch is validated against the cluster first (an
        unknown POI with a positive count raises ``KeyError`` before
        *any* shard applies anything), then each shard receives its
        sub-batch under its own write lock — through its WAL when one
        is attached.  Non-positive counts are dropped, matching both
        the single tree and the ingest semantics.
        """
        routed: dict[int, dict[Any, int]] = {}
        for poi_id, delta in counts.items():
            if delta <= 0:
                continue
            owner = self._owner_of(poi_id)
            if owner is None:
                raise KeyError(
                    "cannot digest check-ins for unknown POI %r" % (poi_id,)
                )
            routed.setdefault(owner.index, {})[poi_id] = delta
        for index in sorted(routed):
            shard = self.shards[index]
            sub_batch = routed[index]
            descriptor = self._descriptors[index]

            def apply(
                token: CallToken,
                shard: Shard = shard,
                sub_batch: dict[Any, int] = sub_batch,
                descriptor: ShardDescriptor = descriptor,
            ) -> None:
                with shard.lock.write_locked():
                    token.check()
                    descriptor.fresh = False
                    if shard.ingest is None:
                        shard.tree.digest_epoch(epoch_index, sub_batch)
                    else:
                        shard.ingest.digest(epoch_index, sub_batch)
                    descriptor.refresh(shard.tree)

            self._guards[index].call("mutate", apply)

    # ------------------------------------------------------------------
    # Durability and maintenance
    # ------------------------------------------------------------------

    def applied_lsns(self) -> list[int | None]:
        """Each shard's applied-LSN high-water mark, in shard order."""
        return [shard.tree.applied_lsn for shard in self.shards]

    def checkpoint(self) -> str:
        """Checkpoint every shard and rewrite the cluster manifest.

        Each shard snapshot is taken under that shard's write lock;
        the manifest written afterwards records the per-shard applied
        LSNs of exactly these snapshots, tying them into one consistent
        cluster checkpoint.  Returns the manifest path.
        """
        from repro.cluster.state import write_manifest

        if self.directory is None:
            raise ClusterStateError(
                "this cluster has no durable state; create one with "
                "save_cluster() or open_cluster()"
            )
        for shard in self.shards:
            if shard.ingest is None:
                raise ClusterStateError(
                    "shard %d has no CheckpointedIngest attached" % shard.index
                )
            with shard.lock.write_locked():
                shard.ingest.checkpoint()
            if shard.scrubber is not None:
                shard.scrubber.persist_manifest()
        return write_manifest(self.directory, self)

    def scrub_tick(self, budget: int | None = None) -> int:
        """One bounded scrubber tick on the next shard (round-robin).

        Doubles as the online-recovery driver: when the tick lands on a
        shard whose breaker is flagged ``needs_recovery`` and the
        cluster has durable state, the tick attempts
        :meth:`recover_shard` instead of scrubbing.  A shard that fails
        its tick (or its recovery) costs the tick — the guard records
        the failure and the tick returns 0 rather than crashing the
        maintenance loop.
        """
        with self._counter_lock:
            cursor = self._scrub_cursor
            self._scrub_cursor += 1
        shard = self.shards[cursor % len(self.shards)]
        guard = self._guards[shard.index]
        if guard.breaker.needs_recovery:
            if self.directory is None:
                return 0
            try:
                self.recover_shard(shard.index)
            except Exception as exc:
                if classify_error(exc) == CALLER:
                    raise
                return 0
            return 0

        def tick(token: CallToken) -> int:
            return cast(int, self._shard_scrubber(shard).tick(budget))

        try:
            return cast(int, guard.call("scrub", tick))
        except Exception as exc:
            if classify_error(exc) == CALLER:
                raise
            return 0

    def _shard_scrubber(self, shard: Shard) -> Scrubber:
        if shard.scrubber is None:
            from repro.service.scrubber import Scrubber

            manifest_path = None
            if shard.ingest is not None:
                manifest_path = (
                    shard.ingest.snapshot_path.rsplit(".json", 1)[0] + ".scrub.json"
                )
            shard.scrubber = Scrubber(
                shard.tree, shard.lock, manifest_path=manifest_path
            )
            shard.tree.add_mutation_observer(shard.scrubber.observe_mutation)
        return shard.scrubber

    # ------------------------------------------------------------------
    # Online shard recovery
    # ------------------------------------------------------------------

    def recover_shard(self, index: int) -> RecoveryReport:
        """Reopen shard ``index`` from its checkpoint + WAL tail, online.

        The recovery open runs through the guard as an ``"open"`` call
        (fault-injectable, never breaker-rejected — it is how a
        quarantined shard gets back in); the cutover then happens under
        the shard's write lock: the recovered tree must have reached at
        least the live tree's applied LSN (the WAL is the shared source
        of truth, so going backwards means durable state vanished), the
        old ingest and scrubber detach, a fresh
        :class:`~repro.reliability.recovery.CheckpointedIngest` rides
        the same WAL, and the shard descriptor refreshes from the
        recovered tree.  Queries keep flowing the whole time — they
        hold the read side of the same lock.  Afterwards the breaker is
        readmitted half-open; probe successes close it.

        Lock order (rank-descending, per the canonical hierarchy): the
        guarded reopen runs *before* the recovery lock — it only loads
        a fresh tree from durable state, touches no shared coordinator
        state, and may fire breaker/health callbacks, which must never
        happen under an engine lock.  The recovery lock (rank 20)
        serialises the cutover itself, nesting only the shard's write
        lock (rank 30) and the counter lock (rank 80) inside it; the
        readmission — another callback-firing breaker transition —
        happens after it is released.
        """
        from repro.reliability.recovery import CheckpointedIngest, recover

        if self.directory is None:
            raise ClusterStateError(
                "online shard recovery needs durable state; create it with "
                "save_cluster() or open_cluster()"
            )
        shard = self.shards[index]
        guard = self._guards[index]
        descriptor = self._descriptors[index]
        shard_dir = os.path.join(self.directory, shard.dirname)

        def reopen(token: CallToken) -> RecoveryReport:
            return cast("RecoveryReport", recover(shard_dir, name="tree"))

        report = cast("RecoveryReport", guard.call("open", reopen))
        with self._recovery_lock:
            with shard.lock.write_locked():
                old_lsn = shard.tree.applied_lsn
                new_lsn = report.tree.applied_lsn
                if old_lsn is not None and (new_lsn is None or new_lsn < old_lsn):
                    raise ClusterStateError(
                        "shard %d recovered to LSN %r behind the live tree's "
                        "LSN %r — refusing the cutover" % (index, new_lsn, old_lsn)
                    )
                if shard.scrubber is not None:
                    shard.tree.remove_mutation_observer(
                        shard.scrubber.observe_mutation
                    )
                    shard.scrubber = None
                if shard.ingest is not None:
                    shard.ingest.close()
                shard.tree = report.tree
                shard.ingest = CheckpointedIngest(
                    report.tree, shard_dir, name="tree"
                )
                descriptor.refresh(shard.tree)
            with self._counter_lock:
                self.recoveries += 1
        guard.readmit()
        return report

    def close(self) -> None:
        """Detach shard scrubbers, close shard WALs and guard executors
        (checkpoint first if the logs must stay minimal — closing never
        loses records)."""
        for shard in self.shards:
            if shard.scrubber is not None:
                shard.tree.remove_mutation_observer(shard.scrubber.observe_mutation)
                shard.scrubber.persist_manifest()
                shard.scrubber = None
            if shard.ingest is not None:
                shard.ingest.close()
                shard.ingest = None
        for guard in self._guards:
            guard.close()

    def __enter__(self) -> ClusterTree:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __repr__(self) -> str:
        return "ClusterTree(%d shards, %d POIs, %s plan%s)" % (
            len(self.shards),
            len(self),
            self.plan.method,
            ", durable" if self.directory is not None else "",
        )
