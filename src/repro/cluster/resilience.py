"""Shard fault domains: guards, circuit breakers, bounded degradation.

Every per-shard operation the coordinator performs — query dispatch,
batch run, routed mutation, scrub tick, recovery open — crosses a
*fault domain* boundary, and this module is that boundary.  A
:class:`ShardGuard` wraps each crossing in a guarded call with a
per-shard timeout (enforced preemptively on a private executor), a
seeded retry/backoff loop for transient errors, and a per-shard
:class:`CircuitBreaker` that quarantines a shard after repeated or
fatal failures.  Errors are classified three ways:

* **transient** — :class:`~repro.reliability.faults.TransientIOError`
  and :class:`ShardCallTimeout`: retried (timeouts excepted — they
  already spent the call budget) and counted against the breaker;
* **caller** — ``ValueError`` / ``KeyError`` / ``IndexError`` /
  ``TypeError``: the shard answered, the *request* was wrong; these
  propagate unchanged and never penalise the shard;
* **fatal** — everything else: the breaker opens immediately and the
  shard is flagged ``needs_recovery`` (no amount of retrying brings
  back a crashed or corrupted shard — it must be reopened from its
  checkpoint + WAL tail).

The correctness story for answers that *miss* a shard lives in
:class:`ShardDescriptor` and :class:`DegradedAnswer`.  The descriptor
caches, per shard, exactly the state the coordinator's pruning bound
needs — root MBR and per-epoch aggregate maxima — refreshed
synchronously inside every successful guarded mutation, so the bound
of an *unreachable* shard is still computable.  A missed shard whose
best-possible score cannot beat the running k-th score is provably
irrelevant (the same Property-1 argument that powers pruning), leaving
the answer exact; otherwise the coordinator either raises
:class:`ClusterDegradedError` (strict default) or returns a
:class:`DegradedAnswer` carrying ``coverage``, the missed shard ids
and the tight lower bound on any missed candidate's score.

Everything here is deterministic under fixed seeds: the breaker's
probe scheduling is count-based (no wall clock), retry jitter comes
from a seeded generator, and faults are injected through the shared
:class:`~repro.reliability.faults.FaultInjector` at the per-shard
sites ``shard.<i>.query`` / ``shard.<i>.mutate`` / ``shard.<i>.scrub``
/ ``shard.<i>.open``.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import TYPE_CHECKING, Callable, Iterator, NamedTuple, TypeVar, overload

from repro.core.query import KNNTAQuery, Normalizer, QueryResult
from repro.devtools.lockmodel import BREAKER
from repro.devtools.watchdog import monitored_lock
from repro.reliability.faults import FaultInjector, TransientIOError
from repro.spatial.geometry import Rect
from repro.temporal.epochs import TimeInterval
from repro.temporal.tia import AggregateKind, IntervalSemantics

if TYPE_CHECKING:
    from repro.core.tar_tree import TARTree
    from repro.temporal.epochs import EpochClock, VariedEpochClock

    Clock = EpochClock | VariedEpochClock

__all__ = [
    "CALLER",
    "CLOSED",
    "FATAL",
    "HALF_OPEN",
    "OPEN",
    "TRANSIENT",
    "CallToken",
    "CircuitBreaker",
    "ClusterDegradedError",
    "DegradedAnswer",
    "ResilienceConfig",
    "ShardCallTimeout",
    "ShardDescriptor",
    "ShardDownError",
    "ShardFaultError",
    "ShardGuard",
    "ShardHealthEvent",
    "classify_error",
]

T = TypeVar("T")

#: Error classes (:func:`classify_error` return values).
TRANSIENT = "transient"
CALLER = "caller"
FATAL = "fatal"

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Exception types that indicate a malformed *request*, not a shard
#: fault: they propagate unchanged and never penalise the breaker.
CALLER_ERRORS = (ValueError, KeyError, IndexError, TypeError)


# ---------------------------------------------------------------------------
# Exceptions and classification
# ---------------------------------------------------------------------------


class ShardFaultError(RuntimeError):
    """A guarded per-shard operation failed; carries the fault domain."""

    def __init__(self, shard: int, site: str, message: str) -> None:
        super().__init__("shard %d (%s): %s" % (shard, site, message))
        self.shard = shard
        self.site = site


class ShardCallTimeout(ShardFaultError):
    """The guarded call did not return within the per-shard timeout.

    Classified transient (a stalled shard may come back) but never
    retried inline — the call already consumed its full time budget,
    and retrying would multiply the caller-visible latency.
    """


class ShardDownError(ShardFaultError):
    """The shard's circuit breaker rejected the call without dispatching."""


class _AbandonedCall(Exception):
    """Internal: a timed-out call's thunk noticed it was abandoned.

    Raised by :meth:`CallToken.check` on the orphaned executor thread;
    nobody waits on that future, so the exception never escapes — its
    job is purely to stop an abandoned mutation from applying late.
    """


class ClusterDegradedError(RuntimeError):
    """Strict policy: the answer would be degraded, and that is an error.

    Raised when one or more shards are down *and* their best-possible
    score bounds cannot certify the partial answer exact.  Carries the
    same evidence a :class:`DegradedAnswer` would: the missed shard
    ids, the shard ``coverage`` fraction, and ``score_bound`` — the
    proven lower bound on the score of any candidate the missed shards
    might hold.
    """

    def __init__(
        self,
        missed_shards: tuple[int, ...],
        coverage: float,
        score_bound: float | None,
    ) -> None:
        super().__init__(
            "answer is degraded: shard(s) %s unavailable and not certified "
            "irrelevant (coverage %.3f, missed-candidate score bound %s); "
            "pass allow_degraded=True to accept bounded answers"
            % (
                ",".join(str(index) for index in missed_shards),
                coverage,
                "%.6f" % score_bound if score_bound is not None else "unknown",
            )
        )
        self.missed_shards = missed_shards
        self.coverage = coverage
        self.score_bound = score_bound


def classify_error(exc: BaseException) -> str:
    """Classify one guarded-call failure: transient, caller or fatal.

    :class:`ShardCallTimeout` and
    :class:`~repro.reliability.faults.TransientIOError` are transient;
    :data:`CALLER_ERRORS` mean the request itself was malformed (the
    shard is healthy); everything else — including
    :class:`ShardDownError` and injected
    :class:`~repro.reliability.faults.FatalFaultError` — is fatal.
    """
    if isinstance(exc, ShardCallTimeout):
        return TRANSIENT
    if isinstance(exc, ShardDownError):
        return FATAL
    if isinstance(exc, TransientIOError):
        return TRANSIENT
    if isinstance(exc, CALLER_ERRORS):
        return CALLER
    return FATAL


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


class ResilienceConfig:
    """Tunables for the fault-domain layer (one instance per cluster).

    ``call_timeout`` is the per-shard-call deadline in seconds;
    ``None`` (the default) runs guarded calls inline on the caller's
    thread — full breaker/retry semantics with zero executor overhead,
    the right mode when shards are in-heap and cannot stall.  With a
    timeout set, calls run on a small per-shard executor
    (``shard_concurrency`` threads) so a stalled call is *abandoned*
    at the deadline rather than waited out; an abandoned mutation
    checks its :class:`CallToken` after acquiring the shard lock and
    aborts instead of applying late.

    Retries apply to transient errors only — never to timeouts (the
    call already spent its budget) and never to ``"mutate"`` calls
    (a mutation that failed after its WAL append is not idempotent;
    the WAL, not a blind re-run, is its source of truth):
    ``max_retries`` attempts beyond the first, sleeping
    ``backoff * backoff_factor**n`` (capped at ``max_backoff``) with
    multiplicative jitter from a generator seeded by ``seed`` — fully
    deterministic, replayable chaos.  ``sleep`` is injectable so tests
    pass ``lambda _: None`` and run instantly.

    Breaker schedule (count-based, no wall clock): ``failure_threshold``
    consecutive transient failures — or one fatal — open the breaker;
    an open breaker rejects ``probe_after`` calls and then lets the
    next one through as a half-open probe; ``probe_successes``
    successful probes close it again.  A breaker opened by a *fatal*
    failure never self-probes — it stays open until the shard is
    recovered and readmitted.
    """

    __slots__ = (
        "call_timeout",
        "max_retries",
        "backoff",
        "backoff_factor",
        "max_backoff",
        "failure_threshold",
        "probe_after",
        "probe_successes",
        "shard_concurrency",
        "seed",
        "sleep",
    )

    def __init__(
        self,
        call_timeout: float | None = None,
        max_retries: int = 2,
        backoff: float = 0.005,
        backoff_factor: float = 2.0,
        max_backoff: float = 0.25,
        failure_threshold: int = 3,
        probe_after: int = 8,
        probe_successes: int = 2,
        shard_concurrency: int = 4,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if call_timeout is not None and call_timeout <= 0:
            raise ValueError(
                "call_timeout must be positive or None, got %r" % (call_timeout,)
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0, got %r" % (max_retries,))
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got %r" % (failure_threshold,)
            )
        if probe_after < 1:
            raise ValueError("probe_after must be >= 1, got %r" % (probe_after,))
        if probe_successes < 1:
            raise ValueError(
                "probe_successes must be >= 1, got %r" % (probe_successes,)
            )
        if shard_concurrency < 1:
            raise ValueError(
                "shard_concurrency must be >= 1, got %r" % (shard_concurrency,)
            )
        self.call_timeout = call_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.max_backoff = max_backoff
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.probe_successes = probe_successes
        self.shard_concurrency = shard_concurrency
        self.seed = seed
        self.sleep = sleep

    def __repr__(self) -> str:
        return (
            "ResilienceConfig(call_timeout=%r, max_retries=%d, "
            "failure_threshold=%d, probe_after=%d)"
            % (
                self.call_timeout,
                self.max_retries,
                self.failure_threshold,
                self.probe_after,
            )
        )


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class ShardHealthEvent(NamedTuple):
    """One fault-domain transition, for the health stream and ops stats."""

    kind: str
    shard: int
    detail: str

    def as_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "shard": self.shard, "detail": self.detail}


class CircuitBreaker:
    """Per-shard closed / open / half-open breaker, deterministically probed.

    All scheduling is count-based so seeded chaos tests replay exactly:
    an open breaker rejects ``probe_after`` calls, then admits the next
    as a half-open probe (one probe in flight at a time);
    ``probe_successes`` successes close it, any probe failure reopens
    it.  ``needs_recovery`` (set by a fatal failure) disables
    self-probing — only an explicit :meth:`readmit` after online
    recovery moves the breaker to half-open.  ``on_transition`` (when
    set) is invoked with the new state name on every state change.
    """

    __slots__ = (
        "_lock",
        "state",
        "needs_recovery",
        "failure_threshold",
        "probe_after",
        "probe_successes",
        "consecutive_failures",
        "failures",
        "successes",
        "opens",
        "rejected",
        "_rejected_since_open",
        "_probe_inflight",
        "_probe_wins",
        "on_transition",
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        probe_after: int = 8,
        probe_successes: int = 2,
    ) -> None:
        self._lock = monitored_lock(BREAKER)
        self.state = CLOSED
        self.needs_recovery = False
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.probe_successes = probe_successes
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.opens = 0
        self.rejected = 0
        self._rejected_since_open = 0
        self._probe_inflight = 0
        self._probe_wins = 0
        self.on_transition: Callable[[str], None] | None = None

    def allow(self) -> bool:
        """Admit or reject one call; may transition open → half-open."""
        fired: list[str] = []
        with self._lock:
            admitted = self._allow_locked(fired)
        self._fire(fired)
        return admitted

    def _allow_locked(self, fired: list[str]) -> bool:
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if (
                not self.needs_recovery
                and self._rejected_since_open >= self.probe_after
            ):
                self._transition(HALF_OPEN, fired)
                self._probe_inflight = 1
                return True
            self._rejected_since_open += 1
            self.rejected += 1
            return False
        # HALF_OPEN: one probe in flight at a time.
        if self._probe_inflight < 1:
            self._probe_inflight += 1
            return True
        self.rejected += 1
        return False

    def record_success(self) -> None:
        fired: list[str] = []
        with self._lock:
            self.successes += 1
            self.consecutive_failures = 0
            if self.state == HALF_OPEN:
                self._probe_inflight = max(0, self._probe_inflight - 1)
                self._probe_wins += 1
                if self._probe_wins >= self.probe_successes:
                    self.needs_recovery = False
                    self._transition(CLOSED, fired)
        self._fire(fired)

    def record_failure(self, fatal: bool = False) -> None:
        fired: list[str] = []
        with self._lock:
            self.failures += 1
            self.consecutive_failures += 1
            if fatal:
                self.needs_recovery = True
            if self.state == HALF_OPEN:
                self._probe_inflight = max(0, self._probe_inflight - 1)
                self._reopen(fired)
            elif self.state == CLOSED and (
                fatal or self.consecutive_failures >= self.failure_threshold
            ):
                self._reopen(fired)
        self._fire(fired)

    def readmit(self) -> None:
        """Move to half-open after recovery; probes decide readmission."""
        fired: list[str] = []
        with self._lock:
            self.needs_recovery = False
            self.consecutive_failures = 0
            self._probe_inflight = 0
            self._probe_wins = 0
            if self.state != HALF_OPEN:
                self._transition(HALF_OPEN, fired)
        self._fire(fired)

    def _reopen(self, fired: list[str]) -> None:
        self.opens += 1
        self._rejected_since_open = 0
        self._probe_wins = 0
        self._transition(OPEN, fired)

    def _transition(self, state: str, fired: list[str]) -> None:
        """Apply the state change; the *callback* fires after release.

        ``on_transition`` runs arbitrary foreign code (the guard's
        health fan-out); invoking it under the breaker lock would put
        a foreign callback inside an engine lock (RT010) and invert
        the hierarchy the moment that code re-enters the breaker.  The
        state change is applied here, the notification is queued, and
        :meth:`_fire` delivers it once the lock is released.
        """
        self.state = state
        fired.append(state)

    def _fire(self, fired: list[str]) -> None:
        callback = self.on_transition
        if callback is None:
            return
        for state in fired:
            callback(state)

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self.state,
                "needs_recovery": self.needs_recovery,
                "failures": self.failures,
                "successes": self.successes,
                "opens": self.opens,
                "rejected": self.rejected,
                "consecutive_failures": self.consecutive_failures,
            }

    def __repr__(self) -> str:
        return "CircuitBreaker(%s, failures=%d, opens=%d)" % (
            self.state,
            self.failures,
            self.opens,
        )


# ---------------------------------------------------------------------------
# Shard descriptor: last-known bound state for unreachable shards
# ---------------------------------------------------------------------------


class ShardDescriptor:
    """Cached pruning-bound state for one shard: root MBR + epoch maxima.

    Refreshed under the shard lock at construction, after every
    successful guarded mutation, and after recovery — so the
    coordinator computes bounds and the cluster normaliser without
    touching shard trees on the query path at all, and the bound of a
    *down* shard (the degradation certificate) is its last consistent
    value.  ``fresh`` is cleared while a mutation is in flight and
    restored by the post-apply refresh; a descriptor left stale by a
    failed mutation keeps serving last-known-good values.
    """

    __slots__ = ("mbr", "epoch_max", "pois", "fresh")

    def __init__(self) -> None:
        self.mbr: Rect | None = None
        self.epoch_max: dict[int, int] = {}
        self.pois = 0
        self.fresh = False

    def refresh(self, tree: TARTree) -> None:
        """Recompute from ``tree``; the caller holds the shard lock."""
        entries = tree.root.entries
        self.mbr = (
            Rect.union_all(entry.mbr for entry in entries) if entries else None
        )
        self.epoch_max = dict(tree.global_epoch_max())
        self.pois = len(tree)
        self.fresh = True

    def max_aggregate_bound(
        self,
        interval: TimeInterval,
        semantics: IntervalSemantics,
        clock: Clock,
        aggregate_kind: AggregateKind,
    ) -> int:
        """Upper bound on any shard POI's aggregate over ``interval``."""
        values = (
            self.epoch_max.get(epoch, 0)
            for epoch in clock.epoch_range(interval, semantics)
        )
        if aggregate_kind is AggregateKind.MAX:
            return max(values, default=0)
        return sum(values)

    def bound(
        self,
        query: KNNTAQuery,
        normalizer: Normalizer,
        clock: Clock,
        aggregate_kind: AggregateKind,
    ) -> float | None:
        """Best possible score of any POI in the shard; ``None`` if empty.

        MINDIST to the cached root MBR under-estimates every POI
        distance; the cached per-epoch maxima over-estimate every
        aggregate (Property 1) — so the weighted sum is a true lower
        bound on every shard POI's score, computable even when the
        shard itself is unreachable.
        """
        if self.mbr is None:
            return None
        raw = self.max_aggregate_bound(
            query.interval, query.semantics, clock, aggregate_kind
        )
        distance, aggregate = normalizer.components(
            self.mbr.min_dist(query.point), raw
        )
        return query.alpha0 * distance + query.alpha1 * (1.0 - aggregate)

    def __repr__(self) -> str:
        return "ShardDescriptor(%d POIs, fresh=%r)" % (self.pois, self.fresh)


# ---------------------------------------------------------------------------
# Degraded answers
# ---------------------------------------------------------------------------


class DegradedAnswer:
    """A bounded partial answer, explicitly marked and certified.

    Behaves as the ranked result sequence (``iter``/``len``/indexing),
    so existing callers destructure it like plain rows, plus the
    degradation evidence: ``missed_shards`` (the shards that could not
    be certified irrelevant), ``coverage`` (fraction of shards whose
    data is reflected in — or provably irrelevant to — the answer) and
    ``score_bound``: every POI the missed shards might contribute is
    *proven* to score at least this value, so any row already scoring
    below it is definitively ranked.

    Satisfies the :class:`~repro.core.query.Answer` protocol with
    ``exact = False`` — the one answer shape in the system whose rows
    may be incomplete, and it says so.
    """

    __slots__ = ("results", "missed_shards", "coverage", "score_bound")

    #: Marker for duck-typed callers (service layer, wire protocol).
    degraded = True
    exact = False

    @property
    def rows(self) -> list[QueryResult]:
        return self.results

    def __init__(
        self,
        results: list[QueryResult],
        missed_shards: tuple[int, ...],
        coverage: float,
        score_bound: float | None,
    ) -> None:
        self.results = results
        self.missed_shards = missed_shards
        self.coverage = coverage
        self.score_bound = score_bound

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @overload
    def __getitem__(self, index: int) -> QueryResult: ...

    @overload
    def __getitem__(self, index: slice) -> list[QueryResult]: ...

    def __getitem__(self, index: int | slice) -> QueryResult | list[QueryResult]:
        return self.results[index]

    def __repr__(self) -> str:
        return (
            "DegradedAnswer(%d results, missed_shards=%r, coverage=%.3f, "
            "score_bound=%r)"
            % (len(self.results), self.missed_shards, self.coverage, self.score_bound)
        )


# ---------------------------------------------------------------------------
# The guard
# ---------------------------------------------------------------------------


class CallToken:
    """Abandonment flag handed to every guarded thunk.

    A thunk that mutates shard state calls :meth:`check` immediately
    after acquiring the shard's write lock: if the guarded call was
    already timed out and abandoned by its caller, the mutation aborts
    (on the orphaned executor thread) instead of applying late —
    possibly after the shard has been recovered from its WAL.
    """

    __slots__ = ("abandoned",)

    def __init__(self) -> None:
        self.abandoned = False

    def check(self) -> None:
        if self.abandoned:
            raise _AbandonedCall("call abandoned after timeout")


class ShardGuard:
    """The fault-domain boundary for one shard; see the module docs.

    :meth:`call` is the single entry point: it consults the breaker,
    injects the configured faults at ``shard.<index>.<kind>``, runs the
    thunk (inline, or on the per-shard executor when a call timeout is
    configured), retries transient errors with seeded backoff, and
    records the final outcome on the breaker.  ``kind`` is one of
    ``"query"``, ``"mutate"``, ``"scrub"`` or ``"open"``; the
    ``"open"`` kind (recovery I/O) bypasses the breaker entirely — it
    is how a quarantined shard gets back in.
    """

    __slots__ = (
        "index",
        "config",
        "injector",
        "breaker",
        "calls",
        "retries",
        "timeouts",
        "_on_event",
        "_lock",
        "_executor",
        "_rng",
    )

    def __init__(
        self,
        index: int,
        config: ResilienceConfig,
        injector: FaultInjector | None = None,
        on_event: Callable[[ShardHealthEvent], None] | None = None,
    ) -> None:
        self.index = index
        self.config = config
        self.injector = injector
        self.breaker = CircuitBreaker(
            failure_threshold=config.failure_threshold,
            probe_after=config.probe_after,
            probe_successes=config.probe_successes,
        )
        self.breaker.on_transition = self._note_transition
        self.calls = 0
        self.retries = 0
        self.timeouts = 0
        self._on_event = on_event
        self._lock = monitored_lock(BREAKER)
        self._executor: ThreadPoolExecutor | None = None
        self._rng = random.Random((config.seed << 8) ^ index)

    # -- the guarded call ----------------------------------------------------

    def call(self, kind: str, thunk: Callable[[CallToken], T]) -> T:
        """Run ``thunk`` through the full guard; raises on final failure."""
        site = "shard.%d.%s" % (self.index, kind)
        guarded = kind != "open"
        if guarded and not self.breaker.allow():
            raise ShardDownError(self.index, site, "circuit breaker is open")
        with self._lock:
            self.calls += 1
        attempt = 0
        while True:
            try:
                result = self._invoke(site, thunk)
            except Exception as exc:
                kind_of = classify_error(exc)
                if kind_of == CALLER:
                    # The shard answered; the request was wrong.  In
                    # half-open that still counts as a live probe.
                    if guarded:
                        self.breaker.record_success()
                    raise
                timed_out = isinstance(exc, ShardCallTimeout)
                if timed_out:
                    with self._lock:
                        self.timeouts += 1
                    self._emit("shard-timeout", str(exc))
                if (
                    kind_of == TRANSIENT
                    and not timed_out
                    and kind != "mutate"
                    and attempt < self.config.max_retries
                ):
                    self.config.sleep(self._backoff(attempt))
                    attempt += 1
                    with self._lock:
                        self.retries += 1
                    continue
                if guarded:
                    self.breaker.record_failure(fatal=(kind_of == FATAL))
                    if kind_of == FATAL:
                        self._emit(
                            "shard-error", "%s: %s" % (type(exc).__name__, exc)
                        )
                raise
            else:
                if guarded:
                    self.breaker.record_success()
                return result

    def _invoke(self, site: str, thunk: Callable[[CallToken], T]) -> T:
        token = CallToken()

        def run() -> T:
            if self.injector is not None:
                self.injector.check(site)
            return thunk(token)

        timeout = self.config.call_timeout
        if timeout is None:
            return run()
        executor = self._ensure_executor()
        future = executor.submit(run)
        try:
            return future.result(timeout)
        except _FutureTimeout:
            # Abandon the call: flag the token so a pending mutation
            # aborts before applying, and retire the executor so queued
            # work does not pile up behind the stalled thread.
            token.abandoned = True
            future.cancel()
            self._retire_executor(executor)
            raise ShardCallTimeout(
                self.index, site, "no reply within %.3fs" % timeout
            ) from None

    def _backoff(self, attempt: int) -> float:
        base = self.config.backoff * (self.config.backoff_factor**attempt)
        jitter = 0.5 + self._rng.random() / 2.0
        return min(base * jitter, self.config.max_backoff)

    # -- executor management -------------------------------------------------

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.shard_concurrency,
                    thread_name_prefix="repro-shard-%d" % self.index,
                )
            return self._executor

    def _retire_executor(self, executor: ThreadPoolExecutor) -> None:
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False)

    def close(self) -> None:
        """Shut the per-shard executor down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    # -- health events -------------------------------------------------------

    def _note_transition(self, state: str) -> None:
        self._emit("breaker-%s" % state, "circuit breaker is now %s" % state)

    def _emit(self, kind: str, detail: str) -> None:
        callback = self._on_event
        if callback is not None:
            callback(ShardHealthEvent(kind, self.index, detail))

    def readmit(self) -> None:
        """Readmit after recovery: half-open, probes decide the rest."""
        self.breaker.readmit()
        self._emit("shard-readmitted", "recovered; probing via half-open")

    def snapshot(self) -> dict[str, object]:
        """JSON-ready guard + breaker state for the ``health`` surface."""
        state = self.breaker.snapshot()
        with self._lock:
            state["calls"] = self.calls
            state["retries"] = self.retries
            state["timeouts"] = self.timeouts
        return state

    def __repr__(self) -> str:
        return "ShardGuard(%d, %s, calls=%d)" % (
            self.index,
            self.breaker.state,
            self.calls,
        )
