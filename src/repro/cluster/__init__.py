"""Spatially sharded TAR-tree serving (see ``docs/CLUSTER.md``).

``repro.cluster`` splits a dataset into N spatial shards — each a full
:class:`~repro.core.tar_tree.TARTree` with its own write-ahead log —
behind a coordinator that answers :class:`~repro.core.query.KNNTAQuery`
exactly, visiting shards best-bound-first and pruning those that
provably cannot contribute to the top-k (Property 1 of the paper gives
the bound).  The package is three layers:

* :mod:`~repro.cluster.planner` — partition POIs into routable regions;
* :mod:`~repro.cluster.coordinator` — scatter-gather queries and routed
  mutations over the live shards;
* :mod:`~repro.cluster.resilience` — per-shard fault domains: circuit
  breakers, guarded calls, bounded-degradation answers;
* :mod:`~repro.cluster.state` — the on-disk manifest plus per-shard
  crash recovery.
"""

from repro.cluster.coordinator import ClusterStateError, ClusterTree, Shard
from repro.cluster.planner import ShardPlan, plan_shards
from repro.cluster.resilience import (
    CircuitBreaker,
    ClusterDegradedError,
    DegradedAnswer,
    ResilienceConfig,
    ShardCallTimeout,
    ShardDownError,
    ShardFaultError,
    ShardGuard,
    ShardHealthEvent,
)
from repro.cluster.state import (
    ClusterRecoveryReport,
    is_cluster_directory,
    open_cluster,
    recover_cluster,
    save_cluster,
)

__all__ = [
    "CircuitBreaker",
    "ClusterDegradedError",
    "ClusterRecoveryReport",
    "ClusterStateError",
    "ClusterTree",
    "DegradedAnswer",
    "ResilienceConfig",
    "Shard",
    "ShardCallTimeout",
    "ShardDownError",
    "ShardFaultError",
    "ShardGuard",
    "ShardHealthEvent",
    "ShardPlan",
    "is_cluster_directory",
    "open_cluster",
    "plan_shards",
    "recover_cluster",
    "save_cluster",
]
