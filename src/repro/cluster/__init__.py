"""Spatially sharded TAR-tree serving (see ``docs/CLUSTER.md``).

``repro.cluster`` splits a dataset into N spatial shards — each a full
:class:`~repro.core.tar_tree.TARTree` with its own write-ahead log —
behind a coordinator that answers :class:`~repro.core.query.KNNTAQuery`
exactly, visiting shards best-bound-first and pruning those that
provably cannot contribute to the top-k (Property 1 of the paper gives
the bound).  The package layers:

* :mod:`~repro.cluster.planner` — partition POIs into routable regions;
* :mod:`~repro.cluster.coordinator` — scatter-gather queries and routed
  mutations over the live shards, in process;
* :mod:`~repro.cluster.resilience` — per-shard fault domains: circuit
  breakers, guarded calls, bounded-degradation answers;
* :mod:`~repro.cluster.state` — the on-disk manifest plus per-shard
  crash recovery;
* :mod:`~repro.cluster.workers` — one shard per *process*: a worker
  owning its shard's tree + WAL + scrubber behind the JSON-lines
  protocol;
* :mod:`~repro.cluster.remote` — the out-of-process coordinator:
  async best-bound-first scatter-gather over worker sockets;
* :mod:`~repro.cluster.reshard` — live shard splits: drain the WAL
  tail, cut the routing table over, replay into two successors.
"""

from repro.cluster.coordinator import ClusterStateError, ClusterTree, Shard
from repro.cluster.planner import ShardPlan, plan_shards, split_region
from repro.cluster.remote import (
    RemoteClusterTree,
    RemoteShard,
    WireProtocolError,
    WorkerClient,
)
from repro.cluster.reshard import ReshardPolicy, maybe_split, split_shard
from repro.cluster.resilience import (
    CircuitBreaker,
    ClusterDegradedError,
    DegradedAnswer,
    ResilienceConfig,
    ShardCallTimeout,
    ShardDownError,
    ShardFaultError,
    ShardGuard,
    ShardHealthEvent,
)
from repro.cluster.state import (
    ClusterRecoveryReport,
    is_cluster_directory,
    open_cluster,
    recover_cluster,
    save_cluster,
)
from repro.cluster.workers import ShardWorkerServer, WorkerHandle, run_worker

__all__ = [
    "CircuitBreaker",
    "ClusterDegradedError",
    "ClusterRecoveryReport",
    "ClusterStateError",
    "ClusterTree",
    "DegradedAnswer",
    "RemoteClusterTree",
    "RemoteShard",
    "ReshardPolicy",
    "ResilienceConfig",
    "Shard",
    "ShardCallTimeout",
    "ShardDownError",
    "ShardFaultError",
    "ShardGuard",
    "ShardHealthEvent",
    "ShardPlan",
    "ShardWorkerServer",
    "WireProtocolError",
    "WorkerClient",
    "WorkerHandle",
    "is_cluster_directory",
    "maybe_split",
    "open_cluster",
    "plan_shards",
    "recover_cluster",
    "run_worker",
    "save_cluster",
    "split_region",
    "split_shard",
]
