"""Live resharding: split an overloaded worker shard online.

The split keeps the cluster serving (and bit-identical) throughout, in
two phases:

**Phase A — build the successors (no cluster locks held).**  The source
worker checkpoints (compacting its WAL to a snapshot at some LSN
``L0``), the coordinator recovers that state *locally* — a read-only
snapshot load plus WAL replay, safe against the live worker's
concurrent appends — reaching some ``L1 >= L0``, computes the
median-split successor regions (:func:`~repro.cluster.planner
.split_region`), bulk-loads two successor trees from the recovered
rows, attaches durable state to fresh ``shard-<n>`` directories
(stamped *uncommitted* reshard metadata, so a crash leaves ignorable
orphans), and spawns + connects a worker over each.  The source keeps
serving queries and absorbing mutations the whole time; anything it
applied past ``L1`` sits in its WAL.  A cluster checkpoint is mutually
exclusive with the whole split (both claim the coordinator's
exclusive-maintenance flag), so nothing compacts that tail before
Phase B drains it — and the drain itself refuses a non-contiguous
tail (a ``wal-tail-gap`` error aborts the split) as defence in depth.

**Phase B — drain and cut over (routing write lock held).**  Taking
the write side of the coordinator's routing lock *is* the quiesce:
queries and mutations hold the read side, so the source's WAL tail
after ``L1`` is final.  The tail is drained (``wal_tail`` op, read
under the source's own write lock), replayed record-by-record in LSN
order into the successors — inserts route by the successor regions
(boundary points to the low cell, exactly as :meth:`ShardPlan.route`
breaks the tie), deletes and digests follow the ownership the replay
itself maintains; digests replay their logged deltas, which reproduce
the logged ``value_after`` exactly because each successor tracks the
source's per-POI state in LSN order — then the routing table is
rewritten (low successor in the source's slot, high successor
appended) and the manifest naming the successors is fsynced.  That
manifest write is the commit point.

After the cutover the successors' metadata flips to *committed*
(manifest first, then meta:  :func:`~repro.cluster.state
.check_reshard_consistency` turns any manifest rollback across this
ordering into a refusal at open), the retired source worker is shut
down, and its directory is left in place — unreferenced by the
manifest, harmless, and still stamped with its pre-split epoch.

Answers are bit-identical before, during and after: before the flip
queries scatter over the old table (the successors exist but are not
routed to); after the flip the successors hold exactly the source's
POIs at its final LSN, and descriptor MBRs are computed from actual
POIs — not plan regions — so even points the source held out-of-region
(``routing_overflows``) keep being found.
"""

from __future__ import annotations

import os
import shutil
from typing import Any

from repro.cluster.coordinator import ClusterStateError
from repro.cluster.planner import ShardPlan, split_region
from repro.cluster.remote import RemoteClusterTree, RemoteShard, WorkerClient
from repro.cluster.resilience import ShardDescriptor, ShardGuard
from repro.cluster.state import (
    manifest_payload,
    write_manifest_payload,
    write_shard_meta,
)
from repro.cluster.workers import WorkerHandle
from repro.core.tar_tree import POI, TARTree
from repro.reliability.recovery import CheckpointedIngest, recover
from repro.reliability.wal import RECORD_DELETE, RECORD_INSERT
from repro.spatial.geometry import Rect

__all__ = ["ReshardPolicy", "maybe_split", "split_shard"]


class ReshardPolicy:
    """When the coordinator should split a shard on its own.

    ``max_pois`` splits the most loaded shard once it reaches that many
    POIs; ``max_overflows`` splits it once the cluster has absorbed
    that many out-of-region routings since the last split (growth has
    drifted past the plan).  A shard below ``min_pois`` is never split
    — two successors need something to hold.
    """

    def __init__(
        self,
        max_pois: int | None = None,
        max_overflows: int | None = None,
        min_pois: int = 4,
    ) -> None:
        if max_pois is None and max_overflows is None:
            raise ValueError(
                "a reshard policy needs max_pois and/or max_overflows"
            )
        self.max_pois = max_pois
        self.max_overflows = max_overflows
        self.min_pois = min_pois
        #: Overflow count at the last split, so the overflow trigger
        #: fires on *new* drift rather than once per tick forever.
        self._overflow_floor = 0

    def pick(self, remote: RemoteClusterTree) -> int | None:
        """The shard to split now, or ``None`` to leave the plan alone."""
        with remote._routing.read_locked():
            loads = [
                (remote._descriptors[shard.index].pois, shard.index)
                for shard in remote.shards
            ]
        with remote._counter_lock:
            overflows = remote.routing_overflows
        biggest, index = max(loads)
        if biggest < self.min_pois:
            return None
        if self.max_pois is not None and biggest >= self.max_pois:
            return index
        if (
            self.max_overflows is not None
            and overflows - self._overflow_floor >= self.max_overflows
        ):
            return index
        return None

    def note_split(self, remote: RemoteClusterTree) -> None:
        with remote._counter_lock:
            self._overflow_floor = remote.routing_overflows


def maybe_split(remote: RemoteClusterTree) -> int | None:
    """Split per the cluster's policy; returns the split index or None.

    A split already in flight (or a shard the policy picked but that
    cannot be split right now) is skipped silently — the next
    maintenance tick re-evaluates.
    """
    policy = remote.reshard_policy
    if policy is None:
        return None
    index = policy.pick(remote)
    if index is None:
        return None
    try:
        split_shard(remote, index)
    except (ClusterStateError, ValueError):
        return None
    policy.note_split(remote)
    return index


def _route_successor(low_region: Rect, high_region: Rect, point: Any) -> int:
    """0 for the low successor, 1 for the high — total, like the plan.

    Containment first (boundary points to the low cell, matching
    :meth:`ShardPlan.route`'s first-containing-region-wins), then
    MINDIST with ties to the low cell (matching :meth:`ShardPlan
    .nearest`) for out-of-region points the source held via overflow
    routing.
    """
    if low_region.contains_point(point):
        return 0
    if high_region.contains_point(point):
        return 1
    return 0 if low_region.min_dist(point) <= high_region.min_dist(point) else 1


def _build_successor_state(
    tree: TARTree,
    rows: list[tuple[POI, dict[int, int]]],
    directory: str,
    plan_epoch: int,
) -> None:
    """Bulk-load one successor tree and attach durable state to it.

    The directory must be fresh (a stale orphan from a crashed split
    must never leak its snapshot into a new one).  The metadata is
    stamped *uncommitted*; the cutover flips it after the manifest
    naming this directory is durable.
    """
    os.makedirs(directory, exist_ok=False)
    successor = TARTree(
        world=tree.world,
        clock=tree.clock,
        current_time=tree.current_time,
        strategy=tree.strategy,
        node_size=tree.node_size,
        tia_backend=tree.tia_backend,
        aggregate_kind=tree.aggregate_kind,
    )
    if rows:
        successor.bulk_load(rows)
    ingest = CheckpointedIngest(successor, directory, name="tree")
    ingest.close()
    write_shard_meta(directory, plan_epoch, committed=False)


def _replay_tail(
    records: list[list[Any]],
    clients: tuple[WorkerClient, WorkerClient],
    owner_of: dict[Any, int],
    low_region: Rect,
    high_region: Rect,
    timeout: float | None,
) -> None:
    """Replay a drained WAL tail into the successors, in LSN order."""
    for _lsn, record_type, payload in sorted(records, key=lambda r: r[0]):
        if record_type == RECORD_INSERT:
            poi_id, x, y, history = payload
            side = _route_successor(low_region, high_region, (x, y))
            clients[side].request(
                {
                    "op": "insert",
                    "poi_id": poi_id,
                    "point": [x, y],
                    "aggregates": history,
                },
                timeout=timeout,
            )
            owner_of[poi_id] = side
        elif record_type == RECORD_DELETE:
            (poi_id,) = payload
            side = owner_of.pop(poi_id, None)
            if side is not None:
                clients[side].request(
                    {"op": "delete", "poi_id": poi_id}, timeout=timeout
                )
        else:  # digest
            epoch_index, pairs = payload
            routed: dict[int, list[list[Any]]] = {}
            for poi_id, delta, _value_after in pairs:
                side = owner_of.get(poi_id)
                if side is not None:
                    routed.setdefault(side, []).append([poi_id, delta])
            for side in sorted(routed):
                clients[side].request(
                    {
                        "op": "digest",
                        "epoch": epoch_index,
                        "counts": routed[side],
                    },
                    timeout=timeout,
                )


def split_shard(remote: RemoteClusterTree, index: int) -> tuple[int, int]:
    """Split worker shard ``index`` online; see the module docs.

    Returns the successor shard indexes ``(low, high)`` — low in the
    source's slot, high appended.  Raises
    :class:`~repro.cluster.coordinator.ClusterStateError` when another
    split is already in flight, and cleans up the successor directories
    and processes on any failure before the commit point (the cluster
    keeps serving from the unchanged source).
    """
    with remote._counter_lock:
        if remote._resharding:
            raise ClusterStateError("a reshard is already in flight")
        remote._resharding = True
    try:
        return _split_claimed(remote, index)
    finally:
        with remote._counter_lock:
            remote._resharding = False


def _split_claimed(remote: RemoteClusterTree, index: int) -> tuple[int, int]:
    timeout = remote.request_timeout
    with remote._routing.read_locked():
        if not 0 <= index < len(remote.shards):
            raise ValueError("no shard %d to split" % index)
        source = remote.shards[index]
        region = remote.plan.regions[index]
        old_plan = remote.plan
        new_epoch = remote.plan_epoch + 1
        ordinal = remote.next_dir

    # ---- Phase A: build the successors; the source keeps serving. ----
    source.client.request({"op": "checkpoint"}, timeout=timeout)
    source_dir = os.path.join(remote.directory, source.dirname)
    report = recover(source_dir, name="tree")
    tree = report.tree
    base_lsn = tree.applied_lsn
    rows = [
        (tree.poi(poi_id), tree.poi_tia(poi_id).as_dict())
        for poi_id in tree.poi_ids()
    ]
    if len(rows) < 2:
        raise ValueError(
            "shard %d holds %d POI(s) — too few to split" % (index, len(rows))
        )
    low_region, high_region = split_region(
        region, [poi.point for poi, _history in rows]
    )
    sides = [
        _route_successor(low_region, high_region, poi.point)
        for poi, _history in rows
    ]
    low_rows = [row for row, side in zip(rows, sides) if side == 0]
    high_rows = [row for row, side in zip(rows, sides) if side == 1]
    owner_of = {row[0].poi_id: side for row, side in zip(rows, sides)}

    dirnames = ("shard-%d" % ordinal, "shard-%d" % (ordinal + 1))
    directories = tuple(
        os.path.join(remote.directory, dirname) for dirname in dirnames
    )
    handles: list[WorkerHandle] = []
    clients: list[WorkerClient] = []
    created: list[str] = []
    committed = False
    try:
        for directory, successor_rows in zip(
            directories, (low_rows, high_rows)
        ):
            _build_successor_state(tree, successor_rows, directory, new_epoch)
            created.append(directory)
        for position, directory in enumerate(directories):
            handle = WorkerHandle.spawn(directory)
            handles.append(handle)
            client = WorkerClient(
                handle.host,
                handle.port,
                index=index if position == 0 else len(old_plan),
            )
            clients.append(client)
            client.connect(timeout=timeout)

        # ---- Phase B: drain, replay, cut over (mutations quiesced). ----
        with remote._routing.write_locked():
            tail = source.client.request(
                {"op": "wal_tail", "after": base_lsn}, timeout=timeout
            )
            _replay_tail(
                tail["records"],
                (clients[0], clients[1]),
                owner_of,
                low_region,
                high_region,
                timeout,
            )
            hellos = [
                client.request({"op": "hello"}, timeout=timeout)
                for client in clients
            ]
            regions = list(old_plan.regions)
            regions[index] = low_region
            regions.append(high_region)
            new_plan = ShardPlan(regions, method=old_plan.method)
            low_shard = RemoteShard(
                index, low_region, dirnames[0], clients[0], handles[0]
            )
            high_shard = RemoteShard(
                len(regions) - 1,
                high_region,
                dirnames[1],
                clients[1],
                handles[1],
            )
            low_shard.manifest_lsn = hellos[0].get("applied_lsn")
            high_shard.manifest_lsn = hellos[1].get("applied_lsn")
            new_shards = list(remote.shards)
            new_shards[index] = low_shard
            new_shards.append(high_shard)
            old_guard = remote._guards[index]
            new_guards = list(remote._guards)
            new_guards[index] = ShardGuard(
                index, remote.resilience, on_event=remote._note_health
            )
            new_guards.append(
                ShardGuard(
                    high_shard.index,
                    remote.resilience,
                    on_event=remote._note_health,
                )
            )
            new_descriptors = list(remote._descriptors)
            new_descriptors[index] = ShardDescriptor()
            new_descriptors.append(ShardDescriptor())
            entries = [
                (shard.dirname, shard.manifest_lsn) for shard in new_shards
            ]
            payload = manifest_payload(
                remote.name,
                remote.parallelism,
                new_plan,
                entries,
                plan_epoch=new_epoch,
                next_dir=ordinal + 2,
            )
            write_manifest_payload(remote.directory, payload)
            committed = True
            # The commit point is durable; flip the routing table.
            remote.plan = new_plan
            remote.shards = new_shards
            remote._guards = new_guards
            remote._descriptors = new_descriptors
            remote.plan_epoch = new_epoch
            remote.next_dir = ordinal + 2
            remote._absorb_state(low_shard, hellos[0])
            remote._absorb_state(high_shard, hellos[1])
    except Exception:
        # Roll back only *before* the commit point.  Once the manifest
        # naming the successors is durable, terminating them or deleting
        # their directories would leave a cluster that refuses to open —
        # a post-commit failure keeps the committed state and surfaces.
        if committed:
            raise
        for client in clients:
            client.close()
        for handle in handles:
            handle.terminate()
        for directory in created:
            shutil.rmtree(directory, ignore_errors=True)
        raise

    # ---- Post-commit: flip the meta, retire the source worker. ----
    for directory in directories:
        write_shard_meta(directory, new_epoch, committed=True)
    try:
        source.client.request({"op": "shutdown"}, timeout=5.0)
    except Exception:
        pass
    source.client.close()
    if source.handle is not None:
        source.handle.join(timeout=5.0)
        if source.handle.alive:
            source.handle.terminate()
    old_guard.close()
    with remote._counter_lock:
        remote.reshards += 1
    return index, len(remote.plan) - 1
