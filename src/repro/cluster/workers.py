"""Out-of-process shard workers: one shard per process, JSON-lines wire.

A *shard worker* owns everything PR 5/6 gave an in-process shard — the
shard's TAR-tree, its write-ahead log (:class:`~repro.reliability
.recovery.CheckpointedIngest`) and its CRC scrubber — inside its own
process, behind a JSON-lines TCP socket speaking the same framing as
``repro serve`` (one request object per line, one response per line,
every frame carrying the ``proto`` wire version).  The coordinator side
(:class:`~repro.cluster.remote.RemoteClusterTree`) holds only
descriptors and sockets, so shard searches run on real cores instead of
time-slicing one GIL.

Startup *is* recovery: a worker opens its shard directory exactly like
:func:`~repro.reliability.recovery.recover` — snapshot + WAL tail — so
restarting a killed worker is the online-recovery story of PR 6 with a
process boundary around it.

Worker ops (beyond the shared ``hello`` / ``shutdown`` frames):

``query`` / ``batch``
    One kNNTA search (or a list of them, under a single read lock) with
    the *cluster-level* normaliser pushed down as ``[d_max, g_max]`` —
    a shard normalising against its own local maxima would break
    cross-shard score comparability, so the exact constants ride the
    wire (JSON floats round-trip exactly; answers stay bit-identical).
``insert`` / ``delete`` / ``digest``
    Routed mutations through the shard WAL under the write lock; every
    response returns the refreshed descriptor (root MBR, per-epoch
    maxima, POI count) so the coordinator's pruning-bound cache stays
    synchronous with the mutation, exactly as in-process refresh does.
``wal_tail``
    The WAL records after a given LSN, read under the write lock — the
    drain half of a live reshard (:mod:`repro.cluster.reshard`).
``contains`` / ``health`` / ``checkpoint`` / ``scrub``
    Ownership probes and the durability/maintenance surface.

The worker announces its bound endpoint by atomically writing
``worker.json`` into its shard directory (spawners poll for it), so
``repro shard-worker`` and :meth:`WorkerHandle.spawn` discover ports
the same way.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socketserver
import threading
import time
from multiprocessing.process import BaseProcess
from typing import Any, BinaryIO, Callable, TypeVar

from repro.cluster.resilience import ShardDescriptor
from repro.core.query import KNNTAQuery, Normalizer
from repro.core.tar_tree import POI
from repro.devtools.lockmodel import SHARD_RW
from repro.reliability.recovery import CheckpointedIngest, recover
from repro.reliability.wal import RECORD_CHECKPOINT, read_wal
from repro.service.locks import ReadWriteLock
from repro.service.server import PROTO_VERSION, proto_mismatch_response
from repro.service.scrubber import Scrubber
from repro.spatial.geometry import Rect
from repro.temporal.epochs import TimeInterval
from repro.temporal.tia import IntervalSemantics

__all__ = [
    "ANNOUNCE_NAME",
    "ShardWorkerServer",
    "WorkerHandle",
    "run_worker",
]

#: Endpoint-announce file a worker writes into its shard directory.
ANNOUNCE_NAME = "worker.json"

#: Stable redaction for unexpected worker failures (mirrors the
#: service front end: internal text never crosses the wire).
INTERNAL_ERROR_MESSAGE = "internal worker error; details logged worker-side"

#: Exception shapes a malformed payload produces while being parsed.
#: Only the *parse* stage maps these to ``bad-request`` — the same
#: types raised by tree/WAL operations are internal worker bugs and
#: take the redacted internal-error path instead.
_PARSE_ERRORS = (ValueError, KeyError, IndexError, TypeError)

_T = TypeVar("_T")


class _BadRequest(Exception):
    """The request payload is malformed; the worker is healthy."""


def _parsed(parse: Callable[[], _T]) -> _T:
    """Run one op's payload extraction; shape errors → ``bad-request``.

    Keeps the caller-error classification confined to payload parsing:
    a ``KeyError``/``TypeError`` escaping the op's *execution* is a
    worker-side bug and must be redacted, not echoed to the caller.
    """
    try:
        return parse()
    except _PARSE_ERRORS as exc:
        raise _BadRequest(
            "malformed request: %s: %s" % (type(exc).__name__, exc)
        ) from exc


def _parse_query(payload: dict[str, Any]) -> KNNTAQuery:
    point = payload["point"]
    lo, hi = payload["interval"]
    return KNNTAQuery(
        point=(float(point[0]), float(point[1])),
        interval=TimeInterval(lo, hi),
        k=int(payload.get("k", 10)),
        alpha0=float(payload.get("alpha0", 0.3)),
        semantics=IntervalSemantics(payload.get("semantics", "intersects")),
    )


def _parse_normalizer(payload: dict[str, Any]) -> Normalizer:
    # Direct construction, not .create(): the coordinator's exact
    # constants must be used verbatim for bit-identical scores.
    d_max, g_max = payload["normalizer"]
    return Normalizer(float(d_max), float(g_max))


def _rect_pair(rect: Rect) -> list[list[float]]:
    return [list(rect.lows), list(rect.highs)]


def _describe(descriptor: ShardDescriptor) -> dict[str, Any]:
    """The descriptor's wire shape (epoch maxima as pairs, not keys)."""
    return {
        "mbr": None if descriptor.mbr is None else _rect_pair(descriptor.mbr),
        "epoch_max": sorted(descriptor.epoch_max.items()),
        "pois": descriptor.pois,
    }


class ShardWorkerServer:
    """Serve one shard directory over a JSON-lines TCP socket.

    Construction recovers the shard (snapshot + WAL replay), attaches a
    fresh :class:`CheckpointedIngest` riding the same WAL, and binds the
    listener; :meth:`serve_forever` (or :meth:`start` for embedding)
    runs the accept loop.  Port 0 lets the OS pick — the effective
    endpoint is in ``address`` and in the announce file.
    """

    def __init__(self, directory: str, host: str = "127.0.0.1",
                 port: int = 0, name: str = "tree") -> None:
        self.directory = directory
        self.name = name
        report = recover(directory, name=name)
        self.tree = report.tree
        self.ingest = CheckpointedIngest(self.tree, directory, name=name)
        self.lock = ReadWriteLock(SHARD_RW)
        self.descriptor = ShardDescriptor()
        with self.lock.read_locked():
            self.descriptor.refresh(self.tree)
        manifest_path = (
            self.ingest.snapshot_path.rsplit(".json", 1)[0] + ".scrub.json"
        )
        self.scrubber = Scrubber(self.tree, self.lock,
                                 manifest_path=manifest_path)
        self.tree.add_mutation_observer(self.scrubber.observe_mutation)
        self.errors = 0
        self.last_error: str | None = None
        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                wfile: BinaryIO = self.wfile
                for raw in self.rfile:
                    raw = raw.strip()
                    if not raw:
                        continue
                    response = outer.handle_request(raw)
                    data = json.dumps(response, sort_keys=True) + "\n"
                    try:
                        wfile.write(data.encode("utf-8"))
                        wfile.flush()
                    except (OSError, ValueError):
                        return
                    if response.get("bye"):
                        threading.Thread(
                            target=outer._server.shutdown, daemon=True
                        ).start()
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self.address: tuple[str, int] = self._server.server_address[:2]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def handle_request(self, raw: bytes | str) -> dict[str, Any]:
        """Decode one request line and dispatch it; never raises."""
        response = self._dispatch(raw)
        response.setdefault("proto", PROTO_VERSION)
        return response

    def _dispatch(self, raw: bytes | str) -> dict[str, Any]:
        try:
            payload = _parsed(
                lambda: json.loads(
                    raw.decode("utf-8") if isinstance(raw, bytes) else raw
                )
            )
            if not isinstance(payload, dict):
                raise _BadRequest("request must be a JSON object")
            announced = payload.get("proto", PROTO_VERSION)
            if announced != PROTO_VERSION:
                return proto_mismatch_response(announced)
            op = payload.get("op")
            if op == "hello":
                return self._op_hello()
            if op == "query":
                return self._op_query(payload)
            if op == "batch":
                return self._op_batch(payload)
            if op == "insert":
                return self._op_insert(payload)
            if op == "delete":
                return self._op_delete(payload)
            if op == "digest":
                return self._op_digest(payload)
            if op == "contains":
                poi_id = _parsed(lambda: payload["poi_id"])
                with self.lock.read_locked():
                    return {"ok": True, "contains": poi_id in self.tree}
            if op == "wal_tail":
                return self._op_wal_tail(payload)
            if op == "checkpoint":
                return self._op_checkpoint()
            if op == "scrub":
                checked = self.scrubber.tick(payload.get("budget"))
                return {"ok": True, "nodes_checked": checked}
            if op == "health":
                return self._op_health()
            if op == "shutdown":
                return {"ok": True, "bye": True}
            raise _BadRequest("unknown op %r" % (op,))
        except _BadRequest as exc:
            return {"ok": False, "code": "bad-request", "error": str(exc)}
        except ValueError as exc:
            # Deliberate domain refusals (duplicate POI id, invalid
            # query parameters) — caller errors, worded worker-side.
            return {"ok": False, "code": "bad-request", "error": str(exc)}
        except Exception as exc:  # redact; keep the connection alive
            self.errors += 1
            self.last_error = "%s: %s" % (type(exc).__name__, exc)
            return {"ok": False, "code": "error",
                    "error": INTERNAL_ERROR_MESSAGE}

    # -- read path ------------------------------------------------------

    def _op_hello(self) -> dict[str, Any]:
        with self.lock.read_locked():
            clock = self.tree.clock
            return {
                "ok": True,
                "proto": PROTO_VERSION,
                "pid": os.getpid(),
                "name": self.name,
                "directory": self.directory,
                "applied_lsn": self.tree.applied_lsn,
                "pois": len(self.tree),
                "current_time": self.tree.current_time,
                "world": _rect_pair(self.tree.world),
                "clock": [clock.t0, clock.epoch_length],
                "aggregate_kind": self.tree.aggregate_kind.value,
                "descriptor": _describe(self.descriptor),
            }

    def _query_rows(
        self, query: KNNTAQuery, normalizer: Normalizer
    ) -> list[list[Any]]:
        """One search against the pushed-down normaliser (lock held)."""
        answer = self.tree.query(query, normalizer=normalizer)
        return [
            [row.poi_id, row.score, row.distance, row.aggregate]
            for row in answer.rows
        ]

    def _op_query(self, payload: dict[str, Any]) -> dict[str, Any]:
        query, normalizer = _parsed(
            lambda: (_parse_query(payload), _parse_normalizer(payload))
        )
        with self.lock.read_locked():
            if not self.tree.root.entries:
                return {"ok": True, "results": []}
            return {"ok": True,
                    "results": self._query_rows(query, normalizer)}

    def _op_batch(self, payload: dict[str, Any]) -> dict[str, Any]:
        riders = _parsed(
            lambda: [
                (_parse_query(rider), _parse_normalizer(rider))
                for rider in payload["queries"]
            ]
        )
        # All riders under one read lock: a consistent snapshot, exactly
        # like the in-process shard's collective run.
        with self.lock.read_locked():
            if not self.tree.root.entries:
                return {"ok": True, "results": [[] for _ in riders]}
            results = [
                self._query_rows(query, normalizer)
                for query, normalizer in riders
            ]
        return {"ok": True, "results": results}

    # -- mutations ------------------------------------------------------

    def _mutation_footer(self) -> dict[str, Any]:
        """State every mutation response carries (write lock held)."""
        self.descriptor.refresh(self.tree)
        return {
            "descriptor": _describe(self.descriptor),
            "applied_lsn": self.tree.applied_lsn,
            "pois": len(self.tree),
            "current_time": self.tree.current_time,
        }

    def _op_insert(self, payload: dict[str, Any]) -> dict[str, Any]:
        def parse() -> tuple[POI, dict[int, int]]:
            point = payload["point"]
            aggregates = {
                int(epoch): int(value)
                for epoch, value in payload.get("aggregates") or []
            }
            return POI(payload["poi_id"], point[0], point[1]), aggregates

        poi, aggregates = _parsed(parse)
        with self.lock.write_locked():
            lsn = self.ingest.insert(poi, aggregates or None)
            response = {"ok": True, "lsn": lsn}
            response.update(self._mutation_footer())
            return response

    def _op_delete(self, payload: dict[str, Any]) -> dict[str, Any]:
        poi_id = _parsed(lambda: payload["poi_id"])
        with self.lock.write_locked():
            lsn = self.ingest.delete(poi_id)
            response = {"ok": True, "deleted": lsn is not None, "lsn": lsn}
            response.update(self._mutation_footer())
            return response

    def _op_digest(self, payload: dict[str, Any]) -> dict[str, Any]:
        def parse() -> tuple[int, dict[Any, int]]:
            counts = {poi_id: count for poi_id, count in payload["counts"]}
            return int(payload["epoch"]), counts

        epoch, counts = _parsed(parse)
        with self.lock.write_locked():
            lsn = self.ingest.digest(epoch, counts)
            response = {"ok": True, "digested": len(counts), "lsn": lsn}
            response.update(self._mutation_footer())
            return response

    # -- durability / reshard / maintenance -----------------------------

    def _op_wal_tail(self, payload: dict[str, Any]) -> dict[str, Any]:
        after = payload.get("after")
        if after is not None and (
            isinstance(after, bool) or not isinstance(after, int)
        ):
            raise _BadRequest("wal_tail 'after' must be an integer LSN")
        # Under the *write* lock: no mutation is mid-append, so the tail
        # read here is a complete drain up to a quiescent LSN.  The log
        # path comes from the live ingest (a legacy directory appends to
        # '<name>.digestlog' — reading a hardcoded '.wal' there would
        # silently drain nothing).
        with self.lock.write_locked():
            records, _dropped = read_wal(self.ingest.log_path)
            if after is not None:
                for record in records:
                    if record.type != RECORD_CHECKPOINT:
                        continue
                    marker = record.payload[0] if record.payload else None
                    if marker is not None and marker > after:
                        # A checkpoint compacted (after, marker] out of
                        # the log: the requested tail is non-contiguous
                        # and a drain built on it would lose mutations.
                        return {
                            "ok": False,
                            "code": "wal-tail-gap",
                            "error": "WAL records after LSN %d were "
                            "compacted by a checkpoint at LSN %d; the "
                            "tail is no longer contiguous" % (after, marker),
                        }
            tail = [
                [record.lsn, record.type, record.payload]
                for record in records
                if record.type != RECORD_CHECKPOINT
                and (after is None or record.lsn > after)
            ]
            return {
                "ok": True,
                "records": tail,
                "applied_lsn": self.tree.applied_lsn,
            }

    def _op_checkpoint(self) -> dict[str, Any]:
        with self.lock.write_locked():
            path = self.ingest.checkpoint()
            lsn = self.tree.applied_lsn
        self.scrubber.persist_manifest()
        return {"ok": True, "path": path, "applied_lsn": lsn}

    def _op_health(self) -> dict[str, Any]:
        with self.lock.read_locked():
            return {
                "ok": True,
                "pid": os.getpid(),
                "pois": len(self.tree),
                "applied_lsn": self.tree.applied_lsn,
                "current_time": self.tree.current_time,
                "errors": self.errors,
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def announce(self, path: str | None = None) -> str:
        """Atomically write the endpoint-announce file; returns its path."""
        if path is None:
            path = os.path.join(self.directory, ANNOUNCE_NAME)
        payload = {
            "host": self.address[0],
            "port": self.address[1],
            "pid": os.getpid(),
            "proto": PROTO_VERSION,
            "name": self.name,
        }
        temp_path = path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        return path

    def start(self) -> "ShardWorkerServer":
        """Serve on a background daemon thread (embedding/tests)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-shard-worker", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.ingest.close()


def run_worker(directory: str, host: str = "127.0.0.1", port: int = 0,
               name: str = "tree", announce: str | None = None) -> None:
    """Spawn target / CLI entry: recover the shard, announce, serve.

    Module-level so ``multiprocessing``'s spawn start method (the only
    one safe alongside the coordinator's threads) can import it.
    """
    worker = ShardWorkerServer(directory, host=host, port=port, name=name)
    worker.announce(announce)
    worker.serve_forever()


class WorkerHandle:
    """A spawned worker process plus its discovered endpoint."""

    def __init__(self, directory: str, process: BaseProcess,
                 endpoint: dict[str, Any]) -> None:
        self.directory = directory
        self.process = process
        self.endpoint = endpoint
        self.host: str = str(endpoint["host"])
        self.port: int = int(endpoint["port"])

    @classmethod
    def spawn(cls, directory: str, host: str = "127.0.0.1",
              name: str = "tree", timeout: float = 30.0) -> "WorkerHandle":
        """Start a worker process over ``directory`` and wait for its
        endpoint announce.  A stale announce from a killed predecessor
        is removed first, so the endpoint read is always the new
        process's."""
        announce_path = os.path.join(directory, ANNOUNCE_NAME)
        try:
            os.remove(announce_path)
        except FileNotFoundError:
            pass
        context = multiprocessing.get_context("spawn")
        process = context.Process(
            target=run_worker,
            args=(directory, host, 0, name, announce_path),
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + timeout
        while True:
            try:
                with open(announce_path, "r", encoding="utf-8") as handle:
                    endpoint = json.load(handle)
                break
            except (FileNotFoundError, ValueError):
                pass
            if not process.is_alive():
                raise RuntimeError(
                    "shard worker for %s died during startup (exit code %r)"
                    % (directory, process.exitcode)
                )
            if time.monotonic() > deadline:
                process.terminate()
                raise RuntimeError(
                    "shard worker for %s did not announce within %.1fs"
                    % (directory, timeout)
                )
            time.sleep(0.01)
        return cls(directory, process, endpoint)

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (chaos: no cleanup, no WAL flush)."""
        self.process.kill()
        self.process.join(timeout=10.0)

    def terminate(self) -> None:
        self.process.terminate()
        self.process.join(timeout=10.0)

    def join(self, timeout: float | None = None) -> None:
        self.process.join(timeout)
