"""Statistical analysis substrate: discrete power-law fitting.

Section 6.1 fits power laws to the per-POI aggregate distributions with
the method of Clauset, Shalizi & Newman (2009): maximum-likelihood
exponent, KS-minimising lower bound and a semi-parametric bootstrap
goodness-of-fit p-value (Table 2).
"""

from repro.analysis.concentration import (
    gini_coefficient,
    lorenz_curve,
    pareto_share,
)
from repro.analysis.powerlaw import (
    GoodnessOfFit,
    PowerLawFit,
    fit_discrete_powerlaw,
    goodness_of_fit,
    powerlaw_cdf,
    sample_discrete_powerlaw,
)

__all__ = [
    "PowerLawFit",
    "GoodnessOfFit",
    "fit_discrete_powerlaw",
    "goodness_of_fit",
    "powerlaw_cdf",
    "sample_discrete_powerlaw",
    "pareto_share",
    "gini_coefficient",
    "lorenz_curve",
]
