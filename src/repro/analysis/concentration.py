"""Concentration statistics for aggregate distributions.

Section 6.1 motivates the power-law model with the classic observation
that "a small number of the POIs [have] a large proportion of the
check-ins (roughly 80% of the check-ins are at 20% of the POIs)".
These helpers quantify that concentration for any observed aggregate
distribution — useful both for validating generated data sets and for
deciding whether the integral-3D strategy's aggregate dimension will
carry signal on a new workload.
"""

import numpy as np


def pareto_share(values, top_fraction=0.2):
    """Share of the total mass held by the top ``top_fraction`` of items.

    ``pareto_share(checkin_totals, 0.2)`` close to 0.8 is the paper's
    80/20 observation.  Returns 0 for an empty or all-zero input.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1], got %r" % (top_fraction,))
    data = np.sort(np.asarray(list(values), dtype=np.float64))[::-1]
    total = data.sum()
    if data.size == 0 or total <= 0:
        return 0.0
    top_count = max(1, int(round(data.size * top_fraction)))
    return float(data[:top_count].sum() / total)


def gini_coefficient(values):
    """Gini coefficient of the distribution (0 = equal, -> 1 = concentrated).

    Uses the standard mean-absolute-difference formulation on the sorted
    sample.
    """
    data = np.sort(np.asarray(list(values), dtype=np.float64))
    if data.size == 0:
        return 0.0
    total = data.sum()
    if total <= 0:
        return 0.0
    n = data.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * data).sum() / (n * total)) - (n + 1.0) / n)


def lorenz_curve(values, points=11):
    """Sampled Lorenz curve: ``(population share, mass share)`` pairs.

    The first pair is (0, 0) and the last (1, 1); ``points`` controls the
    sampling resolution.
    """
    if points < 2:
        raise ValueError("points must be >= 2")
    data = np.sort(np.asarray(list(values), dtype=np.float64))
    if data.size == 0 or data.sum() <= 0:
        return [(i / (points - 1.0), i / (points - 1.0)) for i in range(points)]
    cumulative = np.concatenate([[0.0], np.cumsum(data)])
    cumulative /= cumulative[-1]
    curve = []
    for i in range(points):
        fraction = i / (points - 1.0)
        index = fraction * data.size
        low = int(np.floor(index))
        high = min(data.size, low + 1)
        weight = index - low
        value = cumulative[low] * (1 - weight) + cumulative[high] * weight
        curve.append((fraction, float(value)))
    return curve
