"""Discrete power-law fitting (Clauset, Shalizi & Newman, 2009).

The paper's Table 2 fits ``p(x) = x^-beta / zeta(beta, x_min)`` to the
per-POI aggregate values of each data set and reports the estimated
``beta``, the KS-minimising lower bound ``x_min`` and a bootstrap
goodness-of-fit p-value ("the power-law hypothesis is ruled out if
p-value <= 0.1").  This module implements the full recipe:

* ``beta`` by numerical maximum likelihood (Hurwitz-zeta normalised);
* ``x_min`` by scanning candidates and minimising the KS distance
  between the empirical tail and the fitted model;
* the p-value by the semi-parametric bootstrap: synthetic data sets mix
  draws from the fitted tail with resamples of the empirical body, are
  re-fitted from scratch, and the p-value is the fraction whose KS
  distance exceeds the observed one.
"""

import math
from typing import NamedTuple

import numpy as np
from scipy.optimize import minimize_scalar
from scipy.special import zeta as hurwitz_zeta

_BETA_BOUNDS = (1.05, 8.0)


class PowerLawFit(NamedTuple):
    """A fitted discrete power law."""

    beta: float
    xmin: int
    ks_distance: float
    n_tail: int
    n_total: int


class GoodnessOfFit(NamedTuple):
    """Bootstrap goodness-of-fit for a :class:`PowerLawFit`."""

    p_value: float
    ks_observed: float
    n_bootstrap: int

    @property
    def plausible(self):
        """True when the power-law hypothesis survives (p-value > 0.1)."""
        return self.p_value > 0.1


def powerlaw_cdf(x, beta, xmin):
    """``P(X <= x)`` for the discrete power law with support ``>= xmin``."""
    x = np.asarray(x, dtype=np.float64)
    tail = hurwitz_zeta(beta, np.floor(x) + 1.0) / hurwitz_zeta(beta, xmin)
    return 1.0 - tail


def _mle_beta(tail_values, xmin):
    """Numerical maximum-likelihood exponent for a tail sample."""
    log_sum = float(np.sum(np.log(tail_values)))
    n = len(tail_values)

    def nll(beta):
        return n * math.log(hurwitz_zeta(beta, xmin)) + beta * log_sum

    result = minimize_scalar(nll, bounds=_BETA_BOUNDS, method="bounded")
    return float(result.x)


def _ks_distance(tail_values, beta, xmin):
    """KS distance between the empirical tail CDF and the model CDF.

    For discrete data the statistic compares the two CDFs at the observed
    values directly (Clauset et al., eq. 3.9) — the continuous two-sided
    convention would report spurious gaps at every atom.
    """
    values = np.asarray(tail_values, dtype=np.float64)
    unique, counts = np.unique(values, return_counts=True)
    empirical = np.cumsum(counts) / values.size  # P(X <= x)
    model = powerlaw_cdf(unique, beta, xmin)
    return float(np.max(np.abs(empirical - model)))


def fit_discrete_powerlaw(data, xmin=None, xmin_candidates=None, max_candidates=80):
    """Fit a discrete power law to positive integer observations.

    Parameters
    ----------
    data:
        Iterable of positive values (non-positive entries are dropped).
    xmin:
        Fix the lower bound instead of estimating it.
    xmin_candidates:
        Candidate lower bounds to scan (defaults to the unique observed
        values, thinned to at most ``max_candidates``).
    """
    values = np.asarray([v for v in data if v > 0], dtype=np.int64)
    if values.size < 2:
        raise ValueError("need at least two positive observations")
    if xmin is not None:
        xmin = int(xmin)
        tail = values[values >= xmin]
        if tail.size < 2:
            raise ValueError("fewer than two observations above xmin=%d" % xmin)
        beta = _mle_beta(tail, xmin)
        ks = _ks_distance(tail, beta, xmin)
        return PowerLawFit(beta, xmin, ks, int(tail.size), int(values.size))

    if xmin_candidates is None:
        unique = np.unique(values)
        if unique.size > max_candidates:
            picks = np.linspace(0, unique.size - 1, max_candidates).astype(int)
            unique = unique[np.unique(picks)]
        xmin_candidates = unique.tolist()

    best = None
    for candidate in xmin_candidates:
        candidate = int(candidate)
        tail = values[values >= candidate]
        if tail.size < 10:
            continue
        beta = _mle_beta(tail, candidate)
        ks = _ks_distance(tail, beta, candidate)
        if best is None or ks < best.ks_distance:
            best = PowerLawFit(beta, candidate, ks, int(tail.size), int(values.size))
    if best is None:
        raise ValueError("no viable xmin candidate (tails all too small)")
    return best


def sample_discrete_powerlaw(rng, beta, xmin, size, exact_cap=100000):
    """Draw discrete power-law variates ``>= xmin``.

    Exact inverse-CDF sampling over ``[xmin, exact_cap]`` (Clauset et al.
    appendix D); the vanishing mass beyond the cap falls back to the
    continuous approximation ``floor((c - 1/2)(1 - u)^(-1/(beta-1)) + 1/2)``,
    where the approximation error is negligible.  The exact table matters
    for small ``xmin``, where the pure approximation visibly biases the
    first few atoms and would distort goodness-of-fit p-values.
    """
    xmin = int(xmin)
    support = np.arange(xmin, exact_cap + 1, dtype=np.float64)
    pmf = support ** (-beta) / hurwitz_zeta(beta, xmin)
    cdf = np.cumsum(pmf)
    u = rng.random(size)
    indices = np.searchsorted(cdf, u, side="left")
    result = np.empty(size, dtype=np.int64)
    in_table = indices < support.size
    result[in_table] = (xmin + indices[in_table]).astype(np.int64)
    overflow = ~in_table
    if overflow.any():
        # Conditional tail beyond the table: continuous approximation
        # re-anchored at the cap.
        v = rng.random(int(overflow.sum()))
        result[overflow] = np.floor(
            (exact_cap + 0.5) * np.power(1.0 - v, -1.0 / (beta - 1.0)) + 0.5
        ).astype(np.int64)
    return result


def goodness_of_fit(data, fit=None, n_bootstrap=100, seed=0, refit_kwargs=None):
    """Semi-parametric bootstrap p-value for the power-law hypothesis.

    Each synthetic data set keeps the empirical body (values below
    ``xmin``) with probability ``1 - n_tail/n`` and draws from the fitted
    tail otherwise, then is re-fitted from scratch; the p-value is the
    fraction of synthetic KS distances at least the observed one.
    Clauset et al. suggest rejecting the hypothesis when the p-value is
    <= 0.1.
    """
    values = np.asarray([v for v in data if v > 0], dtype=np.int64)
    if fit is None:
        fit = fit_discrete_powerlaw(values)
    refit_kwargs = dict(refit_kwargs or {})
    rng = np.random.default_rng(seed)
    body = values[values < fit.xmin]
    n = values.size
    tail_probability = fit.n_tail / n
    exceed = 0
    for _ in range(n_bootstrap):
        from_tail = rng.random(n) < tail_probability
        n_tail = int(from_tail.sum())
        synthetic = np.empty(n, dtype=np.int64)
        if n_tail:
            synthetic[:n_tail] = sample_discrete_powerlaw(rng, fit.beta, fit.xmin, n_tail)
        n_body = n - n_tail
        if n_body:
            if body.size:
                synthetic[n_tail:] = rng.choice(body, size=n_body)
            else:
                synthetic[n_tail:] = sample_discrete_powerlaw(
                    rng, fit.beta, fit.xmin, n_body
                )
        try:
            synthetic_fit = fit_discrete_powerlaw(synthetic, **refit_kwargs)
        except ValueError:
            continue
        if synthetic_fit.ks_distance >= fit.ks_distance:
            exceed += 1
    return GoodnessOfFit(exceed / float(n_bootstrap), fit.ks_distance, n_bootstrap)
