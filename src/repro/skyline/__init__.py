"""Skyline algorithms.

The MWA pruning algorithm (Section 7.1) reduces the minimum weight
adjustment to two skylines in the ``(s_0, s_1)`` score space: the skyline
of the lower-ranked POIs and the reverse skyline (maximal points) of the
top-k.  This package provides:

* :mod:`repro.skyline.bnl` — block-nested-loop skyline over in-memory
  point lists (used for the top-k side and as a test oracle).
* :mod:`repro.skyline.bbs` — branch-and-bound skyline (Papadias et al.)
  over the TAR-tree, counting node accesses.
"""

from repro.skyline.bnl import dominates, skyline_of_points
from repro.skyline.bbs import bbs_skyline

__all__ = ["dominates", "skyline_of_points", "bbs_skyline"]
