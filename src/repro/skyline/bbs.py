"""Branch-and-bound skyline (BBS) over the TAR-tree.

BBS (Papadias et al., SIGMOD 2003) runs best-first on an R-tree using the
L1 distance of each entry's lower-left corner, pruning entries dominated
by the skyline found so far.  Here the two dimensions are the kNNTA
score components ``s_0`` (normalised spatial distance) and ``s_1``
(``1 -`` normalised aggregate): an entry's MBR MINDIST lower-bounds every
child's ``s_0`` and its TIA aggregate upper-bounds every child's
aggregate, so the entry's corner lower-bounds ``(s_0, s_1)`` — exactly
the property BBS needs.  The paper notes the TAR-tree "also enables
efficient answering of the skyline query"; this is that algorithm, used
by the MWA pruning approach (Section 7.1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, cast

from repro.skyline.bnl import dominates

if TYPE_CHECKING:
    from repro.core.query import KNNTAQuery, Normalizer
    from repro.core.tar_tree import TARTree
    from repro.spatial.rstar import Entry, Node


def _corner(
    tree: TARTree, entry: Entry, query: KNNTAQuery, normalizer: Normalizer
) -> tuple[float, float]:
    distance, aggregate = normalizer.components(
        entry.mbr.min_dist(query.point),
        tree.tia_aggregate(entry.tia, query.interval, query.semantics),
    )
    return (distance, 1.0 - aggregate)


def bbs_skyline(
    tree: TARTree,
    query: KNNTAQuery,
    normalizer: Normalizer | None = None,
    exclude: frozenset[Any] = frozenset(),
) -> list[tuple[Any, tuple[float, float]]]:
    """Skyline of the POIs of ``tree`` in kNNTA score space.

    Parameters
    ----------
    tree / query:
        The TAR-tree and the query supplying the point, interval,
        semantics and (via ``normalizer``) the score normalisation.
    exclude:
        POI ids to ignore — the MWA algorithm excludes the top-k.

    Returns ``[(poi_id, (s0, s1)), ...]`` in ascending ``s0 + s1`` order.
    Node accesses are recorded into ``tree.stats``.
    """
    if normalizer is None:
        normalizer = tree.normalizer(query.interval, query.semantics)
    root = tree.root
    if not root.entries:
        return []
    skyline: list[tuple[Any, tuple[float, float]]] = []
    heap: list[tuple[float, int, tuple[float, float], Entry]] = []
    tie = itertools.count()
    tree.record_node_access(root)
    for entry in root.entries:
        corner = _corner(tree, entry, query, normalizer)
        heapq.heappush(heap, (corner[0] + corner[1], next(tie), corner, entry))
    while heap:
        _, _, corner, entry = heapq.heappop(heap)
        if any(dominates(point, corner) for _, point in skyline):
            continue
        if entry.is_leaf_entry:
            if entry.item not in exclude:
                skyline.append((entry.item, corner))
            continue
        child = cast("Node", entry.child)
        tree.record_node_access(child)
        for child_entry in child.entries:
            child_corner = _corner(tree, child_entry, query, normalizer)
            if any(dominates(point, child_corner) for _, point in skyline):
                continue
            heapq.heappush(
                heap,
                (
                    child_corner[0] + child_corner[1],
                    next(tie),
                    child_corner,
                    child_entry,
                ),
            )
    return skyline
