"""Block-nested-loop skyline over in-memory points.

Points are tuples of comparable coordinates; *smaller is better* in every
dimension by default (``reverse=True`` flips to larger-is-better, the
"dominating condition reversed" form the MWA algorithm applies to the
top-k POIs).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def dominates(a: Sequence[float], b: Sequence[float], reverse: bool = False) -> bool:
    """True when ``a`` dominates ``b``.

    With ``reverse=False``: ``a`` is no worse (<=) in every dimension and
    strictly better (<) in at least one.  With ``reverse=True`` the
    comparisons flip.
    """
    strictly_better = False
    if reverse:
        for av, bv in zip(a, b):
            if av < bv:
                return False
            if av > bv:
                strictly_better = True
    else:
        for av, bv in zip(a, b):
            if av > bv:
                return False
            if av < bv:
                strictly_better = True
    return strictly_better


def skyline_of_points(
    points: Iterable[tuple[float, ...]], reverse: bool = False
) -> list[tuple[float, ...]]:
    """Return the skyline (Pareto-optimal subset) of ``points``.

    Duplicates of skyline points are kept once.  The classic
    block-nested-loop: maintain a window of incomparable points and test
    each candidate against it.
    """
    window: list[tuple[float, ...]] = []
    for point in points:
        dominated = False
        survivors: list[tuple[float, ...]] = []
        for kept in window:
            if dominates(kept, point, reverse):
                dominated = True
                break
            if not dominates(point, kept, reverse):
                survivors.append(kept)
        if dominated:
            continue
        survivors.append(point)
        window = survivors
    # Deduplicate exact ties while preserving order.
    seen: set[tuple[float, ...]] = set()
    unique: list[tuple[float, ...]] = []
    for point in window:
        if point not in seen:
            seen.add(point)
            unique.append(point)
    return unique
