"""JSON-lines-over-TCP front end for :class:`QueryService` (stdlib only).

One request per line, one response per line.  Requests are JSON objects
with an ``"op"`` key; every response carries ``"ok"`` (bool) plus either
the op's payload or ``{"error": ..., "code": ...}``.  Supported ops:

``ping``
    ``{"op": "ping"}`` → ``{"ok": true, "pong": true}``
``hello``
    ``{"op": "hello", "proto": 1}`` → ``{"ok": true, "hello": ...,
    "proto": 1}``.  Every response frame carries ``"proto"`` (the
    server's wire-protocol version); any request may carry one, and a
    mismatch is refused with the stable ``proto-mismatch`` error code
    instead of whatever shape drift would otherwise break first.
``query``
    ``{"op": "query", "point": [x, y], "interval": [lo, hi], "k": 3,
    "alpha0": 0.3, "semantics": "intersects"}`` → ranked ``results``
    rows plus the executing batch's shared ``cost`` and ``batch_size``.
    Optional ``timeout`` seconds.  Every response carries
    ``"degraded"``; a degraded answer (cluster serving with a shard
    down, accepted under the coordinator's ``allow_degraded`` policy)
    additionally reports ``coverage``, ``missed_shards`` and
    ``score_bound`` — see ``docs/SERVICE.md``.  A strict coordinator
    maps the condition to the ``degraded`` error code instead.
``insert``
    ``{"op": "insert", "poi_id": ..., "point": [x, y],
    "aggregates": [[epoch, agg], ...]}``
``delete``
    ``{"op": "delete", "poi_id": ...}`` → ``{"deleted": bool}``
``digest``
    ``{"op": "digest", "epoch": 7, "counts": [[poi_id, count], ...]}``
``stats``
    The :meth:`QueryService.stats` snapshot.
``health``
    The :meth:`QueryService.health` report: per-shard breaker/guard
    state, descriptor freshness, recent shard events.
``scrub``
    Run one scrubber tick (optional ``budget``).
``subscribe``
    ``{"op": "subscribe", "point": [x, y], "window": 3, "k": 5,
    "alpha0": 0.3, "semantics": "intersects"}`` → the subscription id
    plus the initial ranked state (``seq`` 0, every row an ``enter``
    delta).  From then on the *server pushes* one unsolicited frame per
    window advance on the same connection, marked ``"push": "update"``
    and carrying ``subscription``/``seq``/``window``/``results``/
    ``deltas``/``incremental``/``degraded`` (plus ``missed_shards`` /
    ``coverage`` / ``score_bound`` when degraded — a shard-down
    cluster degrades subscriptions explicitly, like one-shot queries).
    Push frames interleave between response lines; clients route on
    the ``push`` key.  Closing the connection unsubscribes everything
    it registered.  Requires a real connection (not a bare
    ``handle_request`` call).
``unsubscribe``
    ``{"op": "unsubscribe", "subscription": 7}`` →
    ``{"unsubscribed": bool}``
``shutdown``
    Stop the server loop (the service itself is closed by the owner).

Aggregates and digest counts ride as ``[key, value]`` pairs, not JSON
objects, so integer epoch indices and POI ids survive the round trip.
Error codes: ``overloaded`` (with ``retry_after``), ``timeout``,
``closed``, ``degraded`` (with ``missed_shards`` / ``coverage`` /
``score_bound``), ``crashed``, ``bad-request``, ``proto-mismatch``
(with the server's ``proto``), ``error``.

Exception hygiene (RT005): internal failures are *redacted* on the
wire — remote clients get a stable message plus the ``error`` code,
while the exception type and text are kept server-side in
``last_error`` / the ``errors`` counter for the operator.
"""

import json
import socketserver
import threading

from repro.core.query import KNNTAQuery
from repro.core.tar_tree import POI
from repro.devtools.lockmodel import PUSH, SERVER_ERROR
from repro.devtools.watchdog import monitored_lock
from repro.service.service import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.temporal.epochs import TimeInterval
from repro.temporal.tia import IntervalSemantics

#: JSON-lines wire-protocol version.  Carried on every response frame
#: (and on worker hello frames, see ``repro.cluster.workers``); a peer
#: announcing a different version is refused with the stable
#: ``proto-mismatch`` code rather than failing on some drifted field.
PROTO_VERSION = 1


def proto_mismatch_response(announced):
    """The stable refusal frame for a peer at a different wire version."""
    return {
        "ok": False,
        "code": "proto-mismatch",
        "proto": PROTO_VERSION,
        "error": "peer speaks wire protocol %r but this end speaks %r"
        % (announced, PROTO_VERSION),
    }


def _parse_query(payload):
    point = payload["point"]
    lo, hi = payload["interval"]
    return KNNTAQuery(
        point=(float(point[0]), float(point[1])),
        interval=TimeInterval(lo, hi),
        k=int(payload.get("k", 10)),
        alpha0=float(payload.get("alpha0", 0.3)),
        semantics=IntervalSemantics(payload.get("semantics", "intersects")),
    )


def _result_rows(rows):
    return [
        {
            "poi_id": row.poi_id,
            "score": row.score,
            "distance": row.distance,
            "aggregate": row.aggregate,
        }
        for row in rows
    ]


class _PushChannel:
    """One connection's outbound line pipe plus its owned subscriptions.

    Response lines and server-push frames share the socket, so every
    write goes through one lock — a push can never interleave bytes
    into the middle of a response line.  Failed writes mark the channel
    closed and are swallowed: the reader side notices the dead socket
    and tears the subscriptions down.
    """

    def __init__(self, wfile):
        self._wfile = wfile
        self._lock = monitored_lock(PUSH)
        #: subscription id -> registry handle, for teardown on close.
        self.subscriptions = {}
        self.closed = False

    def send(self, payload):
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            if self.closed:
                return False
            try:
                self._wfile.write(data)
                self._wfile.flush()
            except (OSError, ValueError):
                self.closed = True
                return False
        return True


class JsonLineServer:
    """Serve one :class:`QueryService` over a JSON-lines TCP socket.

    ``serve_forever`` blocks; :meth:`start` runs the accept loop on a
    daemon thread for embedding (tests).  Bind with port ``0`` to let
    the OS pick — the effective ``(host, port)`` is in ``address``.
    """

    #: Stable message sent for redacted internal failures; the details
    #: stay server-side (``last_error`` / the ``errors`` counter).
    INTERNAL_ERROR_MESSAGE = "internal server error; details logged server-side"

    def __init__(self, service, host="127.0.0.1", port=0):
        self.service = service
        #: Count of redacted internal failures and the last one's
        #: ``"Type: message"`` (operator-side; never sent on the wire).
        self.errors = 0
        self.last_error = None
        self._error_lock = monitored_lock(SERVER_ERROR)
        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self):
                channel = _PushChannel(self.wfile)
                try:
                    for raw in self.rfile:
                        raw = raw.strip()
                        if not raw:
                            continue
                        response = outer.handle_request(raw, channel=channel)
                        channel.send(response)
                        if response.get("bye"):
                            # shutdown() blocks until serve_forever
                            # returns, so it must run off the handler
                            # thread.
                            threading.Thread(
                                target=outer._server.shutdown, daemon=True
                            ).start()
                            return
                finally:
                    outer._close_channel(channel)

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self.address = self._server.server_address
        self._thread = None

    # ------------------------------------------------------------------

    def handle_request(self, raw, channel=None):
        """Decode one request line and dispatch it; never raises.

        ``channel`` is the caller's :class:`_PushChannel` when the
        request arrived over a real connection; ``subscribe`` needs it
        to deliver push frames and is rejected without one.  Every
        response frame carries the server's ``proto`` version.
        """
        response = self._dispatch(raw, channel)
        response.setdefault("proto", PROTO_VERSION)
        return response

    def _dispatch(self, raw, channel):
        try:
            payload = json.loads(raw.decode("utf-8") if isinstance(raw, bytes) else raw)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
            announced = payload.get("proto", PROTO_VERSION)
            if announced != PROTO_VERSION:
                return proto_mismatch_response(announced)
            op = payload.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "hello":
                return {"ok": True, "hello": "repro", "proto": PROTO_VERSION}
            if op == "query":
                return self._op_query(payload)
            if op == "subscribe":
                return self._op_subscribe(payload, channel)
            if op == "unsubscribe":
                return self._op_unsubscribe(payload, channel)
            if op == "insert":
                return self._op_insert(payload)
            if op == "delete":
                deleted = self.service.delete(payload["poi_id"])
                return {"ok": True, "deleted": bool(deleted)}
            if op == "digest":
                counts = {poi_id: count for poi_id, count in payload["counts"]}
                self.service.digest(int(payload["epoch"]), counts)
                return {"ok": True, "digested": len(counts)}
            if op == "stats":
                return {"ok": True, "stats": self.service.stats()}
            if op == "health":
                return {"ok": True, "health": self.service.health()}
            if op == "scrub":
                checked = self.service.scrub_tick(payload.get("budget"))
                return {"ok": True, "nodes_checked": checked}
            if op == "shutdown":
                return {"ok": True, "bye": True}
            raise ValueError("unknown op %r" % (op,))
        except ServiceOverloadedError as exc:
            return {
                "ok": False,
                "code": "overloaded",
                "error": str(exc),
                "retry_after": exc.retry_after,
            }
        except RequestTimeoutError as exc:
            return {"ok": False, "code": "timeout", "error": str(exc)}
        except WorkerCrashError as exc:
            return {"ok": False, "code": "crashed", "error": str(exc)}
        except ServiceClosedError as exc:
            return {"ok": False, "code": "closed", "error": str(exc)}
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            return {"ok": False, "code": "bad-request", "error": str(exc)}
        except Exception as exc:  # keep the connection alive on any failure
            degraded = self._degraded_response(exc)
            if degraded is not None:
                return degraded
            return self._internal_error(exc)

    @staticmethod
    def _degraded_response(exc):
        """Map a strict-policy degradation to its wire error, or None.

        The import is lazy: this module is imported by ``repro.cluster``
        transitively (via the service package), so a top-level import of
        the cluster's resilience types would cycle.
        """
        from repro.cluster.resilience import ClusterDegradedError

        if not isinstance(exc, ClusterDegradedError):
            return None
        return {
            "ok": False,
            "code": "degraded",
            "error": str(exc),
            "missed_shards": list(exc.missed_shards),
            "coverage": exc.coverage,
            "score_bound": exc.score_bound,
        }

    def _internal_error(self, exc):
        """Redact an unexpected failure: stable wire message, details kept
        server-side (RT005 — internal exception text never reaches remote
        clients)."""
        with self._error_lock:
            self.errors += 1
            self.last_error = "%s: %s" % (type(exc).__name__, exc)
        return {
            "ok": False,
            "code": "error",
            "error": self.INTERNAL_ERROR_MESSAGE,
        }

    def _op_query(self, payload):
        query = _parse_query(payload)
        timeout = payload.get("timeout")
        request = self.service.submit(query, timeout=timeout)
        wait = None
        if request.deadline is not None:
            wait = (
                timeout if timeout is not None else self.service.config.default_timeout
            ) + 1.0
        rows = request.result(wait)
        # Every answer satisfies the Answer protocol; the wire keeps the
        # established "degraded" field name for the inverse of `exact`.
        response = {
            "ok": True,
            "results": _result_rows(rows.rows),
            "batch_size": request.batch_size,
            "cost": request.cost.as_dict(),
            "latency": request.latency,
            "degraded": not rows.exact,
        }
        if response["degraded"]:
            response["missed_shards"] = list(rows.missed_shards)
            response["coverage"] = rows.coverage
            response["score_bound"] = rows.score_bound
        return response

    def _op_insert(self, payload):
        point = payload["point"]
        aggregates = {
            int(epoch): value for epoch, value in payload.get("aggregates") or []
        }
        poi = POI(payload["poi_id"], point[0], point[1])
        self.service.insert(poi, aggregates)
        return {"ok": True, "inserted": payload["poi_id"]}

    # -- standing subscriptions ----------------------------------------

    @staticmethod
    def _update_frame(update):
        """The wire shape shared by the initial response and push frames."""
        frame = {
            "subscription": update.subscription_id,
            "seq": update.seq,
            "window": update.window.describe(),
            "results": _result_rows(update.answer.rows),
            "deltas": [delta.describe() for delta in update.deltas],
            "incremental": update.incremental,
            "degraded": update.degraded,
        }
        if update.degraded:
            frame["missed_shards"] = list(update.answer.missed_shards)
            frame["coverage"] = update.answer.coverage
            frame["score_bound"] = update.answer.score_bound
        return frame

    def _op_subscribe(self, payload, channel):
        if channel is None:
            raise ValueError(
                "subscribe requires a connection to push updates on"
            )
        point = payload["point"]
        semantics = IntervalSemantics(payload.get("semantics", "intersects"))

        def sink(update, _channel=channel):
            _channel.send(dict(self._update_frame(update), push="update"))

        subscription, initial = self.service.subscribe(
            (float(point[0]), float(point[1])),
            int(payload["window"]),
            k=int(payload.get("k", 10)),
            alpha0=float(payload.get("alpha0", 0.3)),
            semantics=semantics,
            sink=sink,
        )
        channel.subscriptions[subscription.id] = subscription
        response = {"ok": True}
        response.update(self._update_frame(initial))
        return response

    def _op_unsubscribe(self, payload, channel):
        sub_id = payload["subscription"]
        handle = (channel.subscriptions if channel is not None else {}).pop(
            sub_id, None
        )
        if handle is None:
            return {"ok": True, "unsubscribed": False}
        removed = self.service.unsubscribe(handle)
        return {"ok": True, "unsubscribed": bool(removed)}

    def _close_channel(self, channel):
        """Tear down a connection: unsubscribe everything it registered."""
        channel.closed = True
        for handle in list(channel.subscriptions.values()):
            try:
                self.service.unsubscribe(handle)
            except (RuntimeError, ServiceClosedError):
                # Racing a service shutdown: the registry is already
                # closed, so there is nothing left to tear down.
                continue
        channel.subscriptions.clear()

    # ------------------------------------------------------------------

    def start(self):
        """Serve on a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-service-tcp", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self):
        self._server.serve_forever()

    def shutdown(self):
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
