"""Incremental background scrubbing of a live TAR-tree (ROADMAP item).

Corruption used to be detected only on load or on demand
(``validate_tree``, ``repro verify``).  The :class:`Scrubber` instead
sweeps the index *between* queries: each :meth:`tick` walks a bounded
number of nodes (post-order, children before parents) under the
service's shared read lock and compares
:meth:`~repro.temporal.tia.BaseTIA.fingerprint` CRCs:

* **Internal entries** are checked against the per-epoch maxima
  recomputed from their child node's entries — the max-invariant is
  recomputable, so a divergent internal TIA is *repaired* in place
  (``replace_all`` under the write lock) and reported as a
  ``repaired-internal`` health event.
* **Leaf entries** are checked against a persisted CRC manifest keyed
  by POI id, maintained through the tree's post-mutation observer hook
  so every ``insert``/``delete``/``digest`` refreshes the affected
  entries.  A leaf TIA cannot be re-derived from the tree itself, so a
  mismatch surfaces as an (unrepairable here) ``leaf-damage`` health
  event — the operator's cue to run ``repro recover`` against the WAL
  or data set.  A damaged leaf also *quarantines* its ancestor path for
  the rest of the sweep: the internal TIAs above it are left alone
  rather than "repaired" into agreement with corrupt data (the
  post-order walk visits children first, so the taint is known before
  any ancestor is checked).

Detection runs under the read lock so in-flight queries are never
blocked; only an actual repair takes the write lock, re-verifies the
divergence, then swaps the recomputed content in.
"""

import json
import os
import zlib
from collections import deque

from repro.core.tar_tree import TARTree

DEFAULT_SCRUB_BUDGET = 32
MAX_EVENTS = 256


def fingerprint_mapping(epoch_aggregates):
    """CRC-32 of ``{epoch: agg}`` in the canonical TIA fingerprint form.

    Matches :meth:`~repro.temporal.tia.BaseTIA.fingerprint` exactly, so
    an expected-content mapping can be compared against a live TIA
    without materialising a TIA.
    """
    crc = 0
    for epoch, agg in sorted(epoch_aggregates.items()):
        crc = zlib.crc32(("%r:%r;" % (epoch, agg)).encode("ascii"), crc)
    return crc & 0xFFFFFFFF


class HealthEvent:
    """One scrubber finding: what happened, where, in which sweep."""

    __slots__ = ("kind", "location", "detail", "sweep")

    def __init__(self, kind, location, detail, sweep):
        self.kind = kind
        self.location = location
        self.detail = detail
        self.sweep = sweep

    def as_dict(self):
        return {
            "kind": self.kind,
            "location": self.location,
            "detail": self.detail,
            "sweep": self.sweep,
        }

    def __repr__(self):
        return "HealthEvent(%r, %r, sweep=%d)" % (self.kind, self.location, self.sweep)


class Scrubber:
    """Bounded, resumable integrity sweeps over a served TAR-tree.

    Parameters
    ----------
    tree:
        The live :class:`~repro.core.tar_tree.TARTree`.
    lock:
        The service's :class:`~repro.service.locks.ReadWriteLock`; ticks
        detect under read access and repair under write access.
    manifest_path:
        Where the leaf-CRC manifest persists (JSON).  ``None`` keeps it
        in memory only.  A persisted manifest is trusted only when its
        recorded ``applied_lsn`` matches the tree's — otherwise the
        manifest is re-baselined from the (just loaded and verified)
        tree, so WAL replay does not masquerade as damage.
    budget:
        Default nodes examined per :meth:`tick`.
    """

    def __init__(self, tree, lock, manifest_path=None, budget=DEFAULT_SCRUB_BUDGET):
        self.tree = tree
        self._lock = lock
        self.manifest_path = manifest_path
        self.budget = budget
        self._manifest = {}
        self._manifest_dirty = False
        self._work = []
        self._sweep_open = False
        self._damaged_this_sweep = set()
        self._tainted_nodes = set()
        self.sweeps_completed = 0
        self.nodes_checked = 0
        self.repairs = 0
        self.leaf_damage = 0
        self.events = deque(maxlen=MAX_EVENTS)
        if not self._load_manifest():
            self.rebaseline()

    # ------------------------------------------------------------------
    # Manifest maintenance
    # ------------------------------------------------------------------

    def rebaseline(self):
        """Rebuild the leaf-CRC manifest from the current tree content."""
        with self._lock.read_locked():
            self._manifest = {
                poi_id: self.tree.poi_tia(poi_id).fingerprint()
                for poi_id in self.tree.poi_ids()
            }
        self._manifest_dirty = True
        self.persist_manifest()

    def observe_mutation(self, kind, poi_ids):
        """Tree post-mutation observer: refresh the affected leaf CRCs.

        Called with the mutation already applied and (when routed
        through the service) the write lock held, so the fingerprints
        read here are the new ground truth.
        """
        if kind == "delete":
            for poi_id in poi_ids:
                self._manifest.pop(poi_id, None)
        else:
            for poi_id in poi_ids:
                if poi_id in self.tree:
                    self._manifest[poi_id] = self.tree.poi_tia(poi_id).fingerprint()
        self._manifest_dirty = True

    def _load_manifest(self):
        if not self.manifest_path or not os.path.exists(self.manifest_path):
            return False
        try:
            with open(self.manifest_path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return False
        if payload.get("applied_lsn") != self.tree.applied_lsn:
            return False
        manifest = {}
        for poi_id, crc in payload.get("pois", []):
            manifest[poi_id] = crc
        self._manifest = manifest
        return True

    def persist_manifest(self):
        """Write the manifest atomically (no-op without a path)."""
        if not self.manifest_path or not self._manifest_dirty:
            return
        payload = {
            "applied_lsn": self.tree.applied_lsn,
            "pois": sorted(
                self._manifest.items(), key=lambda item: (str(type(item[0])), str(item[0]))
            ),
        }
        temp_path = self.manifest_path + ".tmp"
        with open(temp_path, "w") as handle:
            json.dump(payload, handle)
        os.replace(temp_path, self.manifest_path)
        self._manifest_dirty = False

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------

    def _postorder_nodes(self):
        """Every node, children before parents (so repairs cascade up)."""
        ordered = []
        stack = [(self.tree.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                ordered.append(node)
                continue
            stack.append((node, True))
            if not node.is_leaf:
                for entry in node.entries:
                    stack.append((entry.child, False))
        # pop() from the end must yield post-order, so store reversed.
        ordered.reverse()
        return ordered

    def _reachable(self, node):
        """Is ``node`` still part of the tree (splits/deletes move nodes)?"""
        hops = 0
        while node.parent is not None:
            parent = node.parent
            try:
                parent.entry_for_child(node)
            except LookupError:
                return False
            node = parent
            hops += 1
            if hops > 64:
                return False
        return node is self.tree.root

    def tick(self, budget=None):
        """Scrub up to ``budget`` nodes; returns the number examined.

        Detection happens under the read lock; repairs (if any) are
        applied in a second, short write-locked phase that re-verifies
        each divergence before overwriting.  Completing the node list
        finishes a sweep and persists the manifest.
        """
        budget = self.budget if budget is None else budget
        planned = []
        checked = 0
        with self._lock.read_locked():
            if not self._work:
                self._work = self._postorder_nodes()
                self._sweep_open = True
                self._damaged_this_sweep = set()
                self._tainted_nodes = set()
            while self._work and checked < budget:
                node = self._work.pop()
                checked += 1
                if not self._reachable(node):
                    continue
                self._check_node(node, planned)
        self.nodes_checked += checked
        if planned:
            self._repair(planned)
        if self._sweep_open and not self._work:
            self._sweep_open = False
            self.sweeps_completed += 1
            self.persist_manifest()
        return checked

    def sweep(self, tick_budget=None):
        """Run ticks until the current sweep completes; returns nodes seen.

        A tick always examines at least the root, so this terminates
        even on an empty tree.
        """
        target = self.sweeps_completed + 1
        total = 0
        while self.sweeps_completed < target:
            total += self.tick(tick_budget)
        return total

    def _check_node(self, node, planned):
        for entry in node.entries:
            if entry.child is not None:
                if id(entry.child) in self._tainted_nodes:
                    # The subtree holds damaged leaf data; "repairing"
                    # this TIA would just launder the corruption upward.
                    self._tainted_nodes.add(id(node))
                    continue
                expected = TARTree._epoch_maxima(entry.child.entries)
                if fingerprint_mapping(expected) != entry.tia.fingerprint():
                    planned.append((node, entry))
            else:
                crc = entry.tia.fingerprint()
                baseline = self._manifest.get(entry.item)
                if baseline is None:
                    # Unseen POI (e.g. inserted while the manifest was
                    # external): adopt its current content as baseline.
                    self._manifest[entry.item] = crc
                    self._manifest_dirty = True
                elif crc != baseline:
                    self._tainted_nodes.add(id(node))
                    if entry.item in self._damaged_this_sweep:
                        continue
                    self._damaged_this_sweep.add(entry.item)
                    self.leaf_damage += 1
                    self.events.append(
                        HealthEvent(
                            "leaf-damage",
                            "poi %r" % (entry.item,),
                            "leaf TIA fingerprint %08x != manifest %08x; "
                            "re-derive from the WAL or data set" % (crc, baseline),
                            self.sweeps_completed,
                        )
                    )

    def _repair(self, planned):
        with self._lock.write_locked():
            for node, entry in planned:
                if entry.child is None or entry not in node.entries:
                    continue
                if not self._reachable(node):
                    continue
                expected = TARTree._epoch_maxima(entry.child.entries)
                if fingerprint_mapping(expected) == entry.tia.fingerprint():
                    continue  # a writer fixed or superseded it meanwhile
                entry.tia.replace_all(expected)
                # The entry's TIA content changed in place: invalidate
                # any packed frame built over the old values.
                node.stamp += 1
                self.repairs += 1
                self.events.append(
                    HealthEvent(
                        "repaired-internal",
                        "node %d (level %d)" % (node.node_id, node.level),
                        "internal TIA re-derived from %d child entr(ies)"
                        % len(entry.child.entries),
                        self.sweeps_completed,
                    )
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def progress(self):
        """JSON-serialisable progress/health summary."""
        return {
            "sweeps_completed": self.sweeps_completed,
            "sweep_open": self._sweep_open,
            "pending_nodes": len(self._work),
            "nodes_checked": self.nodes_checked,
            "repairs": self.repairs,
            "leaf_damage": self.leaf_damage,
            "manifest_pois": len(self._manifest),
            "events": [event.as_dict() for event in list(self.events)[-10:]],
        }

    def __repr__(self):
        return "Scrubber(sweeps=%d, repairs=%d, leaf_damage=%d, pending=%d)" % (
            self.sweeps_completed,
            self.repairs,
            self.leaf_damage,
            len(self._work),
        )
