"""Embeddable concurrent query service over a TAR-tree.

The package wires three pieces around one live tree: collective
micro-batching of concurrent kNNTA queries
(:class:`~repro.service.service.QueryService`), single-writer ingest
under a write-preferring :class:`~repro.service.locks.ReadWriteLock`
routed through the reliability WAL, and an incremental background
:class:`~repro.service.scrubber.Scrubber`.  ``repro serve`` exposes it
over JSON lines on TCP (:class:`~repro.service.server.JsonLineServer`).
"""

from repro.service.locks import ReadWriteLock
from repro.service.scrubber import HealthEvent, Scrubber, fingerprint_mapping
from repro.service.server import JsonLineServer
from repro.service.service import (
    PendingResult,
    QueryService,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.service.stats import ServiceStats, percentile

__all__ = [
    "HealthEvent",
    "JsonLineServer",
    "PendingResult",
    "QueryService",
    "ReadWriteLock",
    "RequestTimeoutError",
    "Scrubber",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceStats",
    "WorkerCrashError",
    "fingerprint_mapping",
    "percentile",
]
