"""A readers-writer lock for the query service.

Queries take shared (read) access — the TAR-tree's search paths never
mutate tree state — while ``insert_poi``/``delete_poi``/``digest_epoch``
take exclusive (write) access.  The lock is *write-preferring*: once a
writer is waiting, new readers queue behind it, so a stream of queries
cannot starve ingest.

Neither side is re-entrant; the service's code paths never nest
acquisitions.  Constructed with a ``name`` from the canonical lock
hierarchy (:mod:`repro.devtools.lockmodel`), every acquisition is
reported to the :class:`~repro.devtools.watchdog.LockOrderWatchdog`
when one is active (``REPRO_LOCK_WATCHDOG=1``) — both sides push the
same name, so the watchdog also catches the classic readers-writer
self-deadlocks: read→write upgrade and nested read under a waiting
writer.  Unnamed locks stay unwitnessed.
"""

import threading
from contextlib import contextmanager

from repro.devtools import watchdog


class ReadWriteLock:
    """Write-preferring readers-writer lock over a single condition."""

    def __init__(self, name=None):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.name = name

    def _note_acquire(self):
        if self.name is None:
            return None
        witness = watchdog.active()
        if witness is not None:
            # Before blocking: a would-be deadlock raises instead of
            # hanging the thread.
            witness.note_acquire(self.name)
        return witness

    def _note_failed(self, witness):
        if witness is not None:
            witness.note_release(self.name)

    def _note_release(self):
        if self.name is None:
            return
        witness = watchdog.active()
        if witness is not None:
            witness.note_release(self.name)

    # -- shared (query) side -------------------------------------------------

    def acquire_read(self, timeout=None):
        """Take shared access; returns ``False`` on timeout."""
        witness = self._note_acquire()
        with self._cond:
            if not self._cond.wait_for(
                lambda: not self._writer_active and not self._writers_waiting,
                timeout,
            ):
                self._note_failed(witness)
                return False
            self._readers += 1
            return True

    def release_read(self):
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        self._note_release()

    # -- exclusive (mutation) side -------------------------------------------

    def acquire_write(self, timeout=None):
        """Take exclusive access; returns ``False`` on timeout."""
        witness = self._note_acquire()
        with self._cond:
            self._writers_waiting += 1
            try:
                if not self._cond.wait_for(
                    lambda: not self._writer_active and self._readers == 0,
                    timeout,
                ):
                    self._note_failed(witness)
                    return False
                self._writer_active = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self):
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()
        self._note_release()

    # -- context managers ----------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self):
        return "ReadWriteLock(readers=%d, writer=%r, writers_waiting=%d)" % (
            self._readers,
            self._writer_active,
            self._writers_waiting,
        )
