"""Operational statistics for the query service.

:class:`ServiceStats` is the ops surface the ISSUE's admission-control
story needs: request outcome counters, a bounded latency reservoir
(p50/p99), the batch-size histogram that shows whether micro-batching
actually coalesces load, queue depth, the merged per-batch
:class:`~repro.storage.stats.AccessStats`, and the scrubber's progress.
Everything is guarded by one internal mutex and snapshots to a plain,
JSON-serialisable ``dict`` (the shape the wire protocol's ``stats`` op
returns).
"""

import threading
from collections import deque

from repro.devtools.lockmodel import STATS
from repro.devtools.watchdog import monitored_lock
from repro.storage.stats import AccessStats

DEFAULT_LATENCY_WINDOW = 2048


def percentile(samples, fraction):
    """The ``fraction``-quantile of ``samples`` (nearest-rank method)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, int(round(fraction * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class ServiceStats:
    """Thread-safe counters and reservoirs for one :class:`QueryService`.

    ``access_totals`` accumulates the per-batch access deltas (via
    :meth:`AccessStats.merge`), so dividing by ``completed`` gives the
    mean per-request cost — lower than the same requests run
    individually whenever batching shares node fetches.
    """

    def __init__(self, latency_window=DEFAULT_LATENCY_WINDOW):
        self._mutex = monitored_lock(STATS)
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.timed_out = 0
        self.degraded = 0
        self.worker_deaths = 0
        self.batches = 0
        self.batch_size_histogram = {}
        self.access_totals = AccessStats()
        self.queue_depth = 0
        self.max_queue_depth = 0
        self._latencies = deque(maxlen=latency_window)
        #: Recent cluster shard health events (kind/shard/detail dicts),
        #: fed by the coordinator's health stream in cluster mode.
        self.shard_events = deque(maxlen=128)

    # -- recording hooks (called by the service) -----------------------------

    def note_queue_depth(self, depth):
        with self._mutex:
            self.queue_depth = depth
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    def note_rejected(self):
        with self._mutex:
            self.rejected += 1

    def note_timed_out(self, count=1):
        with self._mutex:
            self.timed_out += count

    def note_failed(self, count=1):
        with self._mutex:
            self.failed += count

    def note_degraded(self, count=1):
        """Requests answered degraded (explicitly partial, bounded)."""
        with self._mutex:
            self.degraded += count

    def note_worker_death(self):
        """A worker thread died on an unexpected error."""
        with self._mutex:
            self.worker_deaths += 1

    def note_shard_event(self, event):
        """Record one cluster shard health event (breaker transitions,
        timeouts, readmissions) on the bounded ops stream."""
        with self._mutex:
            self.shard_events.append(
                event.as_dict() if hasattr(event, "as_dict") else dict(event)
            )

    def note_batch(self, size, cost, latencies):
        """Record one executed batch.

        ``cost`` is the batch's private :class:`AccessStats` delta,
        ``latencies`` the per-request enqueue-to-completion seconds.
        """
        with self._mutex:
            self.batches += 1
            self.completed += size
            self.batch_size_histogram[size] = (
                self.batch_size_histogram.get(size, 0) + 1
            )
            self.access_totals.merge(cost)
            self._latencies.extend(latencies)

    # -- reading -------------------------------------------------------------

    def snapshot(self, scrubber=None):
        """A JSON-serialisable snapshot of every counter.

        ``scrubber`` (a :class:`~repro.service.scrubber.Scrubber`)
        contributes its progress under the ``"scrubber"`` key.
        """
        with self._mutex:
            latencies = list(self._latencies)
            completed = self.completed
            mean_access = None
            if completed:
                totals = self.access_totals.as_dict()
                mean_access = {
                    key: value / float(completed) for key, value in totals.items()
                }
            result = {
                "completed": completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "timed_out": self.timed_out,
                "degraded": self.degraded,
                "worker_deaths": self.worker_deaths,
                "shard_events": list(self.shard_events),
                "batches": self.batches,
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_size_histogram.items())
                },
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "access_totals": self.access_totals.as_dict(),
                "access_per_request": mean_access,
                "latency": {
                    "samples": len(latencies),
                    "p50": percentile(latencies, 0.50),
                    "p99": percentile(latencies, 0.99),
                    "max": max(latencies) if latencies else None,
                },
            }
        if scrubber is not None:
            result["scrubber"] = scrubber.progress()
        return result

    def __repr__(self):
        return (
            "ServiceStats(completed=%d, batches=%d, rejected=%d, timed_out=%d)"
            % (self.completed, self.batches, self.rejected, self.timed_out)
        )
