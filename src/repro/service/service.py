"""The embeddable, thread-safe kNNTA query service.

:class:`QueryService` wraps a live :class:`~repro.core.tar_tree.TARTree`
(optionally paired with a
:class:`~repro.reliability.recovery.CheckpointedIngest` for WAL-backed
durability) behind three coordinated mechanisms:

* **Collective micro-batching** — callers enqueue queries into a
  bounded request queue; worker threads drain it and coalesce requests
  sharing a time interval (the Section 7.2 grouping) into one
  :class:`~repro.core.collective.CollectiveProcessor` batch, bounded by
  ``batch_size`` and a ``linger`` deadline.  A batch of one falls back
  to the plain :func:`~repro.core.knnta.knnta_search`.  Concurrent
  requests over the same interval preset therefore share node fetches
  and per-interval aggregates exactly as the paper's collective scheme
  promises — the batch's access cost is attributed once, to every rider.
* **Read/write coordination** — queries run under the shared side of a
  write-preferring :class:`~repro.service.locks.ReadWriteLock`;
  ``insert``/``delete``/``digest`` take the exclusive side and are
  routed through the ingest's WAL when one is attached, so crash
  recovery semantics survive concurrency.
* **Background scrubbing** — a maintenance thread (or manual
  :meth:`scrub_tick` calls) runs the
  :class:`~repro.service.scrubber.Scrubber` between queries.
* **Standing subscriptions** — :meth:`subscribe` registers a sliding-
  window kNNTA query with the
  :class:`~repro.continuous.registry.SubscriptionRegistry`; every
  :meth:`digest` re-evaluates the live subscriptions incrementally
  (under the read lock, after the batch applied) and pushes ordered
  top-k deltas to their sinks.  See ``docs/CONTINUOUS.md``.

Admission control: a full queue rejects with
:class:`ServiceOverloadedError` carrying a ``retry_after`` hint; every
request gets a deadline (``default_timeout`` unless overridden) and
expires with :class:`RequestTimeoutError` rather than occupying a
worker.  :meth:`stats` snapshots the ops surface
(:class:`~repro.service.stats.ServiceStats`).

The service also wraps a :class:`~repro.cluster.coordinator.ClusterTree`
unchanged (detected by its ``is_cluster`` marker — the cluster package
imports this one, so the dependency must not point back): queries run
the coordinator's scatter-gather (batches fan out per shard through
each shard's own collective processor), mutations route through the
owning shard's WAL inside the coordinator, and scrubbing round-robins
over the shards.  No service-level ingest may be attached in that mode.
"""

import threading
import time
from collections import deque

from repro.continuous import SubscriptionRegistry
from repro.core.collective import CollectiveProcessor
from repro.core.knnta import knnta_search
from repro.devtools.lockmodel import SERVICE_RW
from repro.service.locks import ReadWriteLock
from repro.service.scrubber import HealthEvent, Scrubber
from repro.service.stats import ServiceStats
from repro.storage.stats import AccessStats

DEFAULT_WORKERS = 2
DEFAULT_BATCH_SIZE = 16
DEFAULT_LINGER = 0.002
DEFAULT_QUEUE_LIMIT = 256
DEFAULT_TIMEOUT = 30.0


class ServiceError(RuntimeError):
    """Base class for service-level request failures."""


class ServiceClosedError(ServiceError):
    """The service is shut down (or shutting down) and takes no requests."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the request: the queue is full.

    ``retry_after`` is a backpressure hint in seconds — roughly how
    long until the current backlog drains at the configured batch size.
    """

    def __init__(self, queue_depth, retry_after):
        super().__init__(
            "request queue full (%d pending); retry after %.3fs"
            % (queue_depth, retry_after)
        )
        self.queue_depth = queue_depth
        self.retry_after = retry_after


class RequestTimeoutError(ServiceError):
    """The request's deadline passed before a result was produced."""


class WorkerCrashError(ServiceError):
    """Every worker thread died; pending requests cannot complete.

    Raised to waiters (instead of letting an untimed ``query()`` hang
    forever on a queue nobody drains) and by ``submit()`` once the
    pool is gone.  The message names the original worker failure.
    """


class ServiceConfig:
    """Tunables for one :class:`QueryService` (all have serving defaults).

    ``linger`` is the micro-batching window in seconds: a worker that
    finds fewer than ``batch_size`` coalescable requests waits at most
    this long for stragglers before executing.  ``scrub_interval`` (in
    seconds) enables the background maintenance thread; ``None`` leaves
    scrubbing to manual :meth:`QueryService.scrub_tick` calls.
    """

    __slots__ = (
        "workers",
        "batch_size",
        "linger",
        "queue_limit",
        "default_timeout",
        "scrub_interval",
        "scrub_budget",
        "latency_window",
    )

    def __init__(
        self,
        workers=DEFAULT_WORKERS,
        batch_size=DEFAULT_BATCH_SIZE,
        linger=DEFAULT_LINGER,
        queue_limit=DEFAULT_QUEUE_LIMIT,
        default_timeout=DEFAULT_TIMEOUT,
        scrub_interval=None,
        scrub_budget=None,
        latency_window=2048,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1, got %r" % (batch_size,))
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1, got %r" % (queue_limit,))
        if linger < 0:
            raise ValueError("linger must be >= 0, got %r" % (linger,))
        self.workers = workers
        self.batch_size = batch_size
        self.linger = linger
        self.queue_limit = queue_limit
        self.default_timeout = default_timeout
        self.scrub_interval = scrub_interval
        self.scrub_budget = scrub_budget
        self.latency_window = latency_window

    def __repr__(self):
        return (
            "ServiceConfig(workers=%d, batch_size=%d, linger=%g, queue_limit=%d)"
            % (self.workers, self.batch_size, self.linger, self.queue_limit)
        )


class PendingResult:
    """A submitted query's future: wait on :meth:`result`.

    After completion, ``batch_size`` tells how many requests shared the
    executing batch and ``cost`` is that batch's (shared)
    :class:`~repro.storage.stats.AccessStats` delta.
    """

    __slots__ = (
        "query",
        "deadline",
        "enqueued_at",
        "batch_size",
        "cost",
        "latency",
        "_event",
        "_results",
        "_error",
    )

    def __init__(self, query, deadline, enqueued_at):
        self.query = query
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self.batch_size = None
        self.cost = None
        self.latency = None
        self._event = threading.Event()
        self._results = None
        self._error = None

    def done(self):
        return self._event.is_set()

    def result(self, timeout=None):
        """Block for the ranked results; raises the request's failure."""
        if not self._event.wait(timeout):
            raise RequestTimeoutError(
                "no result within %.3fs (request may still complete)" % (timeout,)
            )
        if self._error is not None:
            raise self._error
        return self._results

    # -- completion (worker side) --------------------------------------------

    def _complete(self, results, cost, batch_size, now):
        self._results = results
        self.cost = cost
        self.batch_size = batch_size
        self.latency = now - self.enqueued_at
        self._event.set()

    def _fail(self, error):
        self._error = error
        self.latency = time.monotonic() - self.enqueued_at
        self._event.set()


class _StatsView:
    """Duck-typed tree view routing node-access accounting to one batch.

    Single-query batches run :func:`knnta_search` over this view so
    their node accesses land in the batch's private stats, exactly as
    :meth:`CollectiveProcessor.run` does for real batches; everything
    else resolves on the wrapped tree.
    """

    __slots__ = ("_tree", "stats")

    def __init__(self, tree, stats):
        self._tree = tree
        self.stats = stats

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def record_node_access(self, node):
        self.stats.record_node(node.is_leaf)


class QueryService:
    """Concurrent kNNTA serving over one TAR-tree; see the module docs.

    Parameters
    ----------
    tree:
        The :class:`~repro.core.tar_tree.TARTree` to serve.
    ingest:
        Optional :class:`~repro.reliability.recovery.CheckpointedIngest`
        already wrapping ``tree``; mutations route through it (and its
        WAL).  Without one, mutations apply directly to the tree.
    config:
        A :class:`ServiceConfig`; defaults serve a small deployment.
    manifest_path:
        Where the scrubber persists its leaf-CRC manifest (defaults to
        ``<ingest.directory>/<name>.scrub.json`` when an ingest is
        attached, else in-memory).
    autostart:
        Start worker threads immediately.  ``False`` lets tests and
        benchmarks enqueue a deterministic backlog first, then call
        :meth:`start`.
    """

    def __init__(self, tree, ingest=None, config=None, manifest_path=None,
                 autostart=True):
        if ingest is not None and ingest.tree is not tree:
            raise ValueError("ingest wraps a different tree")
        self._cluster = bool(getattr(tree, "is_cluster", False))
        if self._cluster and ingest is not None:
            raise ValueError(
                "a cluster routes mutations through its own per-shard "
                "WALs; pass ingest=None"
            )
        self.tree = tree
        self.ingest = ingest
        self.config = config if config is not None else ServiceConfig()
        self.lock = ReadWriteLock(SERVICE_RW)
        self.service_stats = ServiceStats(latency_window=self.config.latency_window)
        if self._cluster:
            # Each shard carries its own scrubber (round-robin via the
            # coordinator's scrub_tick); none is needed at this level.
            self.scrubber = None
        else:
            if manifest_path is None and ingest is not None:
                manifest_path = (
                    ingest.snapshot_path.rsplit(".json", 1)[0] + ".scrub.json"
                )
            scrub_budget = self.config.scrub_budget
            self.scrubber = Scrubber(
                tree,
                self.lock,
                manifest_path=manifest_path,
                **({} if scrub_budget is None else {"budget": scrub_budget})
            )
            tree.add_mutation_observer(self.scrubber.observe_mutation)
        self._queue = deque()
        self._queue_cond = threading.Condition()
        self._closed = False
        self._started = False
        self._workers = []
        self._dead_workers = 0
        self._worker_crash = None
        self._scrub_thread = None
        self._scrub_stop = threading.Event()
        # Standing sliding-window subscriptions (repro.continuous).  The
        # registry is inert until the first subscribe (no observers, no
        # epoch index); digest() drives its fan-out.
        self._registry = SubscriptionRegistry(tree)
        if self._cluster and hasattr(tree, "add_health_observer"):
            # Shard health events (breaker transitions, timeouts,
            # readmissions) flow onto the service's ops stream.
            tree.add_health_observer(self.service_stats.note_shard_event)
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Start the worker pool (and scrubber thread, when configured)."""
        if self._started:
            return self
        if self._closed:
            raise ServiceClosedError("service already closed")
        self._started = True
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name="repro-service-worker-%d" % index,
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        if self.config.scrub_interval is not None:
            self._scrub_thread = threading.Thread(
                target=self._scrub_loop, name="repro-service-scrubber", daemon=True
            )
            self._scrub_thread.start()
        return self

    def close(self, drain=True):
        """Stop accepting requests, drain (or fail) the queue, join workers."""
        with self._queue_cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    request = self._queue.popleft()
                    request._fail(ServiceClosedError("service closed"))
            self._queue_cond.notify_all()
        self._scrub_stop.set()
        if self._scrub_thread is not None:
            self._scrub_thread.join(timeout=5.0)
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self._cluster and hasattr(self.tree, "remove_health_observer"):
            try:
                self.tree.remove_health_observer(
                    self.service_stats.note_shard_event
                )
            except ValueError:
                pass
        if self.scrubber is not None:
            self.tree.remove_mutation_observer(self.scrubber.observe_mutation)
            self.scrubber.persist_manifest()
        self._registry.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def submit(self, query, timeout=None):
        """Enqueue ``query``; returns a :class:`PendingResult` immediately.

        Raises :class:`ServiceOverloadedError` when the queue is full
        and :class:`ServiceClosedError` after :meth:`close`.
        """
        query.validate()
        now = time.monotonic()
        if timeout is None:
            timeout = self.config.default_timeout
        deadline = None if timeout is None else now + timeout
        request = PendingResult(query, deadline, now)
        with self._queue_cond:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._worker_crash is not None:
                raise WorkerCrashError(
                    "all worker threads have died (%s); the service cannot "
                    "complete requests" % (self._worker_crash,)
                )
            depth = len(self._queue)
            if depth >= self.config.queue_limit:
                self.service_stats.note_rejected()
                raise ServiceOverloadedError(depth, self._retry_after(depth))
            self._queue.append(request)
            depth += 1
            self._queue_cond.notify_all()
        self.service_stats.note_queue_depth(depth)
        return request

    def query(self, query, timeout=None):
        """Submit and wait; returns the ranked result list.

        The synchronous form of :meth:`submit` — the call blocks until
        the micro-batch containing this query executes (at most the
        request timeout) and returns exactly what
        :meth:`TARTree.query` would.
        """
        request = self.submit(query, timeout=timeout)
        wait = None
        if request.deadline is not None:
            # Grace beyond the deadline: the worker expires the request
            # itself, which keeps the timeout accounting in one place.
            wait = max(request.deadline - time.monotonic(), 0.0) + 1.0
        return request.result(wait)

    def _retry_after(self, depth):
        """Backpressure hint: time for the backlog to drain, roughly."""
        batches_pending = depth / float(self.config.batch_size) + 1.0
        per_batch = max(self.config.linger, 0.001)
        return batches_pending * per_batch / self.config.workers

    # ------------------------------------------------------------------
    # Mutation path (exclusive, WAL-routed)
    # ------------------------------------------------------------------

    def insert(self, poi, epoch_aggregates=None):
        """Insert a POI under the write lock; WAL-logged via the ingest."""
        with self.lock.write_locked():
            if self.ingest is None:
                # Standalone mode: no service-level WAL, the tree applies
                # directly (a cluster routes through its shard WALs and
                # returns the routed LSN; a bare tree returns None).
                return self.tree.insert_poi(poi, epoch_aggregates)
            return self.ingest.insert(poi, epoch_aggregates)

    def delete(self, poi_id):
        """Delete a POI under the write lock; WAL-logged via the ingest."""
        with self.lock.write_locked():
            if self.ingest is None:
                return self.tree.delete_poi(poi_id)
            return self.ingest.delete(poi_id)

    def digest(self, epoch_index, counts):
        """Digest one epoch batch under the write lock (WAL-logged).

        Digestion is what advances the clock, so it also drives the
        standing-subscription fan-out: after the batch applies (and the
        write lock is released), every live subscription re-evaluates
        and pushes its delta update.  The registry runs the round under
        its advance gate, taking this service's lock on the read side
        for the evaluation phase only (``advance(lock=self.lock)``) —
        sinks fire on the recorded snapshot outside every service and
        registry lock.  The fan-out runs even when the digest itself
        fails mid-way (a cluster shard down, say) — whatever state
        *did* change is what subscribers must now see, degraded or not.
        """
        try:
            with self.lock.write_locked():
                if self.ingest is None:
                    self.tree.digest_epoch(epoch_index, counts)
                    return None
                return self.ingest.digest(epoch_index, counts)
        finally:
            if len(self._registry):
                self._registry.advance(lock=self.lock)

    # ------------------------------------------------------------------
    # Standing subscriptions (repro.continuous)
    # ------------------------------------------------------------------

    def subscribe(self, point, window_epochs, k=10, alpha0=0.3,
                  semantics=None, sink=None):
        """Register a standing sliding-window kNNTA query.

        Returns ``(subscription, initial_update)``: the handle (pass it
        to :meth:`unsubscribe`) and the seq-0
        :class:`~repro.continuous.deltas.WindowUpdate` holding the
        current ranked answer (every row an ``ENTER`` delta).  ``sink``
        — a callable taking a ``WindowUpdate`` — receives each
        *subsequent* update as :meth:`digest` advances the window;
        sinks run on the digesting thread under the registry's advance
        gate, outside every service and registry lock, so a sink may
        call back into the service (``unsubscribe`` from inside a sink
        is safe) — it should still be quick, since delivery serialises
        the fan-out rounds.
        """
        if not getattr(self.tree, "supports_subscriptions", True):
            raise ValueError(
                "standing subscriptions need an in-process tree; "
                "%s serves shards out of process" % type(self.tree).__name__
            )
        kwargs = {} if semantics is None else {"semantics": semantics}
        with self.lock.write_locked():
            if self._closed:
                raise ServiceClosedError("service closed")
            return self._registry.subscribe(
                point, window_epochs, k=k, alpha0=alpha0, sink=sink, **kwargs
            )

    def unsubscribe(self, subscription):
        """Drop a standing subscription (handle or id); True if it existed."""
        with self.lock.write_locked():
            return self._registry.unsubscribe(subscription)

    def checkpoint(self):
        """Checkpoint the durable state under the write lock.

        Requires a :class:`CheckpointedIngest` — or a cluster, whose
        :meth:`~repro.cluster.coordinator.ClusterTree.checkpoint` takes
        each shard's snapshot and rewrites the cluster manifest.
        Returns the snapshot (or manifest) path.
        """
        if self._cluster:
            with self.lock.write_locked():
                return self.tree.checkpoint()
        if self.ingest is None:
            raise ServiceError("no CheckpointedIngest attached")
        with self.lock.write_locked():
            path = self.ingest.checkpoint()
        self.scrubber.persist_manifest()
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def scrub_tick(self, budget=None):
        """Run one bounded scrubber tick; returns nodes examined.

        In cluster mode the tick round-robins over the shards'
        scrubbers (the coordinator owns them).
        """
        if self.scrubber is None:
            return self.tree.scrub_tick(budget)
        return self.scrubber.tick(budget)

    def stats(self):
        """The :class:`~repro.service.stats.ServiceStats` snapshot dict."""
        snapshot = self.service_stats.snapshot(scrubber=self.scrubber)
        snapshot["queue_depth"] = len(self._queue)
        snapshot["pois"] = len(self.tree)
        snapshot["closed"] = self._closed
        snapshot["subscriptions"] = self._registry.counters()
        if self._cluster:
            snapshot["cluster"] = self.tree.counters()
        return snapshot

    def health(self):
        """Per-shard fault-domain health (cluster mode), else a stub.

        In cluster mode this is the coordinator's
        :meth:`~repro.cluster.coordinator.ClusterTree.health` — breaker
        states, guard counters, descriptor freshness and the recent
        shard event stream.  For a single tree there are no fault
        domains; the stub reports the service alive with no shards.
        """
        if self._cluster and hasattr(self.tree, "health"):
            report = self.tree.health()
        else:
            report = {"shards": [], "events": []}
        report["closed"] = self._closed
        report["worker_deaths"] = self.service_stats.worker_deaths
        report["subscriptions"] = len(self._registry)
        return report

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------

    def _worker_loop(self):
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                if batch:
                    self._execute(batch)
        except BaseException as exc:
            # _execute already fences per-batch failures; reaching here
            # means the loop itself is broken.  A silently dead worker
            # would leave untimed waiters hanging forever — propagate.
            self._note_worker_death(exc)
            raise

    def _note_worker_death(self, exc):
        """Record a dead worker; fail all pending work once none are left.

        An untimed :meth:`query` waits on an event only a worker sets —
        if every worker is gone, those waiters would hang forever.  The
        last death marks the service crashed: every queued request
        fails immediately with :class:`WorkerCrashError` (naming the
        original failure) and :meth:`submit` rejects from then on.
        """
        self.service_stats.note_worker_death()
        with self._queue_cond:
            self._dead_workers += 1
            if self._dead_workers < len(self._workers) or self._closed:
                return
            self._worker_crash = "%s: %s" % (type(exc).__name__, exc)
            crash = WorkerCrashError(
                "all worker threads have died (%s); pending requests "
                "cannot complete" % (self._worker_crash,)
            )
            while self._queue:
                self._queue.popleft()._fail(crash)
            self._queue_cond.notify_all()

    def _next_batch(self):
        """Block for a request, then linger to coalesce same-interval peers.

        Returns ``None`` on shutdown (queue drained), else a list of
        requests sharing one ``(interval, semantics)`` key.  Requests
        whose deadline already passed are expired here, not executed.
        """
        config = self.config
        with self._queue_cond:
            while True:
                while not self._queue and not self._closed:
                    self._queue_cond.wait()
                if not self._queue:
                    return None  # closed and drained
                first = self._queue.popleft()
                if self._expired(first):
                    continue
                batch = [first]
                key = (first.query.interval, first.query.semantics)
                linger_until = time.monotonic() + config.linger
                while len(batch) < config.batch_size:
                    matched = self._take_matching(key, config.batch_size - len(batch))
                    for request in matched:
                        if not self._expired(request):
                            batch.append(request)
                    if len(batch) >= config.batch_size or self._closed:
                        break
                    remaining = linger_until - time.monotonic()
                    if remaining <= 0:
                        break
                    self._queue_cond.wait(remaining)
                return batch

    def _take_matching(self, key, limit):
        """Remove up to ``limit`` queued requests with ``key`` (cond held)."""
        taken = []
        if not self._queue:
            return taken
        kept = deque()
        while self._queue:
            request = self._queue.popleft()
            if (
                len(taken) < limit
                and (request.query.interval, request.query.semantics) == key
            ):
                taken.append(request)
            else:
                kept.append(request)
        self._queue = kept
        return taken

    def _expired(self, request):
        if request.deadline is not None and time.monotonic() > request.deadline:
            request._fail(
                RequestTimeoutError("request expired after %.3fs in queue"
                                    % (time.monotonic() - request.enqueued_at))
            )
            self.service_stats.note_timed_out()
            return True
        return False

    def _execute(self, batch):
        stats = AccessStats()
        queries = [request.query for request in batch]
        try:
            with self.lock.read_locked():
                if self._cluster:
                    # The coordinator holds shard read locks itself; this
                    # service-level read hold only orders against
                    # service-level writers.
                    if len(batch) == 1:
                        results = [self.tree.query(queries[0], stats=stats)]
                    else:
                        results = self.tree.query_batch(queries, stats=stats)
                elif len(batch) == 1:
                    results = [knnta_search(_StatsView(self.tree, stats), queries[0])]
                else:
                    results = CollectiveProcessor(self.tree).run(queries, stats=stats)
        except Exception as exc:  # surface the failure to every rider
            for request in batch:
                request._fail(exc)
            self.service_stats.note_failed(len(batch))
            return
        now = time.monotonic()
        # Every producer returns an Answer-shaped object; a non-exact
        # answer is by definition a (permitted) degradation.
        degraded = sum(1 for rows in results if not rows.exact)
        if degraded:
            self.service_stats.note_degraded(degraded)
        for request, rows in zip(batch, results):
            request._complete(rows, stats, len(batch), now)
        self.service_stats.note_batch(
            len(batch), stats, [request.latency for request in batch]
        )
        self.service_stats.note_queue_depth(len(self._queue))

    def _scrub_loop(self):
        interval = self.config.scrub_interval
        while not self._scrub_stop.wait(interval):
            try:
                self.scrub_tick()
            except Exception as exc:
                # Maintenance must never take the service down, but the
                # failure must not vanish either: surface it on the
                # scrubber's health stream and let the next tick retry.
                # (A cluster owns per-shard scrubbers; the coordinator's
                # tick reports on the shard's own event stream.)
                if self.scrubber is not None:
                    self.scrubber.events.append(
                        HealthEvent(
                            "scrub-error",
                            "scrubber tick",
                            "%s: %s" % (type(exc).__name__, exc),
                            self.scrubber.sweeps_completed,
                        )
                    )

    def __repr__(self):
        return "QueryService(%r, %r, closed=%r)" % (
            self.tree,
            self.config,
            self._closed,
        )
