"""Streaming check-ins from a data set into a live TAR-tree.

The paper's setting is an index built over a snapshot that then digests
new epochs as they close (Section 4.2).  These helpers turn a
:class:`~repro.datasets.generator.Dataset` into that stream:

* :func:`epoch_stream` lazily yields ``(epoch_index, {poi_id: count})``
  batches for the epochs between two times;
* :func:`pending_counts` computes the per-epoch check-ins a data set
  records beyond a tree's TIA content (the replay backlog);
* :func:`catch_up` digests that backlog, bringing a tree's TIAs exactly
  in line with the data set's history (used by the growth experiments
  and by crash recovery — see :mod:`repro.reliability.recovery` —
  where a tree rebuilt from a checkpoint replays the tail).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.datasets.generator import Dataset


def epoch_stream(
    dataset: Dataset,
    clock: Any,
    start_time: float | None = None,
    end_time: float | None = None,
    poi_ids: Iterable[int] | None = None,
) -> Iterator[tuple[int, dict[int, int]]]:
    """Lazily yield ``(epoch_index, counts)`` for epochs in a time range.

    ``counts`` maps POI ids to check-ins during that epoch.  Epochs with
    no check-ins are skipped.  ``poi_ids`` restricts the stream (default:
    the data set's effective POIs).  An inverted range
    (``end_time < start_time``) is an explicitly empty stream.

    The grouping is lazy: one epoch's batch is assembled at a time by
    heap-merging the per-POI epoch sequences, so a long-running
    subscription driver holds one in-flight batch instead of a second,
    fully regrouped copy of the whole history.
    """
    import heapq
    import itertools

    if start_time is None:
        start_time = dataset.t0
    if end_time is None:
        end_time = dataset.tc
    if end_time < start_time:
        return
    first_epoch = clock.epoch_of(max(start_time, clock.t0))
    last_epoch = clock.epoch_of(max(end_time, clock.t0))
    per_poi = dataset.epoch_counts(clock, poi_ids)
    tie = itertools.count()

    def poi_items(
        poi_id: int, epochs: dict[int, int]
    ) -> Iterator[tuple[int, int, int, int]]:
        for epoch, count in sorted(epochs.items()):
            if first_epoch <= epoch <= last_epoch:
                yield epoch, next(tie), poi_id, count

    merged = heapq.merge(
        *(poi_items(poi_id, epochs) for poi_id, epochs in per_poi.items())
    )
    current_epoch: int | None = None
    batch: dict[int, int] = {}
    for epoch, _, poi_id, count in merged:
        if epoch != current_epoch:
            if current_epoch is not None:
                yield current_epoch, batch
            current_epoch = epoch
            batch = {}
        batch[poi_id] = count
    if current_epoch is not None:
        yield current_epoch, batch


def pending_counts(
    tree: Any, dataset: Dataset, poi_ids: Iterable[int] | None = None
) -> dict[int, dict[int, int]]:
    """Per-epoch check-ins ``dataset`` records beyond the tree's TIAs.

    Returns ``{epoch_index: {poi_id: positive delta}}`` over the indexed
    POIs (or ``poi_ids``) — exactly the batches :func:`catch_up` would
    digest.  An empty result means the tree is fully caught up.
    """
    if poi_ids is None:
        poi_ids = list(tree.poi_ids())
    full = dataset.epoch_counts(tree.clock, poi_ids)
    pending: dict[int, dict[int, int]] = {}
    for poi_id, epochs in full.items():
        tia = tree.poi_tia(poi_id)
        for epoch, count in epochs.items():
            delta = count - tia.get(epoch)
            if delta > 0:
                pending.setdefault(epoch, {})[poi_id] = delta
    return pending


def catch_up(tree: Any, dataset: Dataset) -> int:
    """Digest whatever ``dataset`` records beyond the tree's TIA content.

    For every indexed POI, compares the data set's per-epoch counts with
    the TIA (:func:`pending_counts`) and digests the positive
    differences epoch by epoch — after which each leaf TIA equals the
    data set's history exactly.  Returns the number of check-ins
    digested.

    Only meaningful for count/sum aggregate trees, where per-epoch values
    accumulate; raises for a max-aggregate tree (its epochs are peaks,
    not counts — digest those directly).
    """
    from repro.temporal.tia import AggregateKind

    if tree.aggregate_kind is AggregateKind.MAX:
        raise ValueError(
            "catch_up() reconciles additive histories; digest peak values "
            "directly for a max-aggregate tree"
        )
    pending = pending_counts(tree, dataset)
    digested = 0
    for epoch in sorted(pending):
        tree.digest_epoch(epoch, pending[epoch])
        digested += sum(pending[epoch].values())
    return digested
