"""Synthetic LBSN generator.

A data set is a set of POIs with spatial coordinates plus a stream of
check-ins (timestamps per POI).  The generator reproduces the two
marginals the paper's analysis rests on:

* **Aggregate marginal** — per-POI check-in totals follow a power law
  with exponent ``beta`` above a lower bound ``xmin`` (Table 2), with a
  shallower-sloped body below ``xmin`` (as in real LBSN data, where pure
  power-law behaviour only starts at ``xmin``).  The tail is sampled with
  the standard Clauset et al. (2009) approximation
  ``x = floor((xmin - 1/2) * (1 - u)^(-1/(beta - 1)) + 1/2)``.
* **Spatial marginal** — POIs cluster around a configurable number of
  hot spots (Gaussian blobs with power-law cluster weights) over a
  uniform background, mimicking venues concentrating in city centres.

Check-in timestamps spread over each POI's lifetime (a random birth time
followed by activity to the end of the span), skewed toward later times
to model LBSN growth — which is what Figure 8's growing-snapshot
experiment exercises.
"""

from __future__ import annotations

from typing import Any, Iterable, cast

import numpy as np

from repro.spatial.geometry import Rect

FloatArray = np.ndarray[Any, np.dtype[np.float64]]
IntArray = np.ndarray[Any, np.dtype[np.int64]]


class Dataset:
    """POIs plus their check-in timestamps.

    Attributes
    ----------
    name:
        Label (e.g. ``"GW"`` or ``"GW@60%"`` for a snapshot).
    world:
        2-D :class:`~repro.spatial.geometry.Rect` bounding the POIs.
    t0, tc:
        Application start and current time (units: days).
    positions:
        ``{poi_id: (x, y)}``.
    checkin_times:
        ``{poi_id: sorted numpy array of timestamps}`` (possibly empty).
    threshold:
        Minimum total check-ins for a POI to be an *effective public POI*
        (the paper indexes only those: 15/10/100/50 for NYC/LA/GW/GS).
    """

    def __init__(
        self,
        name: str,
        world: Rect,
        t0: float,
        tc: float,
        positions: dict[int, tuple[float, float]],
        checkin_times: dict[int, FloatArray],
        threshold: int = 1,
    ) -> None:
        if tc <= t0:
            raise ValueError("tc must exceed t0")
        self.name = name
        self.world = world
        self.t0 = float(t0)
        self.tc = float(tc)
        self.positions = positions
        self.checkin_times = checkin_times
        self.threshold = threshold

    # -- basic statistics -----------------------------------------------------

    @property
    def num_pois(self) -> int:
        return len(self.positions)

    def total_checkins(self) -> int:
        return sum(times.size for times in self.checkin_times.values())

    def totals(self) -> dict[int, int]:
        """``{poi_id: total check-ins}`` including zero-activity POIs."""
        return {
            poi_id: self.checkin_times.get(poi_id, _EMPTY).size
            for poi_id in self.positions
        }

    def effective_poi_ids(self) -> list[int]:
        """IDs of POIs meeting the effective-POI threshold, sorted."""
        return sorted(
            poi_id
            for poi_id, times in self.checkin_times.items()
            if times.size >= self.threshold
        )

    @property
    def span_days(self) -> float:
        return self.tc - self.t0

    # -- derived views ----------------------------------------------------------

    def snapshot(self, fraction: float, name: str | None = None) -> "Dataset":
        """Return the data set as of ``t0 + fraction * span`` (Figure 8).

        Check-ins after the cut are dropped; POI positions are kept (the
        effective-POI filter naturally shrinks the indexed set).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1], got %r" % (fraction,))
        cut = self.t0 + fraction * self.span_days
        clipped = {
            poi_id: times[: np.searchsorted(times, cut, side="right")]
            for poi_id, times in self.checkin_times.items()
        }
        label = name or "%s@%d%%" % (self.name, round(fraction * 100))
        return Dataset(
            label, self.world, self.t0, cut, self.positions, clipped, self.threshold
        )

    def epoch_counts(
        self, clock: Any, poi_ids: Iterable[int] | None = None
    ) -> dict[int, dict[int, int]]:
        """Per-POI, per-epoch check-in counts under ``clock``.

        Returns ``{poi_id: {epoch_index: count}}`` with only non-zero
        epochs present.  ``poi_ids`` restricts the output (defaults to the
        effective POIs).  ``clock`` is duck-typed: a uniform
        :class:`~repro.temporal.epochs.EpochClock` (``epoch_length``) or a
        :class:`~repro.temporal.epochs.VariedEpochClock` (``boundaries``).
        """
        if poi_ids is None:
            poi_ids = self.effective_poi_ids()
        result: dict[int, dict[int, int]] = {}
        uniform_length = getattr(clock, "epoch_length", None)
        boundaries = getattr(clock, "boundaries", None)
        for poi_id in poi_ids:
            times = self.checkin_times.get(poi_id, _EMPTY)
            if times.size == 0:
                result[poi_id] = {}
                continue
            if uniform_length is not None:
                indices = np.floor(
                    (times - clock.t0) / uniform_length + 1e-9
                ).astype(np.int64)
            else:
                indices = np.searchsorted(boundaries, times, side="right") - 1
                indices = np.clip(indices, 0, len(boundaries) - 1)
            uniques, counts = np.unique(indices, return_counts=True)
            result[poi_id] = {
                int(epoch): int(count) for epoch, count in zip(uniques, counts)
            }
        return result

    def __repr__(self) -> str:
        return "Dataset(%r, pois=%d, checkins=%d, span=%.0fd)" % (
            self.name,
            self.num_pois,
            self.total_checkins(),
            self.span_days,
        )


_EMPTY: FloatArray = np.empty(0, dtype=np.float64)


def sample_powerlaw_tail(
    rng: np.random.Generator, beta: float, xmin: float, size: int
) -> IntArray:
    """Sample discrete power-law values ``>= xmin`` with exponent ``beta``.

    Delegates to the exact inverse-CDF sampler of
    :func:`repro.analysis.powerlaw.sample_discrete_powerlaw`, so the
    generated tails match what the Table 2 fitting pipeline assumes.
    """
    if beta <= 1.0:
        raise ValueError("beta must exceed 1, got %r" % (beta,))
    from repro.analysis.powerlaw import sample_discrete_powerlaw

    return cast(IntArray, sample_discrete_powerlaw(rng, beta, int(xmin), size))


def _body_pmf(xmin: float, mean_target: float) -> tuple[IntArray, FloatArray]:
    """Truncated-geometric pmf on ``[1, xmin)`` with roughly ``mean_target``.

    A geometric (exponential-decay) body is what real LBSN data shows
    below the power-law region: it deviates sharply from any power law,
    which is exactly the signal the CSN ``xmin`` scan keys on — a
    power-law-shaped body would blur the fitted ``xmin`` and exponent.
    """
    support = np.arange(1, max(2, xmin), dtype=np.float64)
    ratio = max(1e-6, 1.0 - 1.0 / max(1.05, mean_target))
    weights = ratio ** support
    weights /= weights.sum()
    return support.astype(np.int64), weights


def sample_body(
    rng: np.random.Generator, xmin: float, body_mean: float, size: int
) -> IntArray:
    """Sample the sub-``xmin`` body (truncated geometric, see `_body_pmf`)."""
    support, weights = _body_pmf(xmin, body_mean)
    return cast(IntArray, rng.choice(support, size=size, p=weights))


def _calibrate_body(xmin: float, target_mean: float) -> tuple[float, float]:
    """Pick the body mean so the mixture keeps a populated tail.

    The body mean must sit safely below the target mean, otherwise the
    tail fraction solves to zero (e.g. GW: mean rate 5 but ``xmin`` 85)
    and no POI would ever reach the effective-POI threshold.
    """
    mean_target = max(1.05, min(0.6 * target_mean, xmin / 2.0))
    support, weights = _body_pmf(xmin, mean_target)
    return mean_target, float(support @ weights)


def _solve_tail_fraction(
    target_mean: float, tail_mean: float, body_mean: float
) -> float:
    """Mixture weight q with q*tail_mean + (1-q)*body_mean = target_mean."""
    if tail_mean <= body_mean:
        return 1.0
    q = (target_mean - body_mean) / (tail_mean - body_mean)
    return min(1.0, max(0.0, q))


def generate(
    name: str,
    n_pois: int,
    n_checkins: int,
    span_days: float,
    beta: float,
    xmin: float,
    threshold: int = 1,
    n_clusters: int = 32,
    cluster_sigma_ratio: float = 0.02,
    background_fraction: float = 0.1,
    growth_exponent: float = 0.6,
    popularity_correlation: bool = True,
    world_extent: float = 100.0,
    seed: int = 0,
) -> Dataset:
    """Generate a synthetic LBSN :class:`Dataset`.

    Parameters mirror the published statistics: ``n_pois``/``n_checkins``/
    ``span_days`` from Table 4, ``beta``/``xmin`` from Table 2.  The
    expected total check-ins matches ``n_checkins``; the realised total
    varies with sampling noise.

    ``growth_exponent`` < 1 skews timestamps toward the end of the span
    (LBSN growth); 1.0 gives uniform activity over each POI's lifetime.

    ``popularity_correlation`` makes a POI's chance of a power-law-tail
    total proportional to its cluster's weight: popular venues concentrate
    in popular districts, as in real LBSNs.  The marginal distribution of
    totals is unchanged — only where the tail POIs sit.  ``False`` places
    popularity independently of location.
    """
    if n_pois < 1:
        raise ValueError("n_pois must be >= 1")
    rng = np.random.default_rng(seed)
    world = Rect((0.0, 0.0), (world_extent, world_extent))

    # --- spatial marginal: clustered hot spots over a uniform background.
    centers = rng.random((n_clusters, 2)) * world_extent
    cluster_weights = np.arange(1, n_clusters + 1, dtype=np.float64) ** -1.1
    rng.shuffle(cluster_weights)
    cluster_weights /= cluster_weights.sum()
    n_background = int(n_pois * background_fraction)
    n_clustered = n_pois - n_background
    assignment = rng.choice(n_clusters, size=n_clustered, p=cluster_weights)
    sigma = cluster_sigma_ratio * world_extent
    clustered = centers[assignment] + rng.normal(0.0, sigma, (n_clustered, 2))
    background = rng.random((n_background, 2)) * world_extent
    coordinates = np.clip(
        np.concatenate([clustered, background]), 0.0, world_extent
    )
    # Per-POI propensity to be popular: its cluster's weight (background
    # POIs take the lightest cluster's weight).
    propensity = np.concatenate(
        [cluster_weights[assignment], np.full(n_background, cluster_weights.min())]
    )
    order = rng.permutation(n_pois)
    coordinates = coordinates[order]
    propensity = propensity[order]
    positions = {i: (float(x), float(y)) for i, (x, y) in enumerate(coordinates)}

    # --- aggregate marginal: power-law tail above xmin, shallow body below.
    target_mean = n_checkins / float(n_pois)
    tail_mean = float(np.mean(sample_powerlaw_tail(rng, beta, xmin, 20000)))
    if xmin > 1:
        body_mean_target, body_mean = _calibrate_body(xmin, target_mean)
    else:
        body_mean_target = body_mean = 0.0
    tail_fraction = _solve_tail_fraction(target_mean, tail_mean, body_mean)
    if popularity_correlation:
        tail_probability = propensity / propensity.mean() * tail_fraction
        tail_probability = np.clip(tail_probability, 0.0, 1.0)
        scale_back = tail_fraction * n_pois / max(tail_probability.sum(), 1e-12)
        tail_probability = np.clip(tail_probability * scale_back, 0.0, 1.0)
    else:
        tail_probability = np.full(n_pois, tail_fraction)
    in_tail = rng.random(n_pois) < tail_probability
    totals = np.zeros(n_pois, dtype=np.int64)
    n_tail = int(in_tail.sum())
    if n_tail:
        totals[in_tail] = sample_powerlaw_tail(rng, beta, xmin, n_tail)
    n_body = n_pois - n_tail
    if n_body and xmin > 1:
        totals[~in_tail] = sample_body(rng, xmin, body_mean_target, n_body)
    elif n_body:
        totals[~in_tail] = 1

    # --- temporal marginal: birth time + growth-skewed activity.
    t0 = 0.0
    tc = float(span_days)
    births = rng.random(n_pois) * (0.6 * span_days)
    checkin_times: dict[int, FloatArray] = {}
    for poi_id in range(n_pois):
        count = int(totals[poi_id])
        if count == 0:
            checkin_times[poi_id] = _EMPTY
            continue
        birth = births[poi_id]
        u = rng.random(count) ** growth_exponent
        times = birth + u * (tc - birth)
        times.sort()
        checkin_times[poi_id] = np.minimum(times, tc - 1e-6)

    return Dataset(name, world, t0, tc, positions, checkin_times, threshold)
