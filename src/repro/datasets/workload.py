"""Query workload generation (Section 8, Experiments Setup).

The paper generates 1,000 queries per data set "with the query point
uniformly sampled from the data set and the query time interval uniformly
sampled from 2^0, 2^1, ..., 2^9 days"; defaults are k = 10 and
alpha0 = 0.3.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.core.query import KNNTAQuery
from repro.datasets.generator import Dataset
from repro.temporal.epochs import TimeInterval

DEFAULT_INTERVAL_CHOICES: tuple[int, ...] = tuple(2 ** i for i in range(10))


class QueryWorkload:
    """A reproducible batch of kNNTA queries over a data set."""

    def __init__(self, queries: Iterable[KNNTAQuery], seed: int) -> None:
        self.queries = list(queries)
        self.seed = seed

    def __iter__(self) -> Iterator[KNNTAQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, index: int) -> KNNTAQuery:
        return self.queries[index]

    def with_params(
        self, k: int | None = None, alpha0: float | None = None
    ) -> "QueryWorkload":
        """Copy of the workload with ``k`` and/or ``alpha0`` replaced."""
        queries = [
            KNNTAQuery(
                point=q.point,
                interval=q.interval,
                k=q.k if k is None else k,
                alpha0=q.alpha0 if alpha0 is None else alpha0,
            )
            for q in self.queries
        ]
        return QueryWorkload(queries, self.seed)


def generate_queries(
    dataset: Dataset,
    n_queries: int = 1000,
    k: int = 10,
    alpha0: float = 0.3,
    interval_days_choices: Sequence[int] = DEFAULT_INTERVAL_CHOICES,
    anchor: str = "uniform",
    seed: int = 0,
) -> QueryWorkload:
    """Generate a :class:`QueryWorkload` for ``dataset``.

    Query points are sampled uniformly from the POI locations.  Interval
    *lengths* are sampled uniformly from ``interval_days_choices``; the
    interval is placed either uniformly within the data set span
    (``anchor="uniform"``) or ending at the current time
    (``anchor="end"``, the "last X days" pattern).  Lengths are clipped to
    the span.
    """
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    if anchor not in ("uniform", "end"):
        raise ValueError("anchor must be 'uniform' or 'end', got %r" % (anchor,))
    rng = random.Random(seed)
    locations = list(dataset.positions.values())
    span = dataset.span_days
    queries: list[KNNTAQuery] = []
    for _ in range(n_queries):
        point = rng.choice(locations)
        length = min(float(rng.choice(interval_days_choices)), span)
        if anchor == "end":
            start = dataset.tc - length
        else:
            start = dataset.t0 + rng.random() * (span - length)
        queries.append(
            KNNTAQuery(
                point=point,
                interval=TimeInterval(start, start + length),
                k=k,
                alpha0=alpha0,
            )
        )
    return QueryWorkload(queries, seed)
