"""Presets mirroring the paper's four data sets (Tables 2 and 4).

============  =========  ===========  =========  =====  ======  ==========
name          POIs       check-ins    span       beta   xmin    threshold
============  =========  ===========  =========  =====  ======  ==========
NYC           72,626     237,784      ~38 mo     3.20   31      15
LA            45,591     127,924      ~30 mo     3.07   16      10
GW (Gowalla)  1,280,969  6,442,803    ~21 mo     2.82   85      100
GS (4sq/TW)   182,968    1,385,223    ~7 mo      2.19   59      50
============  =========  ===========  =========  =====  ======  ==========

Full-scale GW is impractical for a pure-Python R-tree build, so
:func:`make` takes a ``scale`` factor applied to both the POI count and
the check-in volume (the per-POI activity distribution is unchanged).
EXPERIMENTS.md records the scales used for each reproduced figure.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.datasets.generator import Dataset, generate


class DatasetSpec(NamedTuple):
    """Published statistics for one of the paper's data sets."""

    name: str
    n_pois: int
    n_checkins: int
    span_days: int
    beta: float
    xmin: int
    threshold: int


DATASET_SPECS: dict[str, DatasetSpec] = {
    "NYC": DatasetSpec("NYC", 72626, 237784, 1156, 3.20, 31, 15),
    "LA": DatasetSpec("LA", 45591, 127924, 911, 3.07, 16, 10),
    "GW": DatasetSpec("GW", 1280969, 6442803, 637, 2.82, 85, 100),
    "GS": DatasetSpec("GS", 182968, 1385223, 212, 2.19, 59, 50),
}


def make(
    name: str, scale: float = 1.0, seed: int = 0, **overrides: Any
) -> Dataset:
    """Build a synthetic stand-in for one of the paper's data sets.

    Parameters
    ----------
    name:
        ``"NYC"``, ``"LA"``, ``"GW"`` or ``"GS"``.
    scale:
        Fraction of the published POI count and check-in volume to
        generate (``0 < scale <= 1``); per-POI statistics are preserved.
    seed:
        Generator seed.
    overrides:
        Extra keyword arguments forwarded to
        :func:`repro.datasets.generator.generate` (e.g. ``n_clusters``).
    """
    try:
        spec = DATASET_SPECS[name.upper()]
    except KeyError:
        raise ValueError(
            "unknown data set %r; choose from %s"
            % (name, sorted(DATASET_SPECS))
        ) from None
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1], got %r" % (scale,))
    params: dict[str, Any] = dict(
        name=spec.name,
        n_pois=max(1, int(spec.n_pois * scale)),
        n_checkins=max(1, int(spec.n_checkins * scale)),
        span_days=spec.span_days,
        beta=spec.beta,
        xmin=spec.xmin,
        threshold=spec.threshold,
        seed=seed,
    )
    params.update(overrides)
    return generate(**params)
