"""Synthetic LBSN data sets and query workloads.

The paper evaluates on four real location-based social networks (NYC, LA,
Gowalla, Foursquare-from-Twitter; Table 4) that are not redistributable.
This package substitutes synthetic generators calibrated to the published
statistics: POI counts, check-in volumes, time spans (Table 4) and the
power-law exponents / lower bounds of the aggregate distribution
(Table 2).  The paper's cost analysis depends only on those marginals, so
the substitution preserves the behaviour the experiments measure.
"""

from repro.datasets.generator import Dataset, generate
from repro.datasets.presets import DATASET_SPECS, DatasetSpec, make
from repro.datasets.workload import QueryWorkload, generate_queries

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "QueryWorkload",
    "generate",
    "generate_queries",
    "make",
]
