"""Project-specific static analysis (``python -m repro lint``).

The devtools package is the repository's correctness tooling: an
AST-based lint engine (:mod:`repro.devtools.engine`) plus the rules
(:mod:`repro.devtools.rules`) that encode invariants a generic linter
cannot know — the service's readers-writer lock protocol (RT001), the
WAL-before-apply contract (RT002), ``-O``-proof invariant checks
(RT003), float-comparison hygiene in the numeric core (RT004),
exception hygiene on the reliability surface (RT005) and
caller-pointing deprecation warnings (RT006).  ``docs/DEVTOOLS.md``
documents every rule and the suppression syntax
(``# repro: allow[RT001]``).

The package is import-light on purpose (stdlib only) so ``repro lint``
runs anywhere the tests run, including the dependency-free CI legs.
"""

from repro.devtools import rules  # noqa: F401  (registers the rules)
from repro.devtools.engine import (
    META_PARSE_ERROR,
    META_UNUSED,
    FileContext,
    Finding,
    Rule,
    lint_file,
    lint_paths,
    registered_rules,
    render_json,
    render_text,
    rule,
    rule_ids,
)

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "rule",
    "rule_ids",
    "registered_rules",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "META_UNUSED",
    "META_PARSE_ERROR",
]
