"""Project-specific static analysis (``python -m repro lint``).

The devtools package is the repository's correctness tooling: an
AST-based lint engine (:mod:`repro.devtools.engine`) plus the rules
(:mod:`repro.devtools.rules`) that encode invariants a generic linter
cannot know — the service's readers-writer lock protocol (RT001), the
WAL-before-apply contract (RT002), ``-O``-proof invariant checks
(RT003), float-comparison hygiene in the numeric core (RT004),
exception hygiene on the reliability surface (RT005),
caller-pointing deprecation warnings (RT006), guarded shard dispatch
(RT007), and the whole-program concurrency rules: lock ordering
against the canonical hierarchy (RT008), no blocking under exclusive
locks (RT009) and no foreign callbacks under engine locks (RT010).
The concurrency rules share one interprocedural pass over the
cross-module call graph (:mod:`repro.devtools.callgraph`); the
hierarchy itself is declared once in :mod:`repro.devtools.lockmodel`
and witnessed at runtime by
:class:`repro.devtools.watchdog.LockOrderWatchdog`
(``REPRO_LOCK_WATCHDOG=1``).  ``docs/DEVTOOLS.md`` documents every
rule and the suppression syntax (``# repro: allow[RT001]``, or
``# repro: allow[RT008,RT009]`` for several rules on one line).

The package is import-light on purpose (stdlib only) so ``repro lint``
runs anywhere the tests run, including the dependency-free CI legs.
"""

from repro.devtools import rules  # noqa: F401  (registers the rules)
from repro.devtools.engine import (
    META_PARSE_ERROR,
    META_UNUSED,
    FileContext,
    Finding,
    ProgramContext,
    ProgramRule,
    Rule,
    lint_file,
    lint_paths,
    registered_rules,
    render_json,
    render_text,
    rule,
    rule_ids,
)
from repro.devtools.lockmodel import (
    HIERARCHY,
    render_graph_dot,
    render_graph_json,
)
from repro.devtools.watchdog import (
    LockOrderViolation,
    LockOrderWatchdog,
)

__all__ = [
    "Finding",
    "FileContext",
    "ProgramContext",
    "ProgramRule",
    "Rule",
    "rule",
    "rule_ids",
    "registered_rules",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "META_UNUSED",
    "META_PARSE_ERROR",
    "HIERARCHY",
    "render_graph_json",
    "render_graph_dot",
    "LockOrderWatchdog",
    "LockOrderViolation",
]
