"""The project lint engine: rule registry, dispatch, suppressions, reports.

The engine is deliberately small and dependency-free: rules are plain
classes over :mod:`ast`, registered with the :func:`rule` decorator, and
dispatched once per file through a shared :class:`FileContext` (parsed
tree, source lines, module name, suppression comments).  It exists
because this repository has invariants a generic linter cannot know —
which calls need the service's write lock, which mutations must ride the
WAL — and those are exactly the invariants the paper's correctness
arguments rest on (see ``docs/DEVTOOLS.md`` for the rule-by-rule
rationale).

Rules come in two shapes.  Per-file rules (:class:`Rule`) see one
:class:`FileContext` at a time.  Whole-program rules
(:class:`ProgramRule`) run once per lint invocation over a
:class:`ProgramContext` — every parsed file plus the shared
interprocedural call graph from :mod:`repro.devtools.callgraph` —
which is what lets the concurrency rules (RT001, RT007–RT010) follow
a call from :mod:`repro.service.service` into
:mod:`repro.continuous.registry` and see the locks acquired on the
far side.

Suppressions
------------
A finding is silenced by an allow comment **on the same physical line**
as the finding::

    tree.insert_poi(poi)  # repro: allow[RT001]

Several ids may share one comment (``# repro: allow[RT001, RT005]``).
Every allow comment must actually suppress something: a comment that
matches no finding is itself reported as :data:`META_UNUSED` so stale
suppressions cannot accumulate.  Files that fail to parse are reported
as :data:`META_PARSE_ERROR`.

Reporters
---------
:func:`render_text` prints one ``path:line:col: ID message`` row per
finding plus a summary line; :func:`render_json` emits a stable
machine-readable document (``version`` is bumped on any shape change)
for CI annotation tooling.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from typing import IO, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.devtools.callgraph import Program, build_program

#: Meta finding id: an allow comment that suppressed nothing.
META_UNUSED = "RT000"
#: Meta finding id: the file could not be parsed.
META_PARSE_ERROR = "RT900"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")
_RULE_ID_RE = re.compile(r"^[A-Z]{2}\d{3}$")


class Finding:
    """One rule violation: where it is and what discipline it breaks."""

    __slots__ = ("rule_id", "path", "line", "col", "message")

    def __init__(self, rule_id: str, path: str, line: int, col: int,
                 message: str) -> None:
        self.rule_id = rule_id
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __repr__(self) -> str:
        return "Finding(%s at %s:%d:%d)" % (
            self.rule_id, self.path, self.line, self.col,
        )


class Suppression:
    """One ``# repro: allow[...]`` comment and whether it earned its keep."""

    __slots__ = ("line", "rule_ids", "used")

    def __init__(self, line: int, rule_ids: tuple[str, ...]) -> None:
        self.line = line
        self.rule_ids = rule_ids
        self.used: set[str] = set()


class FileContext:
    """Everything a per-file rule may inspect about one file."""

    __slots__ = ("path", "module", "tree", "source", "suppressions")

    def __init__(self, path: str, module: str, tree: ast.Module,
                 source: str, suppressions: list[Suppression]) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.source = source
        self.suppressions = suppressions


class ProgramContext:
    """Everything a whole-program rule may inspect: all parsed files.

    ``program`` is the shared interprocedural call graph
    (:class:`~repro.devtools.callgraph.Program`) every program rule
    works from — built once per lint run, not per rule.  ``cache`` is
    a scratch mapping rules use to share derived analyses (the
    RT008/RT009/RT010 lock-flow pass runs once and is read three
    times).
    """

    __slots__ = ("files", "program", "cache")

    def __init__(self, files: list[FileContext]) -> None:
        self.files = files
        self.program: Program = build_program(files)
        self.cache: dict[str, object] = {}

    def file_for(self, module: str) -> FileContext | None:
        for context in self.files:
            if context.module == module:
                return context
        return None


class Rule:
    """Base class for lint rules; subclasses set the class attributes.

    ``rule_id`` is the stable id findings carry (``RTnnn``); ``name`` is
    a short kebab-case label and ``rationale`` one sentence on which
    project invariant the rule protects (both surface in ``--help`` and
    the docs).  :meth:`applies_to` gates dispatch by dotted module name;
    :meth:`check` yields :class:`Finding` values.
    """

    rule_id = ""
    name = ""
    rationale = ""

    def applies_to(self, module: str) -> bool:
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            self.rule_id,
            context.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
        )


class ProgramRule(Rule):
    """A rule that runs once over the whole program, not per file.

    Subclasses implement :meth:`check_program`; :meth:`applies_to`
    still gates which modules the rule *reports in* (the engine uses
    it in single-file mode, and rules use it internally to scope their
    candidate set — call edges may cross into any module either way).
    """

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError(
            "%s is a whole-program rule; use check_program" % self.rule_id
        )

    def check_program(self, context: ProgramContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            self.rule_id,
            path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
        )


_RULES: dict[str, Rule] = {}

_R = TypeVar("_R", bound="type[Rule]")


def rule(cls: _R) -> _R:
    """Class decorator registering one :class:`Rule` subclass."""
    instance = cls()
    if not _RULE_ID_RE.match(instance.rule_id):
        raise ValueError("rule id %r is not of the form AB123" % instance.rule_id)
    if instance.rule_id in _RULES:
        raise ValueError("duplicate rule id %r" % instance.rule_id)
    _RULES[instance.rule_id] = instance
    return cls


def registered_rules() -> dict[str, Rule]:
    """The registry: ``{rule_id: rule instance}`` (a copy)."""
    return dict(_RULES)


def rule_ids() -> list[str]:
    """Every selectable rule id, meta ids included, sorted."""
    return sorted(_RULES) + [META_UNUSED, META_PARSE_ERROR]


# ---------------------------------------------------------------------------
# File discovery and per-file dispatch
# ---------------------------------------------------------------------------


def module_name(path: str) -> str:
    """Dotted module name for ``path``, anchored at a ``repro`` component.

    ``.../src/repro/service/service.py`` maps to
    ``repro.service.service``; fixture trees laid out as
    ``<tmpdir>/repro/...`` resolve the same way, which is what lets the
    rule tests exercise module-scoped rules on temporary files.  A path
    with no ``repro`` component falls back to its bare stem.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    anchor = None
    for index, part in enumerate(parts[:-1]):
        if part == "repro":
            anchor = index
    if anchor is None:
        return stem
    dotted = parts[anchor:-1]
    if stem != "__init__":
        dotted = dotted + [stem]
    return ".".join(dotted)


def _parse_suppressions(source: str) -> list[Suppression]:
    suppressions = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            matches = list(_ALLOW_RE.finditer(token.string))
            if not matches:
                continue
            # One comment may carry several groups and several ids per
            # group (an ``allow[RT008,RT009]`` list); collapse to one
            # Suppression with the ids deduplicated in order, so each
            # id is tracked (and RT000-reported when unused) exactly
            # once per line.
            ids: list[str] = []
            for match in matches:
                for part in match.group(1).split(","):
                    part = part.strip()
                    if part and part not in ids:
                        ids.append(part)
            suppressions.append(Suppression(token.start[0], tuple(ids)))
    except tokenize.TokenError:
        pass  # the ast parse reports the real problem
    return suppressions


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (sorted, hidden dirs skipped)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _parse_file(path: str) -> "FileContext | Finding":
    """Parse one file into a context, or the RT900 finding."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            META_PARSE_ERROR,
            path,
            exc.lineno or 1,
            (exc.offset or 0) + 1,
            "file does not parse: %s" % exc.msg,
        )
    return FileContext(
        path, module_name(path), tree, source, _parse_suppressions(source)
    )


def lint_file(path: str, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Run ``rules`` (default: all registered) over one file.

    Whole-program rules see a one-file program here — the form the
    rule fixtures use; ``lint_paths`` runs them over everything at
    once.
    """
    if rules is None:
        rules = _RULES.values()
    parsed = _parse_file(path)
    if isinstance(parsed, Finding):
        return [parsed]
    context = parsed
    findings = []
    program_context: ProgramContext | None = None
    for candidate in rules:
        if not candidate.applies_to(context.module):
            continue
        if isinstance(candidate, ProgramRule):
            if program_context is None:
                program_context = ProgramContext([context])
            produced: Iterable[Finding] = candidate.check_program(program_context)
        else:
            produced = candidate.check(context)
        for finding in produced:
            if not _suppressed(context, finding):
                findings.append(finding)
    findings.extend(_unused_suppressions(context))
    return findings


def _suppressed(context: FileContext, finding: Finding) -> bool:
    for suppression in context.suppressions:
        if suppression.line == finding.line and finding.rule_id in suppression.rule_ids:
            suppression.used.add(finding.rule_id)
            return True
    return False


def _unused_suppressions(context: FileContext) -> Iterator[Finding]:
    for suppression in context.suppressions:
        if not suppression.rule_ids:
            yield Finding(
                META_UNUSED, context.path, suppression.line, 1,
                "empty allow[] comment suppresses nothing; list rule ids "
                "or remove it",
            )
            continue
        for rule_id in suppression.rule_ids:
            if rule_id in suppression.used:
                continue
            if rule_id in _RULES:
                message = (
                    "unused suppression: no %s finding on this line; "
                    "remove the allow comment" % rule_id
                )
            else:
                message = (
                    "unknown rule id %r in allow comment (known: %s)"
                    % (rule_id, ", ".join(sorted(_RULES)))
                )
            yield Finding(META_UNUSED, context.path, suppression.line, 1, message)


def lint_paths(
    paths: Sequence[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    artifacts: dict[str, object] | None = None,
) -> tuple[list[Finding], int]:
    """Lint every Python file under ``paths``.

    ``select`` restricts to the given rule ids; ``ignore`` drops ids
    from whatever is selected (meta findings included).  Returns the
    sorted findings and the number of files checked.  Unknown ids raise
    ``ValueError`` — the CLI maps that to its usage exit code.

    ``artifacts``, when a dict is passed, receives side products of the
    whole-program pass — currently ``"lock_edges"``, the derived
    lock-order edges RT008 computed (for ``repro lint --lock-graph``).
    """
    known = set(rule_ids())
    selected = set(known if select is None else select)
    ignored = set(ignore) if ignore else set()
    for rule_id in (selected | ignored) - known:
        raise ValueError("unknown rule id %r (known: %s)"
                         % (rule_id, ", ".join(sorted(known))))
    active = selected - ignored
    rules = [r for rule_id, r in sorted(_RULES.items()) if rule_id in active]
    file_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]
    findings = []
    contexts: list[FileContext] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        parsed = _parse_file(path)
        if isinstance(parsed, Finding):
            if parsed.rule_id in active:
                findings.append(parsed)
            continue
        contexts.append(parsed)
    by_path = {context.path: context for context in contexts}
    for context in contexts:
        for candidate in file_rules:
            if not candidate.applies_to(context.module):
                continue
            for finding in candidate.check(context):
                if not _suppressed(context, finding):
                    findings.append(finding)
    if program_rules and contexts:
        program_context = ProgramContext(contexts)
        for candidate in program_rules:
            for finding in candidate.check_program(program_context):
                owner = by_path.get(finding.path)
                if owner is None or not _suppressed(owner, finding):
                    findings.append(finding)
        if artifacts is not None:
            artifacts["lock_edges"] = program_context.cache.get(
                "lock_edges", []
            )
    for context in contexts:
        for finding in _unused_suppressions(context):
            if finding.rule_id in active:
                findings.append(finding)
    findings = [f for f in findings if f.rule_id in active]
    findings.sort(key=Finding.sort_key)
    return findings, files_checked


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def render_text(findings: Sequence[Finding], files_checked: int,
                out: IO[str]) -> None:
    """The human report: one row per finding plus a summary line."""
    for finding in findings:
        print(
            "%s:%d:%d: %s %s"
            % (finding.path, finding.line, finding.col, finding.rule_id,
               finding.message),
            file=out,
        )
    if findings:
        print(
            "%d finding(s) in %d file(s) checked" % (len(findings), files_checked),
            file=out,
        )
    else:
        print("clean: %d file(s) checked" % files_checked, file=out)


def render_json(findings: Sequence[Finding], files_checked: int,
                out: IO[str]) -> None:
    """The machine report; ``version`` guards the shape for CI tooling."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    payload = {
        "version": 1,
        "files_checked": files_checked,
        "counts": {key: counts[key] for key in sorted(counts)},
        "findings": [finding.as_dict() for finding in findings],
    }
    json.dump(payload, out, indent=2, sort_keys=False)
    out.write("\n")


# ---------------------------------------------------------------------------
# Shared AST helpers (used by several rules)
# ---------------------------------------------------------------------------


def call_name(node: ast.Call) -> str | None:
    """The called name: ``f`` for ``f(...)``, ``m`` for ``obj.m(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def walk_functions(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(name, node)`` for every function/method in ``tree``.

    Methods are yielded under their bare name — intra-module call
    resolution treats ``self.f(...)`` and ``f(...)`` alike.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


def for_each_call(
    body: Sequence[ast.stmt],
    visit: Callable[[ast.Call, str], None],
    state: str = "none",
) -> None:
    """Walk statements tracking lock state; call ``visit(call, state)``.

    ``state`` is ``"none"``, ``"read"`` or ``"write"`` according to the
    innermost enclosing ``with ...read_locked():`` /
    ``...write_locked():`` block (write shadows read).  Nested function
    definitions are not descended into — they have their own dominance
    obligations.
    """
    for stmt in body:
        _walk_stmt(stmt, visit, state)


def _lock_state_of(with_node: ast.With, state: str) -> str:
    for item in with_node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr == "write_locked":
                return "write"
            if expr.func.attr == "read_locked" and state != "write":
                state = "read"
    return state


def _walk_stmt(stmt: ast.stmt, visit: Callable[[ast.Call, str], None],
               state: str) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    inner = state
    if isinstance(stmt, ast.With):
        inner = _lock_state_of(stmt, state)
        for item in stmt.items:
            _visit_calls_in_expr(item.context_expr, visit, state)
        for child in stmt.body:
            _walk_stmt(child, visit, inner)
        return
    for value in ast.iter_child_nodes(stmt):
        if isinstance(value, ast.stmt):
            _walk_stmt(value, visit, state)
        elif isinstance(value, ast.expr):
            _visit_calls_in_expr(value, visit, state)
        elif isinstance(value, (ast.excepthandler, ast.match_case)):
            for child in ast.iter_child_nodes(value):
                if isinstance(child, ast.stmt):
                    _walk_stmt(child, visit, state)
                elif isinstance(child, ast.expr):
                    _visit_calls_in_expr(child, visit, state)


def _visit_calls_in_expr(expr: ast.expr, visit: Callable[[ast.Call, str], None],
                         state: str) -> None:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            visit(node, state)
