"""The canonical lock model: one declaration of every engine lock.

This is the single place the repository's lock hierarchy is written
down.  Everything else derives from it: the RT008/RT009/RT010 rules
(:mod:`repro.devtools.rules`), the runtime
:class:`~repro.devtools.watchdog.LockOrderWatchdog`, the
``repro lint --lock-graph`` artifact, and the table in
``docs/DEVTOOLS.md``.

Hierarchy
---------
Ranks ascend from outermost to innermost: a thread holding a lock may
only acquire locks of strictly greater rank.  The order below is the
ISSUE's canonical chain (service RW → shard → breaker → registry →
push) with the fan-out gate above it and the leaf locks below:

==================  ====  =========================================
lock                rank  guards
==================  ====  =========================================
``advance-gate``    0     subscription fan-out rounds (serialises
                          evaluate→deliver end-to-end; protects no
                          engine state, so foreign callbacks may run
                          under it — the one lock with that licence)
``service-rw``      10    the service's tree (readers/writer)
``recovery``        20    online shard-recovery cutover
``routing``         25    the remote coordinator's routing table —
                          shard plan + worker list vs a live reshard
                          cutover (readers/writer; the write side
                          drains and replays WAL tails over sockets
                          and fsyncs the committing manifest, hence
                          the socket/wal/fsync allowances)
``shard-rw``        30    one shard's tree (readers/writer)
``breaker``         40    circuit-breaker + guard counters
``registry``        50    subscription-registry state
``push``            60    one server push channel (terminal: the
                          socket write itself happens under it, by
                          design — nothing may be acquired inside)
``conn``            65    one coordinator->worker connection (frames
                          one request/response pair onto the wire;
                          socket I/O happens under it by design)
``queue-cond``      70    the service's request queue
``dirty``           75    the registry's dirty POI set
``counter``         80    coordinator counters
``stats``           85    service stats counters
``server-error``    86    server error counters
``rw-cond``         90    ReadWriteLock internals
``watchdog``        95    the lock-order watchdog's own edge set
                          (the witness watches everything, so its
                          lock must be the innermost leaf)
==================  ====  =========================================

Blocking allowances (RT009)
---------------------------
The documented WAL-before-apply contract *requires* the WAL append and
fsync to happen under the exclusive lock — that is what makes crash
recovery exact — so calls into :mod:`repro.reliability` and
:mod:`repro.storage` are exempt from the no-blocking-under-lock rule.
The push lock additionally allows socket writes: it exists to frame
one message at a time onto the wire, and nothing else may ever be
acquired under it.
"""

from __future__ import annotations

import ast

__all__ = [
    "ADVANCE_GATE",
    "BLOCKING_ALLOWED_MODULES",
    "BREAKER",
    "CONN",
    "COUNTER",
    "DIRTY",
    "HIERARCHY",
    "LOCKS",
    "LockDecl",
    "PUSH",
    "QUEUE_COND",
    "RANK",
    "RECOVERY",
    "REGISTRY",
    "ROUTING",
    "RW_COND",
    "SERVER_ERROR",
    "SERVICE_RW",
    "SHARD_RW",
    "STATS",
    "WATCHDOG",
    "classify_site",
    "render_graph_dot",
    "render_graph_json",
]

from repro.devtools.callgraph import LockSite

ADVANCE_GATE = "advance-gate"
SERVICE_RW = "service-rw"
RECOVERY = "recovery"
ROUTING = "routing"
SHARD_RW = "shard-rw"
BREAKER = "breaker"
REGISTRY = "registry"
PUSH = "push"
CONN = "conn"
QUEUE_COND = "queue-cond"
DIRTY = "dirty"
COUNTER = "counter"
STATS = "stats"
SERVER_ERROR = "server-error"
RW_COND = "rw-cond"
WATCHDOG = "watchdog"


class LockDecl:
    """One declared lock: rank, kind, and its documented licences."""

    __slots__ = ("name", "rank", "kind", "reentrant", "blocking_allowed",
                 "foreign_callbacks_allowed", "guards")

    def __init__(self, name: str, rank: int, kind: str, guards: str,
                 reentrant: bool = False,
                 blocking_allowed: frozenset[str] = frozenset(),
                 foreign_callbacks_allowed: bool = False) -> None:
        self.name = name
        self.rank = rank
        #: ``"gate"`` / ``"rw"`` / ``"mutex"`` / ``"rlock"`` / ``"condition"``.
        self.kind = kind
        self.guards = guards
        self.reentrant = reentrant
        #: Blocking-operation kinds permitted while held (RT009).
        self.blocking_allowed = blocking_allowed
        #: May observer/subscriber callbacks run while held (RT010)?
        self.foreign_callbacks_allowed = foreign_callbacks_allowed

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "rank": self.rank,
            "kind": self.kind,
            "guards": self.guards,
            "reentrant": self.reentrant,
            "blocking_allowed": sorted(self.blocking_allowed),
            "foreign_callbacks_allowed": self.foreign_callbacks_allowed,
        }


HIERARCHY: tuple[LockDecl, ...] = (
    LockDecl(
        ADVANCE_GATE, 0, "gate",
        "subscription fan-out rounds (evaluate -> record -> deliver)",
        foreign_callbacks_allowed=True,
    ),
    LockDecl(SERVICE_RW, 10, "rw", "the service's tree (readers/writer)",
             blocking_allowed=frozenset({"wal"})),
    LockDecl(RECOVERY, 20, "mutex", "online shard-recovery cutover",
             blocking_allowed=frozenset({"wal"})),
    LockDecl(ROUTING, 25, "rw",
             "the remote coordinator's routing table (plan + worker "
             "list vs live reshard cutover; the write side drains and "
             "replays WAL tails over worker sockets and fsyncs the "
             "manifest that commits the cutover)",
             blocking_allowed=frozenset({"fsync", "socket", "wal"})),
    LockDecl(SHARD_RW, 30, "rw", "one shard's tree (readers/writer)",
             blocking_allowed=frozenset({"wal"})),
    LockDecl(BREAKER, 40, "mutex", "circuit-breaker state + guard counters"),
    LockDecl(REGISTRY, 50, "rlock", "subscription-registry state",
             reentrant=True),
    LockDecl(PUSH, 60, "mutex", "one server push channel (terminal)",
             blocking_allowed=frozenset({"socket"})),
    LockDecl(CONN, 65, "mutex",
             "one coordinator->worker connection (frames one framed "
             "request/response pair onto the wire)",
             blocking_allowed=frozenset({"socket"})),
    LockDecl(QUEUE_COND, 70, "condition", "the service's request queue"),
    LockDecl(DIRTY, 75, "mutex", "the registry's dirty POI set"),
    LockDecl(COUNTER, 80, "mutex", "coordinator counters"),
    LockDecl(STATS, 85, "mutex", "service stats counters"),
    LockDecl(SERVER_ERROR, 86, "mutex", "server error counters"),
    LockDecl(RW_COND, 90, "condition", "ReadWriteLock internals"),
    LockDecl(WATCHDOG, 95, "mutex",
             "the lock-order watchdog's witnessed-edge set (innermost "
             "leaf: the witness runs under every other lock)"),
)

LOCKS: dict[str, LockDecl] = {decl.name: decl for decl in HIERARCHY}
RANK: dict[str, int] = {decl.name: decl.rank for decl in HIERARCHY}

#: Calls into these modules are exempt from RT009: the WAL-before-apply
#: and checkpoint/recovery paths *must* fsync under the exclusive lock.
BLOCKING_ALLOWED_MODULES: tuple[str, ...] = (
    "repro.reliability.",
    "repro.storage.",
)


# ---------------------------------------------------------------------------
# Acquisition-site classification
# ---------------------------------------------------------------------------

#: Bare ``with self.<attr>:`` sites: (module prefix, attribute) -> lock.
_ATTR_SITES: tuple[tuple[str, str, str], ...] = (
    ("repro.continuous", "_advance_gate", ADVANCE_GATE),
    ("repro.continuous", "_mutex", REGISTRY),
    ("repro.continuous", "_dirty_lock", DIRTY),
    ("repro.service.stats", "_mutex", STATS),
    ("repro.service.server", "_error_lock", SERVER_ERROR),
    ("repro.service.server", "_lock", PUSH),
    ("repro.service.service", "_queue_cond", QUEUE_COND),
    ("repro.service.locks", "_cond", RW_COND),
    ("repro.cluster.resilience", "_lock", BREAKER),
    ("repro.cluster.coordinator", "_counter_lock", COUNTER),
    ("repro.cluster.coordinator", "_recovery_lock", RECOVERY),
    ("repro.cluster.remote", "_lock", CONN),
    ("repro.cluster.remote", "_counter_lock", COUNTER),
    ("repro.cluster.remote", "_recovery_lock", RECOVERY),
    ("repro.cluster.reshard", "_counter_lock", COUNTER),
    ("repro.cluster.reshard", "_recovery_lock", RECOVERY),
    ("repro.devtools.watchdog", "_edge_lock", WATCHDOG),
)

_KIND_MODES: dict[str, str] = {
    "gate": "exclusive",
    "mutex": "exclusive",
    "rlock": "exclusive",
    "condition": "exclusive",
}

_LOCKISH_FRAGMENTS = ("lock", "mutex", "cond", "gate", "sem")


def _terminal_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _looks_lockish(name: str | None) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return any(fragment in lowered for fragment in _LOCKISH_FRAGMENTS)


def classify_site(module: str, expr: ast.expr) -> LockSite | None:
    """Classify one ``with`` context expression against the lock model.

    Returns a named :class:`~repro.devtools.callgraph.LockSite` for a
    declared acquisition site, an *unnamed* one (``name is None``) for
    an expression that looks like a lock but is not declared — RT008
    reports those, keeping the model exhaustive — and ``None`` for
    non-lock context managers (files, executors, ...).
    """
    # ``with <recv>.read_locked():`` / ``.write_locked():``
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("read_locked", "write_locked")):
        mode = "write" if expr.func.attr == "write_locked" else "read"
        receiver = ast.dump(expr.func.value)
        if module.startswith("repro.service"):
            return LockSite(SERVICE_RW, mode, "rw", receiver)
        if module.startswith(("repro.cluster.remote", "repro.cluster.reshard")):
            # The remote coordinator's only RW lock is the routing
            # table; worker processes (repro.cluster.workers) keep the
            # per-shard shard-rw classification below.
            return LockSite(ROUTING, mode, "rw", receiver)
        if module.startswith("repro.cluster"):
            return LockSite(SHARD_RW, mode, "rw", receiver)
        if module.startswith("repro.continuous"):
            # The registry advances under the *service's* lock, handed
            # in by the caller (``advance(lock=...)``).
            return LockSite(SERVICE_RW, mode, "rw", receiver)
        return LockSite(None, mode, "rw", receiver)
    # ``with self.<attr>:`` (plain mutex / rlock / condition / gate)
    terminal = _terminal_name(expr)
    if isinstance(expr, (ast.Attribute, ast.Name)):
        for prefix, attr, name in _ATTR_SITES:
            if terminal == attr and module.startswith(prefix):
                decl = LOCKS[name]
                return LockSite(name, _KIND_MODES.get(decl.kind, "exclusive"),
                                decl.kind, ast.dump(expr))
        if _looks_lockish(terminal):
            return LockSite(None, "exclusive", "mutex", ast.dump(expr))
    return None


# ---------------------------------------------------------------------------
# Lock-graph rendering (the ``repro lint --lock-graph`` artifact)
# ---------------------------------------------------------------------------


def render_graph_json(edges: list[dict[str, object]]) -> dict[str, object]:
    """The machine-readable lock graph: declared nodes + derived edges."""
    return {
        "version": 1,
        "nodes": [decl.as_dict() for decl in HIERARCHY],
        "edges": edges,
        "acyclic": all(bool(edge.get("ok")) for edge in edges),
    }


def render_graph_dot(edges: list[dict[str, object]]) -> str:
    """The same graph as Graphviz DOT, ranked top-down by hierarchy."""
    lines = [
        "digraph lock_order {",
        "  rankdir=TB;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for decl in HIERARCHY:
        lines.append(
            '  "%s" [label="%s\\nrank %d (%s)"];'
            % (decl.name, decl.name, decl.rank, decl.kind)
        )
    for edge in edges:
        ok = bool(edge.get("ok"))
        style = "solid" if ok else "bold, color=red"
        lines.append(
            '  "%s" -> "%s" [style="%s", label="%s"];'
            % (edge["src"], edge["dst"], style, edge.get("site", ""))
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
