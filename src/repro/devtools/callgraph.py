"""Whole-program call graph over ``src/repro`` for the lint engine.

PR 4's rules resolved calls per file: ``f(...)`` and ``self.f(...)``
against the names defined in the same module.  That cannot see a lock
acquired in :mod:`repro.continuous.registry` on behalf of a caller in
:mod:`repro.service.service` — exactly the cross-module nesting the
concurrency rules (RT008–RT010) exist to police.  This module builds
one shared interprocedural view:

* a :class:`Program` over every parsed file — modules, classes (with
  base links), functions (methods and nested functions included);
* best-effort static call resolution (:meth:`Program.resolve_call`):
  local names, ``self.m(...)`` through the enclosing class and its
  resolvable bases, ``from repro.x import f``, ``import repro.x as y``
  aliases, constructor calls, and one level of attribute typing
  (``self._evaluator = IncrementalEvaluator(...)`` in ``__init__``
  makes ``self._evaluator.evaluate(...)`` resolvable);
* per-function :class:`FunctionSummary` values recording every call
  site and lock acquisition with the lexically-held lock stack, via a
  pluggable lock-site classifier (the canonical classifier lives in
  :mod:`repro.devtools.lockmodel`).

Anything dynamic — ``getattr``, callables stored in untyped
attributes, duck-typed parameters — resolves to ``None``
(*unknown*).  Unknown calls contribute **no** edges: the concurrency
rules only ever report violations built from edges the graph actually
found, so dynamism degrades analysis coverage, never correctness.

One deliberate modelling exception: ``<guard>.call(kind, thunk)``
(the :class:`~repro.cluster.resilience.ShardGuard` dispatch) records a
call edge to ``thunk`` when the thunk is a resolvable local function —
the guard invokes it, and the locks held at the ``.call`` site are
held around that invocation.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Acquisition",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "FunctionSummary",
    "HeldLock",
    "LockSite",
    "ModuleInfo",
    "Program",
    "build_program",
]


class LockSite:
    """One classified ``with`` acquisition: which lock, which mode.

    ``name is None`` means the expression *looks like* a lock (an
    attribute named ``..._lock``/``_mutex``/... or a
    ``read_locked()``/``write_locked()`` call) but matches no declared
    acquisition site — the lock model is meant to be exhaustive, so
    RT008 reports such sites instead of silently guessing a rank.
    """

    __slots__ = ("name", "mode", "kind", "receiver")

    def __init__(self, name: str | None, mode: str, kind: str,
                 receiver: str) -> None:
        self.name = name
        #: ``"read"`` / ``"write"`` (rw locks) or ``"exclusive"``.
        self.mode = mode
        #: ``"rw"`` / ``"mutex"`` / ``"rlock"`` / ``"condition"`` / ``"gate"``.
        self.kind = kind
        #: ``ast.dump`` of the receiver expression — the same-receiver
        #: test that exempts ``cond.wait()`` under ``with cond:``.
        self.receiver = receiver


#: The classifier signature: ``(module, with-item expression) -> site``.
Classifier = Callable[[str, ast.expr], "LockSite | None"]


class HeldLock:
    """One entry of the lexically-held lock stack at a program point."""

    __slots__ = ("name", "mode", "kind", "receiver")

    def __init__(self, name: str, mode: str, kind: str, receiver: str) -> None:
        self.name = name
        self.mode = mode
        self.kind = kind
        self.receiver = receiver

    def exclusive(self) -> bool:
        """Does holding this entry exclude every other holder?"""
        return self.mode != "read"


class Acquisition:
    """One lock acquisition site inside a function body."""

    __slots__ = ("site", "node", "held_before")

    def __init__(self, site: LockSite, node: ast.expr,
                 held_before: tuple[HeldLock, ...]) -> None:
        self.site = site
        self.node = node
        self.held_before = held_before


class CallSite:
    """One call expression with its resolution and lock context.

    ``in_lambda`` marks calls inside ``lambda`` bodies: they run when
    the lambda does, not where it is written, so the lock-context rules
    skip them (the dominance rules keep them for per-file parity).
    ``via_thunk`` marks the synthetic guard-thunk edge described in the
    module docs.
    """

    __slots__ = ("node", "callee", "held", "state", "in_lambda", "via_thunk")

    def __init__(self, node: ast.Call, callee: str | None,
                 held: tuple[HeldLock, ...], state: str,
                 in_lambda: bool = False, via_thunk: bool = False) -> None:
        self.node = node
        self.callee = callee
        self.held = held
        #: RT001-compatible syntactic state: ``"none"``/``"read"``/
        #: ``"write"`` from the innermost ``read_locked``/``write_locked``.
        self.state = state
        self.in_lambda = in_lambda
        self.via_thunk = via_thunk


class FunctionSummary:
    """Everything the concurrency rules need about one function body."""

    __slots__ = ("function", "acquisitions", "calls", "unknown_sites")

    def __init__(self, function: FunctionInfo) -> None:
        self.function = function
        self.acquisitions: list[Acquisition] = []
        self.calls: list[CallSite] = []
        #: Lock-like ``with`` sites the classifier could not name.
        self.unknown_sites: list[ast.expr] = []


class FunctionInfo:
    """One function or method (nested functions included)."""

    __slots__ = ("key", "module", "name", "node", "class_info", "parent",
                 "local_defs", "_var_types")

    def __init__(self, key: str, module: str, name: str,
                 node: ast.FunctionDef | ast.AsyncFunctionDef,
                 class_info: "ClassInfo | None",
                 parent: "FunctionInfo | None") -> None:
        self.key = key
        self.module = module
        self.name = name
        self.node = node
        self.class_info = class_info
        self.parent = parent
        #: Functions defined directly in this body: ``name -> key``.
        self.local_defs: dict[str, str] = {}
        self._var_types: dict[str, tuple[str, str]] | None = None


class ClassInfo:
    """One class: methods, base references, and typed ``self`` attributes."""

    __slots__ = ("name", "module", "node", "bases", "methods", "attr_types")

    def __init__(self, name: str, module: str, node: ast.ClassDef) -> None:
        self.name = name
        self.module = module
        self.node = node
        #: Base-class references as written (resolved lazily by name).
        self.bases: list[str] = []
        #: method name -> function key.
        self.methods: dict[str, str] = {}
        #: ``self.<attr>`` assignments in ``__init__`` whose value is a
        #: resolvable constructor call: ``attr -> (module, class name)``.
        self.attr_types: dict[str, tuple[str, str]] = {}


class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    __slots__ = ("name", "path", "tree", "import_aliases", "from_imports",
                 "functions", "classes")

    def __init__(self, name: str, path: str, tree: ast.Module) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        #: ``import a.b as c`` -> ``{"c": "a.b"}``; ``import a.b`` -> ``{"a": "a"}``.
        self.import_aliases: dict[str, str] = {}
        #: ``from m import x as y`` -> ``{"y": ("m", "x")}``.
        self.from_imports: dict[str, tuple[str, str]] = {}
        #: Module-level function name -> key.
        self.functions: dict[str, str] = {}
        self.classes: dict[str, ClassInfo] = {}


class Program:
    """The whole-program view: modules, functions, resolution, summaries."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._summaries: dict[str, FunctionSummary] = {}
        self._summarised_with: Classifier | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_module(self, name: str, path: str, tree: ast.Module) -> None:
        module = ModuleInfo(name, path, tree)
        self.modules[name] = module
        self._collect_imports(module)
        self._collect_scope(module, tree.body, prefix=name, class_info=None,
                            parent=None)

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.import_aliases[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    module.from_imports[bound] = (node.module, alias.name)

    def _collect_scope(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        prefix: str,
        class_info: ClassInfo | None,
        parent: FunctionInfo | None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = "%s.%s" % (prefix, stmt.name)
                while key in self.functions:  # redefinition / same name
                    key += "'"
                info = FunctionInfo(key, module.name, stmt.name, stmt,
                                    class_info, parent)
                self.functions[key] = info
                if parent is not None:
                    parent.local_defs[stmt.name] = key
                elif class_info is not None:
                    class_info.methods.setdefault(stmt.name, key)
                else:
                    module.functions.setdefault(stmt.name, key)
                self._collect_scope(module, stmt.body, key, class_info, info)
            elif isinstance(stmt, ast.ClassDef):
                info_c = ClassInfo(stmt.name, module.name, stmt)
                for base in stmt.bases:
                    if isinstance(base, ast.Name):
                        info_c.bases.append(base.id)
                module.classes.setdefault(stmt.name, info_c)
                self._collect_scope(module, stmt.body,
                                    "%s.%s" % (prefix, stmt.name),
                                    info_c, None)
                self._collect_attr_types(module, info_c)

    def _collect_attr_types(self, module: ModuleInfo, info: ClassInfo) -> None:
        init_key = info.methods.get("__init__")
        if init_key is None:
            return
        init = self.functions[init_key]
        for stmt in ast.walk(init.node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            value = stmt.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)):
                ref = self._class_ref(module, value.func.id)
                if ref is not None:
                    info.attr_types[target.attr] = ref

    # ------------------------------------------------------------------
    # Name / call resolution
    # ------------------------------------------------------------------

    def _class_ref(self, module: ModuleInfo, name: str) -> tuple[str, str] | None:
        """Resolve ``name`` to a class reference visible in ``module``."""
        if name in module.classes:
            return (module.name, name)
        imported = module.from_imports.get(name)
        if imported is not None:
            src, orig = imported
            source = self.modules.get(src)
            if source is not None and orig in source.classes:
                return (src, orig)
        return None

    def class_info(self, ref: tuple[str, str]) -> ClassInfo | None:
        module = self.modules.get(ref[0])
        if module is None:
            return None
        return module.classes.get(ref[1])

    def lookup_method(self, info: ClassInfo, name: str,
                      _seen: frozenset[str] = frozenset()) -> str | None:
        """``name`` on ``info`` or (transitively) a resolvable base."""
        if name in info.methods:
            return info.methods[name]
        marker = "%s.%s" % (info.module, info.name)
        if marker in _seen:
            return None
        module = self.modules.get(info.module)
        if module is None:
            return None
        for base in info.bases:
            ref = self._class_ref(module, base)
            if ref is None:
                continue
            base_info = self.class_info(ref)
            if base_info is None:
                continue
            found = self.lookup_method(base_info, name, _seen | {marker})
            if found is not None:
                return found
        return None

    def _var_types_of(self, fn: FunctionInfo) -> dict[str, tuple[str, str]]:
        """Local ``x = ClassName(...)`` / ``x = self._attr`` inference."""
        if fn._var_types is not None:
            return fn._var_types
        module = self.modules[fn.module]
        types: dict[str, tuple[str, str]] = {}
        for stmt in ast.walk(fn.node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                continue
            name = stmt.targets[0].id
            value = stmt.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                ref = self._class_ref(module, value.func.id)
                if ref is not None:
                    types[name] = ref
            elif (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and fn.class_info is not None):
                ref = fn.class_info.attr_types.get(value.attr)
                if ref is not None:
                    types[name] = ref
        fn._var_types = types
        return types

    def resolve_name(self, fn: FunctionInfo, name: str) -> str | None:
        """A bare ``name(...)`` call: scope chain, module, imports, classes."""
        scope: FunctionInfo | None = fn
        while scope is not None:
            if name in scope.local_defs:
                return scope.local_defs[name]
            scope = scope.parent
        module = self.modules.get(fn.module)
        if module is None:
            return None
        if name in module.functions:
            return module.functions[name]
        imported = module.from_imports.get(name)
        if imported is not None:
            src, orig = imported
            source = self.modules.get(src)
            if source is not None:
                if orig in source.functions:
                    return source.functions[orig]
                if orig in source.classes:
                    return source.classes[orig].methods.get("__init__")
            return None
        if name in module.classes:
            return module.classes[name].methods.get("__init__")
        return None

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """The called function's key, or ``None`` (unknown — no edge)."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(fn, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and fn.class_info is not None:
                found = self.lookup_method(fn.class_info, func.attr)
                if found is not None:
                    return found
                # Per-file parity with the PR-4 rules: ``self.f(...)``
                # falls back to a module-level ``def f`` of that name.
                module = self.modules.get(fn.module)
                return None if module is None else module.functions.get(func.attr)
            module = self.modules.get(fn.module)
            if module is None:
                return None
            alias = module.import_aliases.get(base.id)
            if alias is not None:
                target = self.modules.get(alias)
                return None if target is None else target.functions.get(func.attr)
            imported = module.from_imports.get(base.id)
            if imported is not None:
                # ``from repro.continuous import registry`` — a module.
                candidate = "%s.%s" % imported
                target = self.modules.get(candidate)
                return None if target is None else target.functions.get(func.attr)
            var_ref = self._var_types_of(fn).get(base.id)
            if var_ref is not None:
                info = self.class_info(var_ref)
                return None if info is None else self.lookup_method(info, func.attr)
            class_ref = self._class_ref(module, base.id)
            if class_ref is not None:
                info = self.class_info(class_ref)
                return None if info is None else self.lookup_method(info, func.attr)
            return None
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and fn.class_info is not None):
            ref = fn.class_info.attr_types.get(base.attr)
            if ref is not None:
                info = self.class_info(ref)
                return None if info is None else self.lookup_method(info, func.attr)
        return None

    # ------------------------------------------------------------------
    # Lock-context summaries
    # ------------------------------------------------------------------

    def summaries(self, classify: Classifier | None = None
                  ) -> dict[str, FunctionSummary]:
        """Per-function summaries; computed once per classifier."""
        if self._summaries and self._summarised_with is classify:
            return self._summaries
        self._summaries = {}
        self._summarised_with = classify
        for key, fn in self.functions.items():
            summary = FunctionSummary(fn)
            self._walk_block(fn, fn.node.body, (), "none", summary, classify)
            self._summaries[key] = summary
        return self._summaries

    def _walk_block(self, fn: FunctionInfo, body: Sequence[ast.stmt],
                    held: tuple[HeldLock, ...], state: str,
                    summary: FunctionSummary,
                    classify: Classifier | None) -> None:
        for stmt in body:
            self._walk_stmt(fn, stmt, held, state, summary, classify)

    def _walk_stmt(self, fn: FunctionInfo, stmt: ast.stmt,
                   held: tuple[HeldLock, ...], state: str,
                   summary: FunctionSummary,
                   classify: Classifier | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # separate FunctionInfo / scope
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner_held = held
            inner_state = state
            for item in stmt.items:
                # Calls in the context expression run before acquisition.
                self._scan_expr(fn, item.context_expr, inner_held, inner_state,
                                summary, False)
                if item.optional_vars is not None:
                    self._scan_expr(fn, item.optional_vars, inner_held,
                                    inner_state, summary, False)
                mode = _rw_mode(item.context_expr)
                if mode == "write":
                    inner_state = "write"
                elif mode == "read" and inner_state != "write":
                    inner_state = "read"
                if classify is None:
                    continue
                site = classify(fn.module, item.context_expr)
                if site is None:
                    continue
                if site.name is None:
                    summary.unknown_sites.append(item.context_expr)
                    continue
                summary.acquisitions.append(
                    Acquisition(site, item.context_expr, inner_held)
                )
                inner_held = inner_held + (
                    HeldLock(site.name, site.mode, site.kind, site.receiver),
                )
            self._walk_block(fn, stmt.body, inner_held, inner_state, summary,
                             classify)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(fn, child, held, state, summary, classify)
            elif isinstance(child, ast.expr):
                self._scan_expr(fn, child, held, state, summary, False)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                for inner in ast.iter_child_nodes(child):
                    if isinstance(inner, ast.stmt):
                        self._walk_stmt(fn, inner, held, state, summary,
                                        classify)
                    elif isinstance(inner, ast.expr):
                        self._scan_expr(fn, inner, held, state, summary, False)

    def _scan_expr(self, fn: FunctionInfo, expr: ast.expr,
                   held: tuple[HeldLock, ...], state: str,
                   summary: FunctionSummary, in_lambda: bool) -> None:
        if isinstance(expr, ast.Lambda):
            self._scan_expr(fn, expr.body, held, state, summary, True)
            return
        if isinstance(expr, ast.Call):
            callee = self.resolve_call(fn, expr)
            summary.calls.append(
                CallSite(expr, callee, held, state, in_lambda=in_lambda)
            )
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "call"):
                for arg in expr.args:
                    if isinstance(arg, ast.Name):
                        thunk = self.resolve_name(fn, arg.id)
                        if thunk is not None:
                            summary.calls.append(CallSite(
                                expr, thunk, held, state,
                                in_lambda=in_lambda, via_thunk=True,
                            ))
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(fn, child, held, state, summary, in_lambda)
            elif isinstance(child, (ast.comprehension, ast.keyword)):
                for inner in ast.iter_child_nodes(child):
                    if isinstance(inner, ast.expr):
                        self._scan_expr(fn, inner, held, state, summary,
                                        in_lambda)

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------

    def callers_of(self, summaries: dict[str, FunctionSummary]
                   ) -> dict[str, list[tuple[str, CallSite]]]:
        """Reverse edges: callee key -> [(caller key, site), ...]."""
        callers: dict[str, list[tuple[str, CallSite]]] = {}
        for key, summary in summaries.items():
            for site in summary.calls:
                if site.callee is not None:
                    callers.setdefault(site.callee, []).append((key, site))
        return callers

    def transitive_acquisitions(
        self, summaries: dict[str, FunctionSummary]
    ) -> dict[str, set[str]]:
        """Fixpoint: which lock names each function may acquire, deeply.

        Unknown callees contribute nothing — coverage degrades, edges
        never appear from thin air.
        """
        may: dict[str, set[str]] = {
            key: {acq.site.name for acq in summary.acquisitions
                  if acq.site.name is not None}
            for key, summary in summaries.items()
        }
        changed = True
        while changed:
            changed = False
            for key, summary in summaries.items():
                mine = may[key]
                before = len(mine)
                for site in summary.calls:
                    if site.in_lambda or site.callee is None:
                        continue
                    mine |= may.get(site.callee, set())
                if len(mine) != before:
                    changed = True
        return may


def build_program(contexts: Iterable[object]) -> Program:
    """A :class:`Program` from parsed file contexts.

    ``contexts`` is any iterable of objects with ``path``, ``module``
    and ``tree`` attributes (the engine's ``FileContext`` values).
    """
    program = Program()
    for context in contexts:
        program.add_module(
            getattr(context, "module"),
            getattr(context, "path"),
            getattr(context, "tree"),
        )
    return program


def _rw_mode(expr: ast.expr) -> str | None:
    """``"read"``/``"write"`` for ``...read_locked()``/``...write_locked()``."""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr == "write_locked":
            return "write"
        if expr.func.attr == "read_locked":
            return "read"
    return None


def iter_lambda_thunk_calls(tree: ast.Module) -> Iterator[int]:
    """``id()`` of every Call inside a lambda passed to ``<x>.call(...)``.

    RT007 treats those as guarded dispatch (the guard invokes the
    lambda); kept here so both the rule and its tests share one
    definition.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "call"):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                for inner in ast.walk(arg):
                    if isinstance(inner, ast.Call):
                        yield id(inner)
