"""Runtime lock-order witness: assert the hierarchy on live threads.

The static rules (RT008–RT010) can only see edges the call graph
resolves; duck-typed dispatch (``self.tree`` may be a ``TARTree`` or a
``ClusterTree``) hides real nesting from them.  The
:class:`LockOrderWatchdog` closes that gap from the other side: every
instrumented acquisition is pushed onto a thread-local stack and
checked against the canonical ranks in
:mod:`repro.devtools.lockmodel` *before* the thread blocks on the
lock, so an ordering violation surfaces as a raised
:class:`LockOrderViolation` instead of a silent deadlock.  The
watchdog also records every witnessed (outer → inner) pair, which the
concurrency tests compare against the declared hierarchy — the
cross-validation of the static model against reality.

Enabling
--------
Set ``REPRO_LOCK_WATCHDOG=1`` before the process starts (the
concurrency and chaos CI legs do); tests may call :func:`enable` /
:func:`disable`.  Disabled, the overhead is one module-attribute read
per instrumented acquisition — and the :func:`monitored_lock` /
:func:`monitored_rlock` factories return *plain* ``threading`` locks
when the watchdog is off at construction time, so steady-state
production paths pay nothing at all.
"""

from __future__ import annotations

import os
import threading
from typing import Iterator, Protocol

from repro.devtools.lockmodel import LOCKS, RANK


class Lockable(Protocol):
    """What the monitored-lock factories hand back: acquire/release/with."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> object: ...

    def __exit__(self, *exc_info: object) -> object: ...

__all__ = [
    "Lockable",
    "LockOrderViolation",
    "LockOrderWatchdog",
    "MonitoredLock",
    "active",
    "disable",
    "enable",
    "iter_rank_violations",
    "monitored_lock",
    "monitored_rlock",
]


class LockOrderViolation(RuntimeError):
    """A thread acquired locks against the canonical hierarchy."""


class LockOrderWatchdog:
    """Thread-local acquisition stacks checked against the lock model."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._edge_lock = threading.Lock()
        self._edges: set[tuple[str, str]] = set()
        self._violations = 0

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def note_acquire(self, name: str) -> None:
        """Record intent to acquire ``name``; raise on a rank ascent.

        Called *before* blocking on the lock, so a would-be deadlock
        raises instead of hanging the thread.
        """
        stack = self._stack()
        if stack:
            decl = LOCKS.get(name)
            rank = RANK.get(name)
            with self._edge_lock:
                for held in stack:
                    self._edges.add((held, name))
            for held in stack:
                if held == name:
                    if decl is not None and decl.reentrant:
                        continue
                    self._fail(
                        "re-acquired non-reentrant lock %r (held: %s)"
                        % (name, " -> ".join(stack))
                    )
                held_rank = RANK.get(held)
                if rank is not None and held_rank is not None \
                        and held_rank > rank:
                    self._fail(
                        "acquired %r (rank %d) while holding %r (rank %d); "
                        "the hierarchy requires strictly descending ranks "
                        "(held: %s)"
                        % (name, rank, held, held_rank, " -> ".join(stack))
                    )
        stack.append(name)

    def note_release(self, name: str) -> None:
        """Pop the most recent acquisition of ``name``, if any."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def _fail(self, message: str) -> None:
        with self._edge_lock:
            self._violations += 1
        raise LockOrderViolation(message)

    def held(self) -> tuple[str, ...]:
        """The calling thread's current lock stack (outermost first)."""
        return tuple(self._stack())

    def witnessed_edges(self) -> list[tuple[str, str]]:
        """Every (outer, inner) nesting observed so far, sorted."""
        with self._edge_lock:
            return sorted(self._edges)

    def violations(self) -> int:
        with self._edge_lock:
            return self._violations


#: The process-wide watchdog, or ``None`` when disabled.  Instrumented
#: sites read this module attribute directly — one dict lookup when off.
_ACTIVE: LockOrderWatchdog | None = None
if os.environ.get("REPRO_LOCK_WATCHDOG") == "1":
    _ACTIVE = LockOrderWatchdog()


def active() -> LockOrderWatchdog | None:
    """The enabled watchdog, or ``None``."""
    return _ACTIVE


def enable() -> LockOrderWatchdog:
    """Turn the watchdog on (tests); returns it.

    Locks built by the :func:`monitored_lock` factories *before* this
    call stay unmonitored — construct the objects under test after.
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = LockOrderWatchdog()
    return _ACTIVE


def disable() -> None:
    """Turn the watchdog off (tests)."""
    global _ACTIVE
    _ACTIVE = None


class MonitoredLock:
    """A ``threading.Lock``/``RLock`` wrapper reporting to the watchdog."""

    __slots__ = ("_lock", "name")

    def __init__(self, lock: Lockable, name: str) -> None:
        self._lock = lock
        self.name = name

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        watchdog = _ACTIVE
        if watchdog is not None:
            watchdog.note_acquire(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if not acquired and watchdog is not None:
            watchdog.note_release(self.name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        watchdog = _ACTIVE
        if watchdog is not None:
            watchdog.note_release(self.name)

    def __enter__(self) -> "MonitoredLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return "MonitoredLock(%r)" % (self.name,)


def monitored_lock(name: str) -> Lockable:
    """A mutex for the declared lock ``name``.

    Plain ``threading.Lock`` when the watchdog is off at construction
    time — zero steady-state overhead — else a :class:`MonitoredLock`.
    """
    if _ACTIVE is None:
        return threading.Lock()
    return MonitoredLock(threading.Lock(), name)


def monitored_rlock(name: str) -> Lockable:
    """Reentrant variant of :func:`monitored_lock`."""
    if _ACTIVE is None:
        return threading.RLock()
    return MonitoredLock(threading.RLock(), name)


def iter_rank_violations(
    edges: list[tuple[str, str]]
) -> Iterator[tuple[str, str]]:
    """Witnessed edges that ascend the hierarchy (test helper)."""
    for outer, inner in edges:
        outer_rank = RANK.get(outer)
        inner_rank = RANK.get(inner)
        if outer_rank is None or inner_rank is None:
            continue
        if outer == inner:
            decl = LOCKS.get(outer)
            if decl is None or not decl.reentrant:
                yield (outer, inner)
        elif outer_rank > inner_rank:
            yield (outer, inner)
