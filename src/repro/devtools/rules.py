"""The project's lint rules: the invariants a generic linter cannot know.

Each rule encodes one discipline this repository's correctness arguments
rest on — the service's lock protocol, the WAL-before-apply contract,
``-O``-proof invariant checks, float-comparison hygiene in the numeric
hot paths, exception hygiene on the reliability surface,
caller-pointing deprecation warnings, guarded shard dispatch, and (from
this PR) the whole-program concurrency rules: lock ordering against
the canonical hierarchy (RT008), no blocking operations under
exclusive locks (RT009), and no foreign callbacks under engine locks
(RT010).  The rule-by-rule rationale (with the paper/WAL/lock
invariant each protects) lives in ``docs/DEVTOOLS.md``.

Per-file rules are pure functions of one
:class:`~repro.devtools.engine.FileContext`; the concurrency rules are
:class:`~repro.devtools.engine.ProgramRule` subclasses sharing one
interprocedural pass (:class:`LockFlow`) over the
:class:`~repro.devtools.callgraph.Program`.  Registration happens at
import time through the :func:`~repro.devtools.engine.rule` decorator.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.callgraph import (
    CallSite,
    FunctionSummary,
    HeldLock,
    iter_lambda_thunk_calls,
)
from repro.devtools.engine import (
    FileContext,
    Finding,
    ProgramContext,
    ProgramRule,
    Rule,
    call_name,
    rule,
)
from repro.devtools.lockmodel import (
    BLOCKING_ALLOWED_MODULES,
    LOCKS,
    RANK,
    classify_site,
)

#: Tree/TIA mutations that require the exclusive side of the service lock.
LOCKED_MUTATORS = frozenset(
    {"insert_poi", "delete_poi", "digest_epoch", "replace_all"}
)
#: Query entry points that require at least the shared side.
LOCKED_READS = frozenset({"knnta_search", "sequential_scan"})
#: Tree mutations that must ride the WAL inside the service layer.
WAL_MUTATORS = frozenset({"insert_poi", "delete_poi", "digest_epoch"})
#: Shard-tree operations that cross a fault-domain boundary in the
#: cluster layer; each must run inside a ShardGuard thunk (RT007).
SHARD_DISPATCH_METHODS = frozenset(
    {
        "insert_poi",
        "delete_poi",
        "digest_epoch",
        "bulk_load",
        "global_epoch_max",
        "max_aggregate_bound",
    }
)

#: Attribute names that hold foreign callables: observer, subscriber
#: and transition callbacks (RT010).
CALLBACK_ATTRS = frozenset(
    {"sink", "on_transition", "on_event", "_on_event", "callback",
     "_callback", "observer"}
)
#: Name fragments marking collections of callbacks (RT010 loop targets).
_CALLBACK_COLLECTION_FRAGMENTS = ("observer", "sink")

#: Receiver-name fragments for thread-join detection (RT009): only
#: ``<thread-ish>.join(...)`` counts, so ``", ".join(...)`` stays clean.
_THREADISH_FRAGMENTS = ("thread", "worker", "proc")
#: Receiver-name fragments for future-result detection (RT009).
_FUTUREISH_FRAGMENTS = ("future", "pending")
#: Receiver-name fragments for socket-write detection (RT009).
_SOCKETISH_FRAGMENTS = ("wfile", "sock")


# ---------------------------------------------------------------------------
# The shared interprocedural lock-flow pass (RT008 / RT009 / RT010)
# ---------------------------------------------------------------------------


class LockFlow:
    """Everything the concurrency rules derive from the call graph.

    Computed once per :class:`~repro.devtools.engine.ProgramContext`
    (the engine's cache makes the three rules share it):

    * ``summaries`` — per-function call/acquisition records with the
      lexically-held lock stack, classified against the lock model;
    * ``may_acquire`` — transitive lock names each function may take;
    * ``blocking`` — transitive blocking footprint (RT009), with calls
      into the allowlisted WAL/storage modules exempt;
    * ``called_with`` — the lock context a function may *inherit* from
      its callers (RT010's existential propagation).
    """

    def __init__(self, context: ProgramContext) -> None:
        self.program = context.program
        self.summaries = self.program.summaries(classify_site)
        self.may_acquire = self.program.transitive_acquisitions(self.summaries)
        self.module_paths = {
            module.name: module.path
            for module in self.program.modules.values()
        }
        self.blocking = self._blocking_fixpoint()
        self.called_with = self._context_fixpoint()

    def path_of(self, module: str) -> str:
        return self.module_paths.get(module, module)

    # -- RT009: blocking footprint -------------------------------------------

    def _allowlisted(self, module: str) -> bool:
        return module.startswith(BLOCKING_ALLOWED_MODULES)

    def direct_blocking_kind(self, site: CallSite) -> str | None:
        """The blocking kind of one call expression, if any."""
        func = site.node.func
        if isinstance(func, ast.Name):
            if func.id in ("sleep", "fsync"):
                return func.id
            if func.id == "wait":
                return "wait"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = _terminal_of(func.value)
        if attr == "sleep":
            return "sleep"
        if attr == "fsync":
            return "fsync"
        if attr in ("sendall", "recv", "recv_into", "accept", "connect"):
            return "socket"
        if attr in ("write", "flush") and _name_has(receiver,
                                                    _SOCKETISH_FRAGMENTS):
            return "socket"
        if attr == "join" and _name_has(receiver, _THREADISH_FRAGMENTS):
            return "join"
        if attr == "result" and _name_has(receiver, _FUTUREISH_FRAGMENTS):
            return "wait"
        if attr in ("wait", "wait_for"):
            # ``cond.wait()`` under ``with cond:`` *releases* the held
            # condition while waiting — the one blocking call that is
            # the point of holding the lock.
            receiver_dump = ast.dump(func.value)
            for held in site.held:
                if held.kind == "condition" and held.receiver == receiver_dump:
                    return None
            return "wait"
        return None

    def _blocking_fixpoint(self) -> dict[str, set[tuple[str, str]]]:
        """``key -> {(kind, origin key)}``, propagated through the graph."""
        footprint: dict[str, set[tuple[str, str]]] = {}
        for key, summary in self.summaries.items():
            direct: set[tuple[str, str]] = set()
            if not self._allowlisted(summary.function.module):
                for site in summary.calls:
                    if site.in_lambda or site.via_thunk:
                        continue
                    kind = self.direct_blocking_kind(site)
                    if kind is not None:
                        direct.add((kind, key))
            footprint[key] = direct
        changed = True
        while changed:
            changed = False
            for key, summary in self.summaries.items():
                mine = footprint[key]
                before = len(mine)
                for site in summary.calls:
                    if site.in_lambda or site.callee is None:
                        continue
                    callee = self.summaries.get(site.callee)
                    if callee is None:
                        continue
                    if self._allowlisted(callee.function.module):
                        continue  # the documented WAL-before-apply path
                    mine |= footprint.get(site.callee, set())
                if len(mine) != before:
                    changed = True
        return footprint

    # -- RT010: inherited lock context ---------------------------------------

    @staticmethod
    def _restricted_locks(held: tuple[HeldLock, ...]) -> set[str]:
        """Held locks under which foreign callbacks must not run."""
        names: set[str] = set()
        for lock in held:
            if not lock.exclusive():
                continue
            decl = LOCKS.get(lock.name)
            if decl is not None and decl.foreign_callbacks_allowed:
                continue
            names.add(lock.name)
        return names

    def _context_fixpoint(self) -> dict[str, set[str]]:
        """``key -> locks possibly held at some call site`` (existential)."""
        context: dict[str, set[str]] = {key: set() for key in self.summaries}
        changed = True
        while changed:
            changed = False
            for key, summary in self.summaries.items():
                inherited = context[key]
                for site in summary.calls:
                    if site.in_lambda or site.callee is None:
                        continue
                    target = context.get(site.callee)
                    if target is None:
                        continue
                    incoming = self._restricted_locks(site.held) | inherited
                    if not incoming <= target:
                        target |= incoming
                        changed = True
        return context


def lock_flow(context: ProgramContext) -> LockFlow:
    """The shared pass, computed once per lint run."""
    cached = context.cache.get("lockflow")
    if isinstance(cached, LockFlow):
        return cached
    flow = LockFlow(context)
    context.cache["lockflow"] = flow
    return flow


def _terminal_of(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _name_has(name: str | None, fragments: tuple[str, ...]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return any(fragment in lowered for fragment in fragments)


def _is_local_call(call: ast.Call) -> bool:
    """Is this an intra-module call (``f(...)`` or ``self.f(...)``)?"""
    if isinstance(call.func, ast.Name):
        return True
    return (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == "self"
    )


@rule
class LockDisciplineRule(ProgramRule):
    """RT001: service-layer tree access must hold the right lock side.

    ``insert_poi``/``delete_poi``/``digest_epoch`` and TIA repair
    (``replace_all``) reshape the structure the best-first search is
    concurrently descending; they must be lexically dominated by
    ``write_locked()``.  Query entry points (``knnta_search``,
    ``sequential_scan``, ``CollectiveProcessor(...).run``) need at
    least ``read_locked()``.  A call inside a helper passes when every
    resolvable call site of that helper (transitively, across modules
    — the shared whole-program pass) holds the required lock.
    """

    rule_id = "RT001"
    name = "lock-discipline"
    rationale = (
        "the TAR-tree has no internal synchronisation; Property 1 and the "
        "best-first search are only correct under the service's "
        "readers-writer lock protocol"
    )

    def applies_to(self, module: str) -> bool:
        # The cluster coordinator holds one lock per shard and owes each
        # shard tree the exact same protocol the service owes its tree;
        # the continuous layer's evaluators run under the same locks.
        return module.startswith(
            ("repro.service", "repro.cluster", "repro.continuous")
        )

    def check_program(self, context: ProgramContext) -> Iterator[Finding]:
        flow = lock_flow(context)
        callsites: dict[str, list[tuple[str, str]]] = {}
        candidates: list[tuple[str, ast.Call, str, str, FunctionSummary]] = []
        for key, summary in flow.summaries.items():
            in_scope = self.applies_to(summary.function.module)
            for site in summary.calls:
                if site.callee is not None:
                    callsites.setdefault(site.callee, []).append(
                        (key, site.state)
                    )
                if site.via_thunk or not in_scope:
                    continue
                name = call_name(site.node)
                if name is None:
                    continue
                if name in LOCKED_MUTATORS and isinstance(site.node.func,
                                                          ast.Attribute):
                    if site.state != "write":
                        candidates.append((key, site.node, "write", name,
                                           summary))
                elif self._is_read_entry(site.node, name) \
                        and site.state == "none":
                    candidates.append((key, site.node, "read", name, summary))
        for key, call, required, name, summary in candidates:
            if self._dominated(key, required, callsites, frozenset({key})):
                continue
            fname = summary.function.name
            if required == "write":
                message = (
                    "%s() mutates shared tree state; it must run inside "
                    "'with ...write_locked():' (directly, or with every "
                    "call site of %s() write-locked)" % (name, fname)
                )
            else:
                message = (
                    "%s() reads shared tree state; it must run inside "
                    "'with ...read_locked():' (or under the write lock)"
                    % (name,)
                )
            yield self.finding_at(
                flow.path_of(summary.function.module), call, message
            )

    @staticmethod
    def _is_read_entry(call: ast.Call, name: str) -> bool:
        if name in LOCKED_READS and isinstance(call.func, ast.Name):
            return True
        if name == "run" and isinstance(call.func, ast.Attribute):
            return any(
                isinstance(node, ast.Name) and node.id == "CollectiveProcessor"
                for node in ast.walk(call.func.value)
            )
        return False

    def _dominated(
        self,
        key: str,
        required: str,
        callsites: dict[str, list[tuple[str, str]]],
        seen: frozenset[str],
    ) -> bool:
        """Does every resolvable call chain into ``key`` hold the lock?"""
        sites = callsites.get(key)
        if not sites:
            return False
        for caller, state in sites:
            if state == "write" or (required == "read" and state == "read"):
                continue
            if caller in seen:
                return False
            if not self._dominated(caller, required, callsites,
                                   seen | {caller}):
                return False
        return True


@rule
class WalBeforeApplyRule(Rule):
    """RT002: service-layer mutations must route through the ingest.

    The WAL-before-apply contract (PR 2) makes crash recovery exact:
    every logical mutation is framed into the mutation WAL before tree
    state changes.  Service code therefore calls
    ``self.ingest.insert/delete/digest``; mutating the tree directly is
    legal only in the documented standalone branch — the body of an
    ``if <obj>.ingest is None:`` guard.
    """

    rule_id = "RT002"
    name = "wal-before-apply"
    rationale = (
        "a tree mutation that bypasses CheckpointedIngest never reaches "
        "the WAL, so a crash silently loses it and recover() replays a "
        "diverged history"
    )

    def applies_to(self, module: str) -> bool:
        # Routed cluster mutations carry the same contract per shard:
        # each goes through the owning shard's ingest when one exists.
        # The continuous layer must never mutate the tree at all.
        return module.startswith(
            ("repro.service", "repro.cluster", "repro.continuous")
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call, guarded in self._mutator_calls(context.tree.body, False):
            if guarded:
                continue
            yield self.finding(
                context,
                call,
                "%s() mutates the tree directly; route it through the "
                "attached CheckpointedIngest, or guard the standalone "
                "path with 'if ....ingest is None:'" % (call_name(call),),
            )

    def _mutator_calls(
        self, stmts: list[ast.stmt], guarded: bool
    ) -> Iterator[tuple[ast.Call, bool]]:
        for stmt in stmts:
            if isinstance(stmt, ast.If) and self._is_standalone_guard(stmt.test):
                yield from self._mutator_calls(stmt.body, True)
                yield from self._mutator_calls(stmt.orelse, guarded)
                continue
            yield from self._scan_children(stmt, guarded)

    def _scan_children(
        self, node: ast.AST, guarded: bool
    ) -> Iterator[tuple[ast.Call, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                yield from self._mutator_calls([child], guarded)
            elif isinstance(child, ast.expr):
                for inner in ast.walk(child):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in WAL_MUTATORS
                    ):
                        yield inner, guarded
            else:
                # withitem / excepthandler / match_case wrappers: recurse
                # so their statement suites keep guard tracking.
                yield from self._scan_children(child, guarded)

    @staticmethod
    def _is_standalone_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "ingest"
        )


@rule
class NoBareAssertRule(Rule):
    """RT003: runtime invariants must not rely on ``assert``.

    CI's ``python -O`` leg strips every ``assert`` statement, so an
    invariant guarded only by one is unchecked exactly where the
    optimised build runs.  Raise an explicit exception (``raise
    AssertionError(...)`` keeps the contract) or gate the check on a
    debug flag.
    """

    rule_id = "RT003"
    name = "no-bare-assert"
    rationale = (
        "python -O strips assert statements, so -O CI legs silently skip "
        "any invariant they guard"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    context,
                    node,
                    "assert is stripped under python -O; raise an explicit "
                    "exception instead",
                )


@rule
class FloatEqualityRule(Rule):
    """RT004: no ``==``/``!=`` on float expressions in the numeric core.

    ``spatial.geometry`` and ``core.costmodel`` feed the kNNTA bound
    arithmetic, and the numeric hot paths added since PR 4 — the packed
    node frames, the incremental evaluator and the resilience scoring —
    carry the same hazard: an exact float comparison there encodes an
    accidental tolerance of zero.  Compare with :func:`math.isclose` or
    an explicit epsilon.  ``__eq__``/``__ne__``/``__hash__`` bodies are
    exempt — value types intentionally define exact equality.
    """

    rule_id = "RT004"
    name = "float-equality"
    rationale = (
        "exact float equality in the geometry/cost-model hot paths turns "
        "rounding noise into wrong pruning decisions"
    )

    _EXEMPT = frozenset({"__eq__", "__ne__", "__hash__"})
    #: Attributes that are floats by construction in this codebase —
    #: ranked scores and score bounds (QueryResult.score et al.).
    _FLOAT_ATTRS = frozenset({"score", "score_bound"})

    def applies_to(self, module: str) -> bool:
        return module in (
            "repro.spatial.geometry",
            "repro.core.costmodel",
            "repro.core.frames",
            "repro.continuous.evaluator",
            "repro.cluster.resilience",
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from self._scan(context, context.tree.body)

    def _scan(self, context: FileContext,
              stmts: list[ast.stmt]) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in self._EXEMPT:
                    continue
                yield from self._scan(context, stmt.body)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan(context, stmt.body)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Compare) and self._is_float_equality(node):
                    yield self.finding(
                        context,
                        node,
                        "float equality comparison; use math.isclose or an "
                        "explicit epsilon",
                    )

    def _is_float_equality(self, node: ast.Compare) -> bool:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return False
        return any(
            self._float_like(operand)
            for operand in [node.left, *node.comparators]
        )

    def _float_like(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Attribute):
            return node.attr in self._FLOAT_ATTRS
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._float_like(node.left) or self._float_like(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._float_like(node.operand)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                return True
            return (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "math"
            )
        return False


@rule
class ExceptionHygieneRule(Rule):
    """RT005: broad handlers on the reliability surface must not swallow.

    ``except Exception`` in :mod:`repro.reliability` / :mod:`repro.service`
    sits exactly where corruption and crash bugs surface; a handler
    there must re-raise, use the caught exception (report/record it), or
    log it.  A deliberate swallow carries an allow comment so the
    decision is visible in review.
    """

    rule_id = "RT005"
    name = "exception-hygiene"
    rationale = (
        "a swallowed exception on the reliability path converts detectable "
        "corruption into silent divergence"
    )

    _LOG_ATTRS = frozenset(
        {"debug", "info", "warning", "warn", "error", "exception", "critical"}
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(("repro.reliability", "repro.service"))

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_responsibly(node):
                continue
            yield self.finding(
                context,
                node,
                "broad except swallows the exception; re-raise it, record "
                "or log it, or carry an explicit allow comment",
            )

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        names = (
            [type_node] if not isinstance(type_node, ast.Tuple) else type_node.elts
        )
        return any(
            isinstance(name, ast.Name) and name.id in ("Exception", "BaseException")
            for name in names
        )

    def _handles_responsibly(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._LOG_ATTRS
            ):
                return True
        return False


@rule
class WarnStacklevelRule(Rule):
    """RT006: ``warnings.warn`` must pass ``stacklevel``.

    The deprecation shims promise that warnings point at the *caller's*
    file (``tests/test_public_api.py`` pins this); a ``warnings.warn``
    without ``stacklevel`` blames the shim itself, which hides every
    call site the warning exists to surface.
    """

    rule_id = "RT006"
    name = "warn-stacklevel"
    rationale = (
        "without stacklevel a DeprecationWarning names the shim, not the "
        "caller that must migrate"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "warn"
                and isinstance(func.value, ast.Name)
                and func.value.id == "warnings"
            ):
                continue
            if any(kw.arg == "stacklevel" for kw in node.keywords):
                continue
            yield self.finding(
                context,
                node,
                "warnings.warn without stacklevel= blames the shim instead "
                "of the caller",
            )


@rule
class GuardedShardDispatchRule(ProgramRule):
    """RT007: cluster shard dispatch must go through the ShardGuard.

    Every shard-tree operation that crosses a fault-domain boundary —
    routed mutations (``insert_poi``/``delete_poi``/``digest_epoch``),
    bulk loads, bound refreshes (``global_epoch_max`` /
    ``max_aggregate_bound`` on a ``.tree``), and query dispatch
    (``knnta_search``/``sequential_scan``/``CollectiveProcessor(...).run``)
    — must execute inside a guard thunk handed to ``ShardGuard.call``;
    that wrapper owns the timeout, retry/classification, and circuit
    breaker that keep one failing shard from hanging or crashing the
    whole scatter-gather.  A dispatch in a helper passes when the helper
    itself is a guard thunk or every resolvable call chain into it
    (across modules — the shared whole-program pass) starts from one.
    """

    rule_id = "RT007"
    name = "guarded-shard-dispatch"
    rationale = (
        "a shard-tree call outside ShardGuard.call bypasses the per-shard "
        "timeout and circuit breaker, so one sick shard can hang or crash "
        "every query instead of degrading with a bound certificate"
    )

    def applies_to(self, module: str) -> bool:
        # The resilience module *implements* the guard; everything else
        # in the cluster layer — and the continuous layer, which serves
        # subscriptions straight off cluster trees — must dispatch
        # through it.
        return (
            module.startswith(("repro.cluster", "repro.continuous"))
            and module != "repro.cluster.resilience"
        )

    def check_program(self, context: ProgramContext) -> Iterator[Finding]:
        flow = lock_flow(context)
        lambda_calls: set[int] = set()
        guard_roots: set[str] = set()
        for module in context.program.modules.values():
            lambda_calls.update(iter_lambda_thunk_calls(module.tree))
        callsites: dict[str, list[str]] = {}
        candidates: list[tuple[str, ast.Call, str, FunctionSummary]] = []
        for key, summary in flow.summaries.items():
            in_scope = self.applies_to(summary.function.module)
            for site in summary.calls:
                if site.via_thunk:
                    if site.callee is not None:
                        guard_roots.add(site.callee)
                    continue
                if site.callee is not None:
                    callsites.setdefault(site.callee, []).append(key)
                if not in_scope:
                    continue
                name = call_name(site.node)
                if name is None:
                    continue
                if self._is_dispatch(site.node, name):
                    candidates.append((key, site.node, name, summary))
        for key, call, name, summary in candidates:
            if id(call) in lambda_calls:
                continue
            if key in guard_roots:
                continue
            if self._dominated(key, guard_roots, callsites, frozenset({key})):
                continue
            yield self.finding_at(
                flow.path_of(summary.function.module),
                call,
                "%s() dispatches to a shard outside ShardGuard.call; wrap "
                "it in a guard thunk (directly, or with every call site of "
                "%s() inside one)" % (name, summary.function.name),
            )

    @staticmethod
    def _is_dispatch(call: ast.Call, name: str) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return name in LOCKED_READS
        if isinstance(func, ast.Attribute):
            if func.attr == "run":
                return any(
                    isinstance(node, ast.Name)
                    and node.id == "CollectiveProcessor"
                    for node in ast.walk(func.value)
                )
            if func.attr in SHARD_DISPATCH_METHODS:
                # Only calls through a shard tree (``<obj>.tree.m(...)``)
                # cross the fault domain; ``self.insert_poi`` etc. are the
                # coordinator's own public wrappers.
                return (
                    isinstance(func.value, ast.Attribute)
                    and func.value.attr == "tree"
                )
        return False

    def _dominated(
        self,
        key: str,
        guard_roots: set[str],
        callsites: dict[str, list[str]],
        seen: frozenset[str],
    ) -> bool:
        """Does every resolvable call chain into ``key`` start from a
        guard thunk?"""
        sites = callsites.get(key)
        if not sites:
            return False
        for caller in sites:
            if caller in guard_roots:
                continue
            if caller in seen:
                return False
            if not self._dominated(caller, guard_roots, callsites,
                                   seen | {caller}):
                return False
        return True


@rule
class LockOrderRule(ProgramRule):
    """RT008: nested lock acquisitions must descend the hierarchy.

    The canonical order lives in :mod:`repro.devtools.lockmodel` (and
    nowhere else).  This rule derives every (held → acquired) edge the
    call graph can see — lexical nesting plus calls into functions
    that transitively acquire — and reports: rank ascents, cycles in
    the derived graph, re-acquisition of non-reentrant locks, and
    lock-like acquisition sites the model does not declare (the model
    must stay exhaustive).  Unresolvable dynamic calls contribute no
    edges: coverage degrades, false certainties never appear.
    """

    rule_id = "RT008"
    name = "lock-order"
    rationale = (
        "two threads nesting the same locks in different orders deadlock; "
        "one global strictly-descending hierarchy makes that impossible "
        "by construction"
    )

    def check_program(self, context: ProgramContext) -> Iterator[Finding]:
        flow = lock_flow(context)
        edges: dict[tuple[str, str], tuple[str, ast.AST, str]] = {}
        for key, summary in flow.summaries.items():
            path = flow.path_of(summary.function.module)
            for expr in summary.unknown_sites:
                yield self.finding_at(
                    path, expr,
                    "acquisition site is not declared in the lock model "
                    "(repro.devtools.lockmodel); every engine lock must "
                    "carry a canonical name and rank",
                )
            for acq in summary.acquisitions:
                name = acq.site.name
                if name is None:
                    continue
                for held in acq.held_before:
                    edges.setdefault(
                        (held.name, name), (path, acq.node, "acquired here")
                    )
            for site in summary.calls:
                if site.in_lambda or site.callee is None or not site.held:
                    continue
                for inner in sorted(flow.may_acquire.get(site.callee, ())):
                    for held in site.held:
                        edges.setdefault(
                            (held.name, inner),
                            (path, site.node,
                             "via %s()" % _short_key(site.callee)),
                        )
        context.cache["lock_edges"] = [
            {
                "src": src,
                "dst": dst,
                "ok": not self._violates(src, dst),
                "site": "%s:%d" % (path, getattr(node, "lineno", 0)),
                "via": via,
            }
            for (src, dst), (path, node, via) in sorted(edges.items())
        ]
        for (src, dst), (path, node, via) in sorted(edges.items()):
            if src == dst:
                decl = LOCKS.get(src)
                if decl is not None and decl.reentrant:
                    continue
                yield self.finding_at(
                    path, node,
                    "re-acquisition of non-reentrant lock '%s' (%s); "
                    "nesting it deadlocks" % (src, via),
                )
            elif RANK.get(src, -1) > RANK.get(dst, 1 << 30):
                yield self.finding_at(
                    path, node,
                    "lock-order violation: '%s' (rank %d) is held while "
                    "acquiring '%s' (rank %d, %s); the hierarchy requires "
                    "strictly descending ranks — see "
                    "repro.devtools.lockmodel" % (
                        src, RANK[src], dst, RANK[dst], via,
                    ),
                )
        yield from self._cycle_findings(edges)

    @staticmethod
    def _violates(src: str, dst: str) -> bool:
        if src == dst:
            decl = LOCKS.get(src)
            return decl is None or not decl.reentrant
        return RANK.get(src, -1) > RANK.get(dst, 1 << 30)

    def _cycle_findings(
        self, edges: dict[tuple[str, str], tuple[str, ast.AST, str]]
    ) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        for src, dst in edges:
            if src != dst:
                graph.setdefault(src, set()).add(dst)
        seen: set[str] = set()

        def visit(node: str, trail: tuple[str, ...]) -> tuple[str, ...] | None:
            if node in trail:
                return trail[trail.index(node):] + (node,)
            if node in seen:
                return None
            seen.add(node)
            for neighbour in sorted(graph.get(node, ())):
                cycle = visit(neighbour, trail + (node,))
                if cycle is not None:
                    return cycle
            return None

        for start in sorted(graph):
            cycle = visit(start, ())
            if cycle is not None:
                path, node, _via = edges[(cycle[0], cycle[1])]
                yield self.finding_at(
                    path, node,
                    "derived lock graph has a cycle: %s; a cycle means two "
                    "threads can deadlock regardless of ranks"
                    % " -> ".join(cycle),
                )
                return


@rule
class NoBlockingUnderLockRule(ProgramRule):
    """RT009: no blocking operations while holding an exclusive lock.

    Sleeps, fsyncs, socket sends/receives, thread joins and future
    waits under an exclusive lock convert one slow peer into a stalled
    engine — every reader and writer queues behind the holder.  The
    shared read side is exempt by design (queries block under it: that
    is what shared access is for).  Two documented allowances, both
    declared in the lock model: the WAL-before-apply and
    checkpoint/recovery paths (calls into :mod:`repro.reliability` /
    :mod:`repro.storage` — durability *requires* fsync under the
    exclusive lock), and the push lock's socket write (it exists to
    frame one message onto the wire; it is a terminal lock).
    """

    rule_id = "RT009"
    name = "no-blocking-under-lock"
    rationale = (
        "a blocking call under an exclusive lock turns one slow I/O peer "
        "into a whole-engine stall; the WAL path is the one documented "
        "exception"
    )

    def check_program(self, context: ProgramContext) -> Iterator[Finding]:
        flow = lock_flow(context)
        reported: set[tuple[int, str, str]] = set()
        for key, summary in flow.summaries.items():
            module = summary.function.module
            if module.startswith(BLOCKING_ALLOWED_MODULES):
                continue
            path = flow.path_of(module)
            for site in summary.calls:
                if site.in_lambda:
                    continue
                exclusive = [h for h in site.held if h.exclusive()]
                if not exclusive:
                    continue
                kinds: list[tuple[str, str | None]] = []
                direct = self.direct_kind(flow, site)
                if direct is not None:
                    kinds.append((direct, None))
                if site.callee is not None:
                    callee = flow.summaries.get(site.callee)
                    if callee is not None and not callee.function.module \
                            .startswith(BLOCKING_ALLOWED_MODULES):
                        for kind, origin in sorted(
                                flow.blocking.get(site.callee, ())):
                            kinds.append((kind, origin))
                for kind, origin in kinds:
                    blocked = [
                        h.name for h in exclusive
                        if kind not in LOCKS[h.name].blocking_allowed
                    ] if all(h.name in LOCKS for h in exclusive) else [
                        h.name for h in exclusive
                    ]
                    if not blocked:
                        continue
                    marker = (id(site.node), kind, ",".join(blocked))
                    if marker in reported:
                        continue
                    reported.add(marker)
                    where = "" if origin is None else (
                        " (via %s())" % _short_key(origin)
                    )
                    yield self.finding_at(
                        path, site.node,
                        "blocking operation (%s)%s while holding exclusive "
                        "lock(s) %s; move the blocking work outside the "
                        "lock or add a documented allowance in the lock "
                        "model" % (kind, where, ", ".join(sorted(set(blocked)))),
                    )

    @staticmethod
    def direct_kind(flow: LockFlow, site: CallSite) -> str | None:
        return flow.direct_blocking_kind(site)


@rule
class NoForeignCallbackUnderLockRule(ProgramRule):
    """RT010: foreign callbacks run on a snapshot, outside engine locks.

    Observer, subscriber and transition callbacks execute arbitrary
    user code: invoked under an engine lock, that code re-entering the
    engine (an unsubscribe from inside a sink, a health probe from a
    breaker transition) either deadlocks or acquires against the
    hierarchy.  Collect the callbacks under the lock, release it, then
    fire.  The fan-out gate is the one declared exception
    (``foreign_callbacks_allowed``): it protects no engine state, and
    callbacks re-entering through it only ever acquire lower-ranked
    locks.  The core tree's mutation-observer protocol is out of scope
    — its receivers are lock-aware by contract (they may touch only
    their own leaf locks).
    """

    rule_id = "RT010"
    name = "no-foreign-callback-under-lock"
    rationale = (
        "a user callback under an engine lock makes every subscriber a "
        "potential deadlock: re-entering the engine from the callback "
        "acquires against the hierarchy"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(
            ("repro.service", "repro.cluster", "repro.continuous")
        )

    def check_program(self, context: ProgramContext) -> Iterator[Finding]:
        flow = lock_flow(context)
        for key, summary in flow.summaries.items():
            if not self.applies_to(summary.function.module):
                continue
            path = flow.path_of(summary.function.module)
            callback_names = self._callback_locals(summary.function.node)
            inherited = flow.called_with.get(key, set())
            for site in summary.calls:
                if site.in_lambda or site.via_thunk:
                    continue
                if not self._is_callback_call(site.node, callback_names):
                    continue
                held = LockFlow._restricted_locks(site.held) | inherited
                if not held:
                    continue
                yield self.finding_at(
                    path, site.node,
                    "foreign callback invoked under engine lock(s) %s; "
                    "collect callbacks under the lock, release it, then "
                    "fire on the snapshot" % ", ".join(sorted(held)),
                )

    @staticmethod
    def _callback_locals(fn_node: ast.AST) -> set[str]:
        """Local names bound to callback attributes or observer loops."""
        names: set[str] = set()
        for node in ast.walk(fn_node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr in CALLBACK_ATTRS):
                names.add(node.targets[0].id)
            elif isinstance(node, ast.For) and isinstance(node.target,
                                                          ast.Name):
                for inner in ast.walk(node.iter):
                    terminal = _terminal_of(inner) if isinstance(
                        inner, (ast.Attribute, ast.Name)) else None
                    if _name_has(terminal, _CALLBACK_COLLECTION_FRAGMENTS):
                        names.add(node.target.id)
                        break
        return names

    @staticmethod
    def _is_callback_call(call: ast.Call, callback_names: set[str]) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in callback_names
        if isinstance(func, ast.Attribute):
            return func.attr in CALLBACK_ATTRS
        return False


def _short_key(key: str) -> str:
    """``repro.service.service.QueryService.digest`` → ``QueryService.digest``."""
    parts = key.split(".")
    for index, part in enumerate(parts):
        if part and part[0].isupper():
            return ".".join(parts[index:])
    return parts[-1] if parts else key
