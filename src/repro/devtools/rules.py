"""The project's lint rules: the invariants a generic linter cannot know.

Each rule encodes one discipline this repository's correctness arguments
rest on — the service's lock protocol, the WAL-before-apply contract,
``-O``-proof invariant checks, float-comparison hygiene in the geometry
and cost-model hot paths, exception hygiene on the reliability surface,
and caller-pointing deprecation warnings.  The rule-by-rule rationale
(with the paper/WAL/lock invariant each protects) lives in
``docs/DEVTOOLS.md``.

The rules are pure functions of one :class:`~repro.devtools.engine.FileContext`;
registration happens at import time through the
:func:`~repro.devtools.engine.rule` decorator.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import (
    FileContext,
    Finding,
    Rule,
    call_name,
    for_each_call,
    rule,
    walk_functions,
)

#: Tree/TIA mutations that require the exclusive side of the service lock.
LOCKED_MUTATORS = frozenset(
    {"insert_poi", "delete_poi", "digest_epoch", "replace_all"}
)
#: Query entry points that require at least the shared side.
LOCKED_READS = frozenset({"knnta_search", "sequential_scan"})
#: Tree mutations that must ride the WAL inside the service layer.
WAL_MUTATORS = frozenset({"insert_poi", "delete_poi", "digest_epoch"})
#: Shard-tree operations that cross a fault-domain boundary in the
#: cluster layer; each must run inside a ShardGuard thunk (RT007).
SHARD_DISPATCH_METHODS = frozenset(
    {
        "insert_poi",
        "delete_poi",
        "digest_epoch",
        "bulk_load",
        "global_epoch_max",
        "max_aggregate_bound",
    }
)


def _is_local_call(call: ast.Call) -> bool:
    """Is this an intra-module call (``f(...)`` or ``self.f(...)``)?"""
    if isinstance(call.func, ast.Name):
        return True
    return (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == "self"
    )


@rule
class LockDisciplineRule(Rule):
    """RT001: service-layer tree access must hold the right lock side.

    ``insert_poi``/``delete_poi``/``digest_epoch`` and TIA repair
    (``replace_all``) reshape the structure the best-first search is
    concurrently descending; they must be lexically dominated by
    ``write_locked()``.  Query entry points (``knnta_search``,
    ``sequential_scan``, ``CollectiveProcessor(...).run``) need at
    least ``read_locked()``.  A call inside a helper passes when every
    intra-module call site of that helper (transitively) holds the
    required lock — the module-local call-graph pass.
    """

    rule_id = "RT001"
    name = "lock-discipline"
    rationale = (
        "the TAR-tree has no internal synchronisation; Property 1 and the "
        "best-first search are only correct under the service's "
        "readers-writer lock protocol"
    )

    def applies_to(self, module: str) -> bool:
        # The cluster coordinator holds one lock per shard and owes each
        # shard tree the exact same protocol the service owes its tree;
        # the continuous layer's evaluators run under the same locks.
        return module.startswith(
            ("repro.service", "repro.cluster", "repro.continuous")
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        functions = {name for name, _ in walk_functions(context.tree)}
        callsites: dict[str, list[tuple[str, str]]] = {}
        candidates: list[tuple[str, ast.Call, str, str]] = []

        for fname, fnode in walk_functions(context.tree):
            def visit(call: ast.Call, state: str, fname: str = fname) -> None:
                name = call_name(call)
                if name is None:
                    return
                if name in LOCKED_MUTATORS and isinstance(call.func, ast.Attribute):
                    if state != "write":
                        candidates.append((fname, call, "write", name))
                elif self._is_read_entry(call, name) and state == "none":
                    candidates.append((fname, call, "read", name))
                if name in functions and _is_local_call(call):
                    callsites.setdefault(name, []).append((fname, state))

            for_each_call(fnode.body, visit)

        for fname, call, required, name in candidates:
            if self._dominated(fname, required, callsites, frozenset({fname})):
                continue
            if required == "write":
                message = (
                    "%s() mutates shared tree state; it must run inside "
                    "'with ...write_locked():' (directly, or with every "
                    "call site of %s() write-locked)" % (name, fname)
                )
            else:
                message = (
                    "%s() reads shared tree state; it must run inside "
                    "'with ...read_locked():' (or under the write lock)"
                    % (name,)
                )
            yield self.finding(context, call, message)

    @staticmethod
    def _is_read_entry(call: ast.Call, name: str) -> bool:
        if name in LOCKED_READS and isinstance(call.func, ast.Name):
            return True
        if name == "run" and isinstance(call.func, ast.Attribute):
            return any(
                isinstance(node, ast.Name) and node.id == "CollectiveProcessor"
                for node in ast.walk(call.func.value)
            )
        return False

    def _dominated(
        self,
        fname: str,
        required: str,
        callsites: dict[str, list[tuple[str, str]]],
        seen: frozenset[str],
    ) -> bool:
        """Does every intra-module call chain into ``fname`` hold the lock?"""
        sites = callsites.get(fname)
        if not sites:
            return False
        for caller, state in sites:
            if state == "write" or (required == "read" and state == "read"):
                continue
            if caller in seen:
                return False
            if not self._dominated(caller, required, callsites, seen | {caller}):
                return False
        return True


@rule
class WalBeforeApplyRule(Rule):
    """RT002: service-layer mutations must route through the ingest.

    The WAL-before-apply contract (PR 2) makes crash recovery exact:
    every logical mutation is framed into the mutation WAL before tree
    state changes.  Service code therefore calls
    ``self.ingest.insert/delete/digest``; mutating the tree directly is
    legal only in the documented standalone branch — the body of an
    ``if <obj>.ingest is None:`` guard.
    """

    rule_id = "RT002"
    name = "wal-before-apply"
    rationale = (
        "a tree mutation that bypasses CheckpointedIngest never reaches "
        "the WAL, so a crash silently loses it and recover() replays a "
        "diverged history"
    )

    def applies_to(self, module: str) -> bool:
        # Routed cluster mutations carry the same contract per shard:
        # each goes through the owning shard's ingest when one exists.
        # The continuous layer must never mutate the tree at all.
        return module.startswith(
            ("repro.service", "repro.cluster", "repro.continuous")
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call, guarded in self._mutator_calls(context.tree.body, False):
            if guarded:
                continue
            yield self.finding(
                context,
                call,
                "%s() mutates the tree directly; route it through the "
                "attached CheckpointedIngest, or guard the standalone "
                "path with 'if ....ingest is None:'" % (call_name(call),),
            )

    def _mutator_calls(
        self, stmts: list[ast.stmt], guarded: bool
    ) -> Iterator[tuple[ast.Call, bool]]:
        for stmt in stmts:
            if isinstance(stmt, ast.If) and self._is_standalone_guard(stmt.test):
                yield from self._mutator_calls(stmt.body, True)
                yield from self._mutator_calls(stmt.orelse, guarded)
                continue
            yield from self._scan_children(stmt, guarded)

    def _scan_children(
        self, node: ast.AST, guarded: bool
    ) -> Iterator[tuple[ast.Call, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                yield from self._mutator_calls([child], guarded)
            elif isinstance(child, ast.expr):
                for inner in ast.walk(child):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in WAL_MUTATORS
                    ):
                        yield inner, guarded
            else:
                # withitem / excepthandler / match_case wrappers: recurse
                # so their statement suites keep guard tracking.
                yield from self._scan_children(child, guarded)

    @staticmethod
    def _is_standalone_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "ingest"
        )


@rule
class NoBareAssertRule(Rule):
    """RT003: runtime invariants must not rely on ``assert``.

    CI's ``python -O`` leg strips every ``assert`` statement, so an
    invariant guarded only by one is unchecked exactly where the
    optimised build runs.  Raise an explicit exception (``raise
    AssertionError(...)`` keeps the contract) or gate the check on a
    debug flag.
    """

    rule_id = "RT003"
    name = "no-bare-assert"
    rationale = (
        "python -O strips assert statements, so -O CI legs silently skip "
        "any invariant they guard"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    context,
                    node,
                    "assert is stripped under python -O; raise an explicit "
                    "exception instead",
                )


@rule
class FloatEqualityRule(Rule):
    """RT004: no ``==``/``!=`` on float expressions in the numeric core.

    ``spatial.geometry`` and ``core.costmodel`` feed the kNNTA bound
    arithmetic; an exact float comparison there encodes an accidental
    tolerance of zero.  Compare with :func:`math.isclose` or an explicit
    epsilon.  ``__eq__``/``__ne__``/``__hash__`` bodies are exempt —
    value types intentionally define exact equality.
    """

    rule_id = "RT004"
    name = "float-equality"
    rationale = (
        "exact float equality in the geometry/cost-model hot paths turns "
        "rounding noise into wrong pruning decisions"
    )

    _EXEMPT = frozenset({"__eq__", "__ne__", "__hash__"})

    def applies_to(self, module: str) -> bool:
        return module in ("repro.spatial.geometry", "repro.core.costmodel")

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from self._scan(context, context.tree.body)

    def _scan(self, context: FileContext,
              stmts: list[ast.stmt]) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in self._EXEMPT:
                    continue
                yield from self._scan(context, stmt.body)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan(context, stmt.body)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Compare) and self._is_float_equality(node):
                    yield self.finding(
                        context,
                        node,
                        "float equality comparison; use math.isclose or an "
                        "explicit epsilon",
                    )

    def _is_float_equality(self, node: ast.Compare) -> bool:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return False
        return any(
            self._float_like(operand)
            for operand in [node.left, *node.comparators]
        )

    def _float_like(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._float_like(node.left) or self._float_like(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._float_like(node.operand)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                return True
            return (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "math"
            )
        return False


@rule
class ExceptionHygieneRule(Rule):
    """RT005: broad handlers on the reliability surface must not swallow.

    ``except Exception`` in :mod:`repro.reliability` / :mod:`repro.service`
    sits exactly where corruption and crash bugs surface; a handler
    there must re-raise, use the caught exception (report/record it), or
    log it.  A deliberate swallow carries an allow comment so the
    decision is visible in review.
    """

    rule_id = "RT005"
    name = "exception-hygiene"
    rationale = (
        "a swallowed exception on the reliability path converts detectable "
        "corruption into silent divergence"
    )

    _LOG_ATTRS = frozenset(
        {"debug", "info", "warning", "warn", "error", "exception", "critical"}
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(("repro.reliability", "repro.service"))

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_responsibly(node):
                continue
            yield self.finding(
                context,
                node,
                "broad except swallows the exception; re-raise it, record "
                "or log it, or carry an explicit allow comment",
            )

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        names = (
            [type_node] if not isinstance(type_node, ast.Tuple) else type_node.elts
        )
        return any(
            isinstance(name, ast.Name) and name.id in ("Exception", "BaseException")
            for name in names
        )

    def _handles_responsibly(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._LOG_ATTRS
            ):
                return True
        return False


@rule
class WarnStacklevelRule(Rule):
    """RT006: ``warnings.warn`` must pass ``stacklevel``.

    The deprecation shims promise that warnings point at the *caller's*
    file (``tests/test_public_api.py`` pins this); a ``warnings.warn``
    without ``stacklevel`` blames the shim itself, which hides every
    call site the warning exists to surface.
    """

    rule_id = "RT006"
    name = "warn-stacklevel"
    rationale = (
        "without stacklevel a DeprecationWarning names the shim, not the "
        "caller that must migrate"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "warn"
                and isinstance(func.value, ast.Name)
                and func.value.id == "warnings"
            ):
                continue
            if any(kw.arg == "stacklevel" for kw in node.keywords):
                continue
            yield self.finding(
                context,
                node,
                "warnings.warn without stacklevel= blames the shim instead "
                "of the caller",
            )


@rule
class GuardedShardDispatchRule(Rule):
    """RT007: cluster shard dispatch must go through the ShardGuard.

    Every shard-tree operation that crosses a fault-domain boundary —
    routed mutations (``insert_poi``/``delete_poi``/``digest_epoch``),
    bulk loads, bound refreshes (``global_epoch_max`` /
    ``max_aggregate_bound`` on a ``.tree``), and query dispatch
    (``knnta_search``/``sequential_scan``/``CollectiveProcessor(...).run``)
    — must execute inside a guard thunk handed to ``ShardGuard.call``;
    that wrapper owns the timeout, retry/classification, and circuit
    breaker that keep one failing shard from hanging or crashing the
    whole scatter-gather.  A dispatch in a helper passes when the helper
    itself is a guard thunk or every intra-module call chain into it
    starts from one (the RT001-style call-graph pass).
    """

    rule_id = "RT007"
    name = "guarded-shard-dispatch"
    rationale = (
        "a shard-tree call outside ShardGuard.call bypasses the per-shard "
        "timeout and circuit breaker, so one sick shard can hang or crash "
        "every query instead of degrading with a bound certificate"
    )

    def applies_to(self, module: str) -> bool:
        # The resilience module *implements* the guard; everything else
        # in the cluster layer — and the continuous layer, which serves
        # subscriptions straight off cluster trees — must dispatch
        # through it.
        return (
            module.startswith(("repro.cluster", "repro.continuous"))
            and module != "repro.cluster.resilience"
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        guard_roots, lambda_calls = self._guard_thunks(context.tree)
        functions = {name for name, _ in walk_functions(context.tree)}
        callsites: dict[str, list[str]] = {}
        candidates: list[tuple[str, ast.Call, str]] = []

        for fname, fnode in walk_functions(context.tree):
            def visit(call: ast.Call, state: str, fname: str = fname) -> None:
                name = call_name(call)
                if name is None:
                    return
                if self._is_dispatch(call, name):
                    candidates.append((fname, call, name))
                if name in functions and _is_local_call(call):
                    callsites.setdefault(name, []).append(fname)

            for_each_call(fnode.body, visit)

        for fname, call, name in candidates:
            if id(call) in lambda_calls:
                continue
            if fname in guard_roots:
                continue
            if self._dominated(fname, guard_roots, callsites, frozenset({fname})):
                continue
            yield self.finding(
                context,
                call,
                "%s() dispatches to a shard outside ShardGuard.call; wrap "
                "it in a guard thunk (directly, or with every call site of "
                "%s() inside one)" % (name, fname),
            )

    @staticmethod
    def _guard_thunks(tree: ast.AST) -> tuple[set[str], set[int]]:
        """Names of functions passed as thunks to ``<guard>.call(...)``,
        plus ``id()``s of Call nodes inside lambda thunks."""
        roots: set[str] = set()
        lambda_calls: set[int] = set()
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "call"
            ):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    roots.add(arg.id)
                elif isinstance(arg, ast.Lambda):
                    for inner in ast.walk(arg):
                        if isinstance(inner, ast.Call):
                            lambda_calls.add(id(inner))
        return roots, lambda_calls

    @staticmethod
    def _is_dispatch(call: ast.Call, name: str) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return name in LOCKED_READS
        if isinstance(func, ast.Attribute):
            if func.attr == "run":
                return any(
                    isinstance(node, ast.Name)
                    and node.id == "CollectiveProcessor"
                    for node in ast.walk(func.value)
                )
            if func.attr in SHARD_DISPATCH_METHODS:
                # Only calls through a shard tree (``<obj>.tree.m(...)``)
                # cross the fault domain; ``self.insert_poi`` etc. are the
                # coordinator's own public wrappers.
                return (
                    isinstance(func.value, ast.Attribute)
                    and func.value.attr == "tree"
                )
        return False

    def _dominated(
        self,
        fname: str,
        guard_roots: set[str],
        callsites: dict[str, list[str]],
        seen: frozenset[str],
    ) -> bool:
        """Does every intra-module call chain into ``fname`` start from a
        guard thunk?"""
        sites = callsites.get(fname)
        if not sites:
            return False
        for caller in sites:
            if caller in guard_roots:
                continue
            if caller in seen:
                return False
            if not self._dominated(caller, guard_roots, callsites, seen | {caller}):
                return False
        return True
