"""Graceful degradation and crash recovery.

Two halves:

* **Robust querying** — :func:`robust_knnta` answers a kNNTA query
  under the fault model of :mod:`repro.reliability.faults`: TIA reads
  that raise :class:`~repro.reliability.faults.TransientIOError` are
  retried with bounded exponential backoff, and when the index itself
  is damaged (persistent faults, or corruption detected by
  :mod:`repro.reliability.validate`) the query degrades to the exact
  :func:`~repro.core.scan.sequential_scan` baseline over the leaf TIAs
  — slower, never wrong.

* **Crash-recoverable streaming ingest** — :class:`CheckpointedIngest`
  pairs a checksummed tree snapshot with the typed, append-only
  mutation WAL of :mod:`repro.reliability.wal`.  *Every* logical
  mutation — ``insert_poi``, ``delete_poi`` and ``digest_epoch`` — is
  logged (write-ahead, through the tree's mutation-listener hooks)
  before it is applied, so :func:`recover` can rebuild a tree killed
  mid-mutation: load the snapshot, replay the WAL idempotently past
  the snapshot's applied-LSN high-water mark, drop a torn tail, and
  optionally reconcile against the source data set via
  :func:`repro.datasets.streaming.catch_up` — reaching a state exactly
  consistent with the stream.
"""

import os
import time
import warnings

from repro.reliability.faults import TransientIOError
from repro.reliability.validate import validate_tree
from repro.reliability.wal import (
    RECORD_CHECKPOINT,
    RECORD_DELETE,
    RECORD_DIGEST,
    RECORD_INSERT,
    MutationWAL,
    read_wal,
)
from repro.storage.serialize import load_tree, save_tree
from repro.temporal.tia import AggregateKind, IntervalSemantics

_DEFAULT_SLEEP = object()


class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    ``run(operation)`` retries ``operation`` up to ``max_retries`` times
    on :class:`TransientIOError`, sleeping ``backoff * factor**i``
    (capped at ``max_backoff``) between attempts.  ``sleep=None``
    disables sleeping (tests); ``retries_used`` accumulates across
    calls so a whole query's retry budget is observable.
    """

    def __init__(
        self,
        max_retries=8,
        backoff=0.001,
        factor=2.0,
        max_backoff=0.05,
        sleep=_DEFAULT_SLEEP,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0, got %r" % (max_retries,))
        self.max_retries = max_retries
        self.backoff = backoff
        self.factor = factor
        self.max_backoff = max_backoff
        self._sleep = time.sleep if sleep is _DEFAULT_SLEEP else sleep
        self.retries_used = 0

    def run(self, operation):
        """Call ``operation`` until it succeeds or the budget is spent."""
        delay = self.backoff
        attempt = 0
        while True:
            try:
                return operation()
            except TransientIOError:
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self.retries_used += 1
                if self._sleep is not None and delay > 0:
                    self._sleep(min(delay, self.max_backoff))
                delay *= self.factor


class _RetryingTree:
    """A duck-typed TAR-tree view whose TIA reads retry transient faults.

    Only the aggregate-reading entry points are intercepted; every other
    attribute resolves on the wrapped tree, so the BFS and the scan run
    unchanged on top of it.

    ``frames`` is pinned to ``None`` (a class attribute, so
    ``__getattr__`` never fires for it): the packed frames would answer
    aggregates from cached buffers, bypassing the very TIA reads this
    view exists to retry.
    """

    frames = None

    def __init__(self, tree, policy):
        self._tree = tree
        self._policy = policy

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def tia_aggregate(self, tia, interval, semantics=IntervalSemantics.INTERSECTS):
        return self._policy.run(
            lambda: self._tree.tia_aggregate(tia, interval, semantics)
        )

    def normalizer(self, interval, semantics=IntervalSemantics.INTERSECTS,
                   exact=False):
        return self._policy.run(
            lambda: self._tree.normalizer(interval, semantics, exact)
        )


class RobustAnswer:
    """Result of :func:`robust_knnta` plus how it was obtained.

    ``results`` is the ranked :class:`~repro.core.query.QueryResult`
    list a plain ``knnta_search`` would return, and the answer itself
    behaves as that sequence (``iter``, ``len``, indexing and slicing),
    so callers destructure a :class:`RobustAnswer` exactly like the
    plain result rows.  ``used_fallback`` tells whether the sequential
    scan answered instead of the BFS, ``reason`` why (``"corruption"``
    or ``"transient-faults"``), and ``retries`` how many transient
    faults were absorbed along the way.

    Satisfies the :class:`~repro.core.query.Answer` protocol: whichever
    path answered — BFS or scan fallback — the rows are exact (the
    fallback is the exact baseline, slower but never wrong), so
    ``exact`` is ``True`` and ``coverage`` 1.0.
    """

    __slots__ = ("results", "used_fallback", "reason", "retries", "validation")

    exact = True
    coverage = 1.0
    score_bound = None
    degraded = False
    missed_shards = ()

    @property
    def rows(self):
        return self.results

    def __init__(self, results, used_fallback=False, reason=None, retries=0,
                 validation=None):
        self.results = results
        self.used_fallback = used_fallback
        self.reason = reason
        self.retries = retries
        self.validation = validation

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __repr__(self):
        return "RobustAnswer(%d results, used_fallback=%r, reason=%r, retries=%d)" % (
            len(self.results),
            self.used_fallback,
            self.reason,
            self.retries,
        )


def robust_knnta(tree, query, normalizer=None, retry=None, validate=False,
                 fallback=True):
    """Answer ``query`` on ``tree``, degrading gracefully under faults.

    Transient TIA faults are retried per read under ``retry`` (a
    :class:`RetryPolicy`; one with defaults is created when omitted).
    With ``validate=True`` the deep invariant validators run first and a
    damaged tree is answered by the scan baseline over the leaf TIAs
    (with an exact normaliser), which stays correct when internal TIAs
    lie.  When the retry budget is exhausted and ``fallback`` is true,
    the scan baseline — itself retried — answers instead; with
    ``fallback=False`` the fault propagates.

    Returns a :class:`RobustAnswer`; its ``results`` equal the
    fault-free ``knnta_search`` output whenever the BFS path succeeds.
    """
    from repro.core.knnta import knnta_search
    from repro.core.scan import sequential_scan

    if retry is None:
        retry = RetryPolicy()
    view = _RetryingTree(tree, retry)
    report = None
    if validate:
        report = validate_tree(tree)
        if not report.ok:
            scan_normalizer = normalizer
            if scan_normalizer is None:
                scan_normalizer = view.normalizer(
                    query.interval, query.semantics, exact=True
                )
            results = sequential_scan(view, query, normalizer=scan_normalizer)
            return RobustAnswer(
                results,
                used_fallback=True,
                reason="corruption",
                retries=retry.retries_used,
                validation=report,
            )
    try:
        results = knnta_search(view, query, normalizer=normalizer)
        return RobustAnswer(
            results, retries=retry.retries_used, validation=report
        )
    except TransientIOError:
        if not fallback:
            raise
    results = sequential_scan(view, query, normalizer=normalizer)
    return RobustAnswer(
        results,
        used_fallback=True,
        reason="transient-faults",
        retries=retry.retries_used,
        validation=report,
    )


# ---------------------------------------------------------------------------
# Checkpointed ingest over the mutation WAL
# ---------------------------------------------------------------------------


def _wal_path(directory, name):
    """The mutation WAL path for ``<directory>/<name>``.

    New state uses ``<name>.wal``; a directory holding only the PR-1
    ``<name>.digestlog`` keeps using it, so legacy state stays
    recoverable — and appendable — in place.
    """
    wal = os.path.join(directory, name + ".wal")
    legacy = os.path.join(directory, name + ".digestlog")
    if not os.path.exists(wal) and os.path.exists(legacy):
        return legacy
    return wal


class CheckpointedIngest:
    """Streaming ingest with write-ahead logging and checkpoints.

    Wraps a live tree and attaches itself as the tree's *mutation
    listener*, so every logical mutation — ``insert_poi``,
    ``delete_poi`` and ``digest_epoch``, whether issued through the
    convenience methods here or directly on the tree — is framed into
    the mutation WAL *before* any tree state changes.
    :meth:`checkpoint` atomically persists a checksummed snapshot (temp
    file + ``os.replace``) carrying the tree's applied-LSN high-water
    mark, then resets the log to a single checkpoint marker.

    Mutations the WAL cannot express (``bulk_load``,
    ``refresh_aggregate_dimension``) raise
    :class:`~repro.core.tar_tree.UnloggedMutationError` while the tree
    is wrapped, instead of silently diverging from the log; detach by
    calling :meth:`close`.

    ``directory`` receives ``<name>.json`` (the snapshot) and
    ``<name>.wal`` (the log; a pre-existing PR-1 ``<name>.digestlog``
    is reused in place).  A snapshot is written on construction when
    none exists, so :func:`recover` always has a base state.
    """

    def __init__(self, tree, directory, name="tree"):
        self.tree = tree
        self.directory = directory
        self.name = name
        os.makedirs(directory, exist_ok=True)
        self.snapshot_path = os.path.join(directory, name + ".json")
        self.log_path = _wal_path(directory, name)
        self.log = MutationWAL(self.log_path)
        self._last_logged_lsn = None
        try:
            tree.attach_mutation_listener(self)
        except ValueError:
            # The only attach failure: the tree already has a different
            # live listener.  Release the WAL handle before propagating
            # so the failed construction leaks no open file.
            self.log.close()
            raise
        if not os.path.exists(self.snapshot_path):
            self._write_snapshot()

    def _write_snapshot(self):
        # fsync before the rename: checkpoint() resets the WAL right
        # after this returns, so the snapshot must be durable first or a
        # power loss could leave a bare marker over a vanished snapshot.
        temp_path = self.snapshot_path + ".tmp"
        save_tree(self.tree, temp_path)
        with open(temp_path, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(temp_path, self.snapshot_path)
        try:
            dir_fd = os.open(self.directory or ".", os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename is best-effort
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # Mutation-listener hooks (called by the tree, write-ahead)
    # ------------------------------------------------------------------

    def will_insert_poi(self, tree, poi, epoch_aggregates):
        """Log a validated insertion just before the tree applies it."""
        lsn = self.log.log_insert(poi.poi_id, poi.x, poi.y, epoch_aggregates)
        tree.applied_lsn = lsn
        self._last_logged_lsn = lsn

    def will_delete_poi(self, tree, poi_id):
        """Log a deletion of an indexed POI before it happens."""
        lsn = self.log.log_delete(poi_id)
        tree.applied_lsn = lsn
        self._last_logged_lsn = lsn

    def will_digest_epoch(self, tree, epoch_index, counts):
        """Log one epoch batch, with the absolute value each TIA must
        reach, before any TIA changes.

        Unknown POIs are rejected *here*, before the record is written
        and before ``digest_epoch`` touches any state, so a bad batch
        can neither half-apply nor poison the log.  Batches whose every
        count is non-positive still log (with an empty pair list):
        ``digest_epoch`` advances the tree's clock even then, and replay
        must reproduce that.
        """
        is_max = tree.aggregate_kind is AggregateKind.MAX
        pairs = []
        for poi_id in sorted(counts, key=lambda poi: (str(type(poi)), str(poi))):
            delta = counts[poi_id]
            if delta <= 0:
                continue
            if poi_id not in tree:
                raise KeyError(
                    "cannot digest check-ins for unknown POI %r" % (poi_id,)
                )
            current = tree.poi_tia(poi_id).get(epoch_index)
            value_after = max(current, delta) if is_max else current + delta
            pairs.append([poi_id, delta, value_after])
        lsn = self.log.log_digest(epoch_index, pairs)
        tree.applied_lsn = lsn
        self._last_logged_lsn = lsn

    # ------------------------------------------------------------------
    # Ingest API
    # ------------------------------------------------------------------

    def digest(self, epoch_index, counts):
        """Log, then apply, one epoch's check-in batch (Section 4.2).

        Returns the batch's LSN, or ``None`` when every count was
        non-positive — such a batch is dropped whole (neither logged
        nor applied, and the clock does not advance).
        """
        if not any(delta > 0 for delta in counts.values()):
            return None
        self.tree.digest_epoch(epoch_index, counts)
        return self._last_logged_lsn

    def insert(self, poi, epoch_aggregates=None):
        """Log, then apply, one POI insertion; returns its LSN."""
        self.tree.insert_poi(poi, epoch_aggregates)
        return self._last_logged_lsn

    def delete(self, poi_id):
        """Log, then apply, one POI deletion.

        Returns the record's LSN, or ``None`` when ``poi_id`` was not
        indexed — a miss is not a mutation and is never logged.
        """
        if self.tree.delete_poi(poi_id):
            return self._last_logged_lsn
        return None

    def checkpoint(self):
        """Persist the tree atomically and reset the log.

        Snapshot first, reset second: a crash between the two leaves a
        log whose records all sit at or below the snapshot's applied-LSN
        high-water mark, so :func:`recover` replays them as no-ops.
        """
        self._write_snapshot()
        self.log.reset(self.tree.applied_lsn)
        return self.snapshot_path

    def close(self):
        """Detach from the tree and close the log.

        The tree becomes freely mutable again (and the WAL stops being
        its source of truth) — take a checkpoint first if the log must
        stay replayable.
        """
        self.tree.detach_mutation_listener(self)
        self.log.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class RecoveryReport:
    """What :func:`recover` did: the tree plus replay/reconcile counters.

    ``replayed`` maps each mutation record type (``"insert"``,
    ``"delete"``, ``"digest"``) to the number of records whose replay
    changed tree state; ``last_lsn`` is the applied-LSN high-water mark
    after replay (``None`` for a legacy state that never recorded one).
    ``caught_up_checkins`` is the number of check-ins reconciled from
    the source data set, ``0`` when no reconciliation was needed, or
    ``None`` when it was requested but *skipped* — a max-aggregate tree
    cannot be reconciled by :func:`~repro.datasets.streaming.catch_up`,
    so a batch whose log record was torn away may remain unrecovered.
    """

    __slots__ = (
        "tree",
        "replayed",
        "dropped_tail_records",
        "skipped_pois",
        "caught_up_checkins",
        "last_lsn",
    )

    def __init__(self, tree, replayed, dropped_tail_records,
                 skipped_pois, caught_up_checkins, last_lsn):
        self.tree = tree
        self.replayed = replayed
        self.dropped_tail_records = dropped_tail_records
        self.skipped_pois = skipped_pois
        self.caught_up_checkins = caught_up_checkins
        self.last_lsn = last_lsn

    @property
    def replayed_epochs(self):
        """Replayed ``digest`` records (the PR-1 counter's name)."""
        return self.replayed[RECORD_DIGEST]

    def summary(self):
        """One-line description of the recovery outcome."""
        if self.caught_up_checkins is None:
            caught_up = (
                "data-set reconciliation skipped (max-aggregate tree)"
            )
        else:
            caught_up = (
                "%d check-in(s) caught up from the data set"
                % self.caught_up_checkins
            )
        return (
            "recovered %d POIs at LSN %s: %d insert(s), %d delete(s) and "
            "%d epoch batch(es) replayed, %d torn log record(s) dropped, "
            "%d unknown POI entr(ies) skipped, %s"
            % (
                len(self.tree),
                self.last_lsn,
                self.replayed[RECORD_INSERT],
                self.replayed[RECORD_DELETE],
                self.replayed[RECORD_DIGEST],
                self.dropped_tail_records,
                self.skipped_pois,
                caught_up,
            )
        )

    def __repr__(self):
        return "RecoveryReport(%s)" % self.summary()


def recover(directory, name="tree", dataset=None, stats=None, **overrides):
    """Rebuild a :class:`CheckpointedIngest` state after a crash.

    Loads the checksummed snapshot and replays the mutation WAL
    idempotently: records at or below the snapshot's applied-LSN
    high-water mark are skipped outright, an ``insert`` of an
    already-present POI and a ``delete`` of an absent one are no-ops,
    each ``digest`` record raises TIAs to its recorded absolute values
    (so half-applied batches and legacy post-checkpoint leftovers are
    harmless), a torn tail is dropped, and ``checkpoint`` markers are
    ignored.  When the source ``dataset`` is given,
    :func:`repro.datasets.streaming.catch_up` then reconciles the tree
    with the stream, covering any batch whose log record was lost with
    the crash.  Returns a :class:`RecoveryReport`.

    For a *max*-aggregate tree ``catch_up`` cannot reconcile (epochs are
    peaks, not additive counts), so the data-set pass is skipped and the
    report's ``caught_up_checkins`` is ``None``: a batch torn away with
    the crash stays unrecovered, and callers must not assume exact
    consistency beyond the last intact log record.
    """
    from repro.core.tar_tree import POI
    from repro.datasets.streaming import catch_up

    snapshot_path = os.path.join(directory, name + ".json")
    log_path = _wal_path(directory, name)
    tree = load_tree(snapshot_path, stats=stats, **overrides)
    records, dropped = read_wal(log_path)
    is_max = tree.aggregate_kind is AggregateKind.MAX
    replayed = {RECORD_INSERT: 0, RECORD_DELETE: 0, RECORD_DIGEST: 0}
    skipped = 0
    applied = tree.applied_lsn
    for record in records:
        if record.type == RECORD_CHECKPOINT:
            continue  # marker only; never advances the high-water mark
        if applied is not None and record.lsn <= applied:
            continue  # already contained in the snapshot
        if record.type == RECORD_INSERT:
            poi_id, x, y, history = record.payload
            if poi_id not in tree:
                aggregates = {int(epoch): value for epoch, value in history}
                tree.insert_poi(POI(poi_id, x, y), aggregates or None)
                replayed[RECORD_INSERT] += 1
        elif record.type == RECORD_DELETE:
            (poi_id,) = record.payload
            if tree.delete_poi(poi_id):
                replayed[RECORD_DELETE] += 1
        else:
            epoch_index, pairs = record.payload
            deltas = {}
            for poi_id, _delta, value_after in pairs:
                if poi_id not in tree:
                    skipped += 1
                    continue
                current = tree.poi_tia(poi_id).get(epoch_index)
                if value_after > current:
                    deltas[poi_id] = (
                        value_after if is_max else value_after - current
                    )
            if deltas:
                replayed[RECORD_DIGEST] += 1
            # Replay even an empty batch: digest_epoch advances the
            # clock, and the original run's record did exactly that.
            tree.digest_epoch(epoch_index, deltas)
        tree.applied_lsn = record.lsn
    caught_up = 0
    if dataset is not None:
        # catch_up() raises for MAX trees; record the skip instead of
        # silently reporting "0 caught up" as if reconciliation ran.
        caught_up = None if is_max else catch_up(tree, dataset)
    return RecoveryReport(
        tree, replayed, dropped, skipped, caught_up, tree.applied_lsn
    )


# ---------------------------------------------------------------------------
# Deprecated PR-1 digest-log aliases
# ---------------------------------------------------------------------------


def _warn_digest_log(name):
    warnings.warn(
        "%s is deprecated; use the typed mutation WAL "
        "(repro.reliability.wal.MutationWAL / read_wal)" % name,
        DeprecationWarning,
        stacklevel=3,
    )


class DigestLog:
    """Deprecated PR-1 facade over :class:`~repro.reliability.wal.MutationWAL`.

    ``append(epoch_index, pairs)`` maps to
    :meth:`~repro.reliability.wal.MutationWAL.log_digest` and
    ``truncate()`` to :meth:`~repro.reliability.wal.MutationWAL.reset`
    (which now leaves a single checkpoint marker — LSNs keep increasing
    instead of restarting at zero).
    """

    def __init__(self, path):
        _warn_digest_log("DigestLog")
        self._wal = MutationWAL(path)
        self.path = path

    def append(self, epoch_index, pairs):
        return self._wal.log_digest(epoch_index, pairs)

    def truncate(self):
        self._wal.reset()

    def close(self):
        self._wal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def read_digest_log(path):
    """Deprecated: read a log's ``digest`` records in the PR-1 shape.

    Returns ``([[lsn, epoch_index, pairs], ...], dropped_tail_lines)``,
    ignoring every non-``digest`` record.  Use
    :func:`repro.reliability.wal.read_wal` for the full typed stream.
    """
    _warn_digest_log("read_digest_log")
    records, dropped = read_wal(path)
    bodies = [
        [record.lsn, record.payload[0], record.payload[1]]
        for record in records
        if record.type == RECORD_DIGEST
    ]
    return bodies, dropped
