"""Graceful degradation and crash recovery.

Two halves:

* **Robust querying** — :func:`robust_knnta` answers a kNNTA query
  under the fault model of :mod:`repro.reliability.faults`: TIA reads
  that raise :class:`~repro.reliability.faults.TransientIOError` are
  retried with bounded exponential backoff, and when the index itself
  is damaged (persistent faults, or corruption detected by
  :mod:`repro.reliability.validate`) the query degrades to the exact
  :func:`~repro.core.scan.sequential_scan` baseline over the leaf TIAs
  — slower, never wrong.

* **Crash-recoverable streaming ingest** — :class:`CheckpointedIngest`
  pairs a checksummed tree snapshot with an append-only, CRC-framed
  *digest log*.  Every ``digest_epoch`` batch is logged (write-ahead,
  with the absolute per-POI value it must reach) before it is applied,
  so :func:`recover` can rebuild a tree killed mid-epoch: load the
  snapshot, replay the log idempotently, drop a torn tail, and finally
  reconcile against the source data set via
  :func:`repro.datasets.streaming.catch_up` — reaching a state exactly
  consistent with the stream.
"""

import json
import os
import time
import zlib

from repro.reliability.faults import TransientIOError
from repro.reliability.validate import validate_tree
from repro.storage.serialize import CorruptSnapshotError, load_tree, save_tree
from repro.temporal.tia import AggregateKind, IntervalSemantics

_DEFAULT_SLEEP = object()


class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    ``run(operation)`` retries ``operation`` up to ``max_retries`` times
    on :class:`TransientIOError`, sleeping ``backoff * factor**i``
    (capped at ``max_backoff``) between attempts.  ``sleep=None``
    disables sleeping (tests); ``retries_used`` accumulates across
    calls so a whole query's retry budget is observable.
    """

    def __init__(
        self,
        max_retries=8,
        backoff=0.001,
        factor=2.0,
        max_backoff=0.05,
        sleep=_DEFAULT_SLEEP,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0, got %r" % (max_retries,))
        self.max_retries = max_retries
        self.backoff = backoff
        self.factor = factor
        self.max_backoff = max_backoff
        self._sleep = time.sleep if sleep is _DEFAULT_SLEEP else sleep
        self.retries_used = 0

    def run(self, operation):
        """Call ``operation`` until it succeeds or the budget is spent."""
        delay = self.backoff
        attempt = 0
        while True:
            try:
                return operation()
            except TransientIOError:
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self.retries_used += 1
                if self._sleep is not None and delay > 0:
                    self._sleep(min(delay, self.max_backoff))
                delay *= self.factor


class _RetryingTree:
    """A duck-typed TAR-tree view whose TIA reads retry transient faults.

    Only the aggregate-reading entry points are intercepted; every other
    attribute resolves on the wrapped tree, so the BFS and the scan run
    unchanged on top of it.
    """

    def __init__(self, tree, policy):
        self._tree = tree
        self._policy = policy

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def tia_aggregate(self, tia, interval, semantics=IntervalSemantics.INTERSECTS):
        return self._policy.run(
            lambda: self._tree.tia_aggregate(tia, interval, semantics)
        )

    def normalizer(self, interval, semantics=IntervalSemantics.INTERSECTS,
                   exact=False):
        return self._policy.run(
            lambda: self._tree.normalizer(interval, semantics, exact)
        )


class RobustAnswer:
    """Result of :func:`robust_knnta` plus how it was obtained.

    ``results`` is the ranked list a plain ``knnta_search`` would
    return; ``used_fallback`` tells whether the sequential scan answered
    instead of the BFS, ``reason`` why (``"corruption"`` or
    ``"transient-faults"``), and ``retries`` how many transient faults
    were absorbed along the way.
    """

    __slots__ = ("results", "used_fallback", "reason", "retries", "validation")

    def __init__(self, results, used_fallback=False, reason=None, retries=0,
                 validation=None):
        self.results = results
        self.used_fallback = used_fallback
        self.reason = reason
        self.retries = retries
        self.validation = validation

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __repr__(self):
        return "RobustAnswer(%d results, used_fallback=%r, reason=%r, retries=%d)" % (
            len(self.results),
            self.used_fallback,
            self.reason,
            self.retries,
        )


def robust_knnta(tree, query, normalizer=None, retry=None, validate=False,
                 fallback=True):
    """Answer ``query`` on ``tree``, degrading gracefully under faults.

    Transient TIA faults are retried per read under ``retry`` (a
    :class:`RetryPolicy`; one with defaults is created when omitted).
    With ``validate=True`` the deep invariant validators run first and a
    damaged tree is answered by the scan baseline over the leaf TIAs
    (with an exact normaliser), which stays correct when internal TIAs
    lie.  When the retry budget is exhausted and ``fallback`` is true,
    the scan baseline — itself retried — answers instead; with
    ``fallback=False`` the fault propagates.

    Returns a :class:`RobustAnswer`; its ``results`` equal the
    fault-free ``knnta_search`` output whenever the BFS path succeeds.
    """
    from repro.core.knnta import knnta_search
    from repro.core.scan import sequential_scan

    if retry is None:
        retry = RetryPolicy()
    view = _RetryingTree(tree, retry)
    report = None
    if validate:
        report = validate_tree(tree)
        if not report.ok:
            scan_normalizer = normalizer
            if scan_normalizer is None:
                scan_normalizer = view.normalizer(
                    query.interval, query.semantics, exact=True
                )
            results = sequential_scan(view, query, normalizer=scan_normalizer)
            return RobustAnswer(
                results,
                used_fallback=True,
                reason="corruption",
                retries=retry.retries_used,
                validation=report,
            )
    try:
        results = knnta_search(view, query, normalizer=normalizer)
        return RobustAnswer(
            results, retries=retry.retries_used, validation=report
        )
    except TransientIOError:
        if not fallback:
            raise
    results = sequential_scan(view, query, normalizer=normalizer)
    return RobustAnswer(
        results,
        used_fallback=True,
        reason="transient-faults",
        retries=retry.retries_used,
        validation=report,
    )


# ---------------------------------------------------------------------------
# Digest log + checkpointing
# ---------------------------------------------------------------------------


def _frame(body):
    return "%08x %s\n" % (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, body)


def _parse_line(line):
    """Return the decoded record, or ``None`` for a damaged line."""
    line = line.rstrip("\n")
    if not line:
        return None
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, body = line[:8], line[9:]
    try:
        stored = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != stored:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    if (
        not isinstance(record, list)
        or len(record) != 3
        or not isinstance(record[2], list)
    ):
        return None
    return record


class DigestLog:
    """An append-only, CRC-framed log of digested epoch batches.

    Each line is ``<crc32 hex> <json>`` with the JSON body
    ``[seq, epoch_index, [[poi_id, delta, value_after], ...]]``.
    ``value_after`` is the *absolute* TIA value the batch must reach,
    which makes replay idempotent: a record whose effects are already in
    a snapshot (or were half-applied before a crash) replays as a
    no-op.  A torn final line — the signature of a crash mid-append —
    is detected by its failed CRC and dropped; a damaged line *before*
    intact ones means real corruption and raises
    :class:`~repro.storage.serialize.CorruptSnapshotError`.

    Opening an existing log *repairs* a torn tail: the file is truncated
    back to the end of its last intact record before the append handle
    is created, so a post-crash append starts on a fresh line instead of
    concatenating onto the torn fragment (which would garble the new,
    acked record and poison every later read).
    """

    def __init__(self, path):
        self.path = path
        # Scan before opening for append: a CorruptSnapshotError here
        # must not leak a handle, and a torn tail must be cut off so the
        # next append starts at a clean record boundary.
        records, _dropped, valid_end = _scan_digest_log(path)
        self._seq = records[-1][0] + 1 if records else 0
        if os.path.exists(path) and os.path.getsize(path) > valid_end:
            with open(path, "r+b") as repair:
                repair.truncate(valid_end)
                repair.flush()
                os.fsync(repair.fileno())
        self._handle = open(path, "a")

    def append(self, epoch_index, pairs):
        """Frame and durably append one batch; returns its sequence number."""
        seq = self._seq
        body = json.dumps(
            [seq, int(epoch_index), [list(pair) for pair in pairs]],
            separators=(",", ":"),
        )
        self._handle.write(_frame(body))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seq += 1
        return seq

    def truncate(self):
        """Drop every record (after a checkpoint made them redundant)."""
        self._handle.close()
        self._handle = open(self.path, "w")
        self._handle.flush()
        self._seq = 0

    def close(self):
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _scan_digest_log(path):
    """Parse a digest log at byte granularity.

    Returns ``(records, dropped_tail_lines, valid_prefix_bytes)`` where
    ``valid_prefix_bytes`` is the file offset just past the last intact,
    newline-terminated record — the truncation point that discards a
    torn tail without touching any acked data.  Raises
    :class:`CorruptSnapshotError` when damage appears *before* intact
    records (mid-log corruption) or sequence numbers go backwards.
    """
    if not os.path.exists(path):
        return [], 0, 0
    with open(path, "rb") as handle:
        data = handle.read()
    entries = []  # (record_or_None, end_offset_incl_newline) per non-blank line
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        end = len(data) if newline == -1 else newline + 1
        chunk = data[pos:end]
        if chunk.strip():
            record = _parse_line(chunk.decode("utf-8", errors="replace"))
            # A final line without its newline is torn even if the CRC
            # happens to pass — never treat it as a safe append point.
            if newline == -1:
                record = None
            entries.append((record, end))
        pos = end
    last_ok = -1
    for i, (record, _end) in enumerate(entries):
        if record is not None:
            last_ok = i
    bad_before_ok = sum(1 for record, _ in entries[: last_ok + 1] if record is None)
    if bad_before_ok:
        raise CorruptSnapshotError(
            "digest log %s has %d corrupt record(s) before intact ones"
            % (path, bad_before_ok),
            section="digest-log",
        )
    records = [record for record, _ in entries if record is not None]
    for earlier, later in zip(records, records[1:]):
        if later[0] <= earlier[0]:
            raise CorruptSnapshotError(
                "digest log %s has non-monotonic sequence numbers (%d then %d)"
                % (path, earlier[0], later[0]),
                section="digest-log",
            )
    valid_end = entries[last_ok][1] if last_ok >= 0 else 0
    return records, len(entries) - (last_ok + 1), valid_end


def read_digest_log(path):
    """Parse a digest log; returns ``(records, dropped_tail_lines)``.

    ``records`` holds the intact ``[seq, epoch, pairs]`` bodies in
    order; ``dropped_tail_lines`` counts torn/garbled lines at the tail.
    Raises :class:`CorruptSnapshotError` when damage appears *before*
    intact records (mid-log corruption) or sequence numbers go
    backwards.
    """
    records, dropped, _valid_end = _scan_digest_log(path)
    return records, dropped


class CheckpointedIngest:
    """Streaming ingest with write-ahead logging and checkpoints.

    Wraps a live tree so every digested epoch is framed into the digest
    log *before* it touches the TIAs, and :meth:`checkpoint` atomically
    persists a checksummed snapshot (temp file + ``os.replace``) and
    resets the log.  POI insertions/deletions are not logged — take a
    checkpoint after changing the POI set.

    ``directory`` receives ``<name>.json`` (the snapshot) and
    ``<name>.digestlog``.  A snapshot is written on construction when
    none exists, so :func:`recover` always has a base state.
    """

    def __init__(self, tree, directory, name="tree"):
        self.tree = tree
        self.directory = directory
        self.name = name
        os.makedirs(directory, exist_ok=True)
        self.snapshot_path = os.path.join(directory, name + ".json")
        self.log_path = os.path.join(directory, name + ".digestlog")
        if not os.path.exists(self.snapshot_path):
            self._write_snapshot()
        self.log = DigestLog(self.log_path)

    def _write_snapshot(self):
        # fsync before the rename: checkpoint() truncates the WAL right
        # after this returns, so the snapshot must be durable first or a
        # power loss could leave an empty log over a vanished snapshot.
        temp_path = self.snapshot_path + ".tmp"
        save_tree(self.tree, temp_path)
        with open(temp_path, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(temp_path, self.snapshot_path)
        try:
            dir_fd = os.open(self.directory or ".", os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename is best-effort
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def digest(self, epoch_index, counts):
        """Log, then apply, one epoch's check-in batch (Section 4.2)."""
        tree = self.tree
        is_max = tree.aggregate_kind is AggregateKind.MAX
        pairs = []
        for poi_id in sorted(counts, key=lambda poi: (str(type(poi)), str(poi))):
            delta = counts[poi_id]
            if delta <= 0:
                continue
            current = tree.poi_tia(poi_id).get(epoch_index)
            value_after = max(current, delta) if is_max else current + delta
            pairs.append([poi_id, delta, value_after])
        if not pairs:
            return None
        seq = self.log.append(epoch_index, pairs)
        tree.digest_epoch(epoch_index, counts)
        return seq

    def checkpoint(self):
        """Persist the tree atomically and reset the log.

        Snapshot first, truncate second: a crash between the two leaves
        a log whose records are already contained in the snapshot, and
        idempotent replay turns them into no-ops.
        """
        self._write_snapshot()
        self.log.truncate()
        return self.snapshot_path

    def close(self):
        self.log.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class RecoveryReport:
    """What :func:`recover` did: the tree plus replay/reconcile counters.

    ``caught_up_checkins`` is the number of check-ins reconciled from
    the source data set, ``0`` when no reconciliation was needed, or
    ``None`` when it was requested but *skipped* — a max-aggregate tree
    cannot be reconciled by :func:`~repro.datasets.streaming.catch_up`,
    so a batch whose log record was torn away may remain unrecovered.
    """

    __slots__ = (
        "tree",
        "replayed_epochs",
        "dropped_tail_records",
        "skipped_pois",
        "caught_up_checkins",
    )

    def __init__(self, tree, replayed_epochs, dropped_tail_records,
                 skipped_pois, caught_up_checkins):
        self.tree = tree
        self.replayed_epochs = replayed_epochs
        self.dropped_tail_records = dropped_tail_records
        self.skipped_pois = skipped_pois
        self.caught_up_checkins = caught_up_checkins

    def summary(self):
        """One-line description of the recovery outcome."""
        if self.caught_up_checkins is None:
            caught_up = (
                "data-set reconciliation skipped (max-aggregate tree)"
            )
        else:
            caught_up = (
                "%d check-in(s) caught up from the data set"
                % self.caught_up_checkins
            )
        return (
            "recovered %d POIs: %d epoch batch(es) replayed, %d torn log "
            "record(s) dropped, %d unknown POI entr(ies) skipped, %s"
            % (
                len(self.tree),
                self.replayed_epochs,
                self.dropped_tail_records,
                self.skipped_pois,
                caught_up,
            )
        )

    def __repr__(self):
        return "RecoveryReport(%s)" % self.summary()


def recover(directory, name="tree", dataset=None, stats=None, **overrides):
    """Rebuild a :class:`CheckpointedIngest` state after a crash.

    Loads the checksummed snapshot, replays the digest log idempotently
    (each record raises a TIA to its recorded absolute value, so
    half-applied batches and post-checkpoint leftovers are harmless),
    drops a torn tail, and — when the source ``dataset`` is given —
    runs :func:`repro.datasets.streaming.catch_up` so the tree ends
    exactly consistent with the stream, including any batch whose log
    record was lost with the crash.  Returns a :class:`RecoveryReport`.

    For a *max*-aggregate tree ``catch_up`` cannot reconcile (epochs are
    peaks, not additive counts), so the data-set pass is skipped and the
    report's ``caught_up_checkins`` is ``None``: a batch torn away with
    the crash stays unrecovered, and callers must not assume exact
    consistency beyond the last intact log record.
    """
    from repro.datasets.streaming import catch_up

    snapshot_path = os.path.join(directory, name + ".json")
    log_path = os.path.join(directory, name + ".digestlog")
    tree = load_tree(snapshot_path, stats=stats, **overrides)
    records, dropped = read_digest_log(log_path)
    is_max = tree.aggregate_kind is AggregateKind.MAX
    replayed = 0
    skipped = 0
    for _seq, epoch_index, pairs in records:
        deltas = {}
        for poi_id, _delta, value_after in pairs:
            if poi_id not in tree:
                skipped += 1
                continue
            current = tree.poi_tia(poi_id).get(epoch_index)
            if is_max:
                if value_after > current:
                    deltas[poi_id] = value_after
            elif value_after > current:
                deltas[poi_id] = value_after - current
        if deltas:
            tree.digest_epoch(epoch_index, deltas)
            replayed += 1
    caught_up = 0
    if dataset is not None:
        # catch_up() raises for MAX trees; record the skip instead of
        # silently reporting "0 caught up" as if reconciliation ran.
        caught_up = None if is_max else catch_up(tree, dataset)
    return RecoveryReport(tree, replayed, dropped, skipped, caught_up)
