"""Deterministic fault injection for the simulated storage layer.

Every robustness claim in this library is testable because the failure
modes are injected, not hoped for.  A :class:`FaultInjector` is a
seeded random source plus a set of named *sites* (``"tia"``,
``"buffer"``, ``"io"``, ...), each with a probability *schedule* mapping
the attempt index to a failure probability.  The storage wrappers —
:class:`FaultyTIA` around any TIA backend, :class:`FaultyBufferPool`
around the LRU pool, and :meth:`FaultInjector.open` around snapshot
file I/O — consult their site before every operation and raise
:class:`TransientIOError` when the schedule fires.

Corruption (as opposed to transient failure) is injected with the file
mutators :func:`flip_bit`, :func:`truncate_file` and :func:`torn_write`,
which damage snapshots the way real storage does: a flipped bit, a
short read, a write that stopped halfway.

Everything is deterministic under a fixed seed, so a chaos test that
fails replays exactly.
"""

import math
import os
import random
import time
from contextlib import contextmanager

from repro.storage.buffer import LRUBufferPool
from repro.temporal.tia import BaseTIA


class TransientIOError(IOError):
    """An injected, retryable I/O failure (the fault model's soft error)."""


class FatalFaultError(RuntimeError):
    """An injected *non*-retryable failure (the fault model's hard error).

    Deliberately not an :class:`IOError` subclass: retry layers
    (``RetryPolicy``, the cluster's shard guards) treat it as fatal —
    the simulated analogue of a crashed or corrupted shard that no
    amount of retrying will bring back.
    """


# ---------------------------------------------------------------------------
# Probability schedules
# ---------------------------------------------------------------------------


def constant(probability):
    """Schedule failing every attempt with fixed ``probability``."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1], got %r" % (probability,))
    return lambda attempt: probability


def first_n(n, probability=1.0):
    """Schedule failing (only) the first ``n`` attempts."""
    return lambda attempt: probability if attempt < n else 0.0


def decaying(initial, half_life):
    """Schedule whose failure probability halves every ``half_life`` attempts.

    Models a fault that clears up — e.g. a storage node rejoining."""
    if half_life <= 0:
        raise ValueError("half_life must be positive, got %r" % (half_life,))
    return lambda attempt: initial * math.pow(0.5, attempt / float(half_life))


#: Valid fault kinds for :meth:`FaultInjector.configure`.
FAULT_KINDS = ("transient", "fatal", "latency")


class _Site:
    __slots__ = ("schedule", "attempts", "injected", "kind", "delay")

    def __init__(self, schedule, kind="transient", delay=0.0):
        self.schedule = schedule
        self.attempts = 0
        self.injected = 0
        self.kind = kind
        self.delay = delay


class FaultInjector:
    """A seeded source of injected failures, shared by the storage wrappers.

    Parameters
    ----------
    seed:
        Seed for the private ``random.Random``; identical seeds replay
        identical fault sequences.
    rates:
        Convenience mapping ``{site: probability}``; equivalent to
        calling :meth:`configure` per site with a constant schedule.

    Sites that were never configured never fire, so a single injector
    can be threaded through every layer and armed selectively.
    """

    def __init__(self, seed=0, rates=None, sleep=time.sleep):
        self._rng = random.Random(seed)
        self._sites = {}
        self.enabled = True
        self._sleep = sleep
        for site, probability in (rates or {}).items():
            self.configure(site, rate=probability)

    def configure(self, site, rate=None, schedule=None, kind="transient",
                  delay=0.0):
        """Arm ``site`` with a constant ``rate`` or an explicit ``schedule``.

        ``kind`` selects the failure mode when the schedule fires:

        * ``"transient"`` — raise :class:`TransientIOError` (retryable);
        * ``"fatal"`` — raise :class:`FatalFaultError` (non-retryable,
          the simulated crashed/corrupted shard);
        * ``"latency"`` — stall for ``delay`` seconds and then succeed
          (the simulated slow disk or GC-paused worker; the caller's
          timeout, not an exception, is what surfaces it).
        """
        if (rate is None) == (schedule is None):
            raise ValueError("pass exactly one of rate= or schedule=")
        if kind not in FAULT_KINDS:
            raise ValueError(
                "kind must be one of %r, got %r" % (FAULT_KINDS, kind)
            )
        if kind == "latency" and delay <= 0.0:
            raise ValueError("latency faults need a positive delay=")
        self._sites[site] = _Site(
            constant(rate) if schedule is None else schedule, kind, delay
        )
        return self

    def disarm(self, site):
        """Stop injecting at ``site`` (its counters are kept)."""
        entry = self._sites.get(site)
        if entry is not None:
            entry.schedule = constant(0.0)

    def attempts(self, site):
        """Operations checked against ``site`` so far."""
        entry = self._sites.get(site)
        return entry.attempts if entry else 0

    def injected(self, site):
        """Faults raised at ``site`` so far."""
        entry = self._sites.get(site)
        return entry.injected if entry else 0

    def fires(self, site):
        """Advance ``site`` by one attempt; return whether it fails."""
        entry = self._sites.get(site)
        if entry is None:
            return False
        probability = entry.schedule(entry.attempts)
        entry.attempts += 1
        if not self.enabled or probability <= 0.0:
            return False
        if self._rng.random() < probability:
            entry.injected += 1
            return True
        return False

    def check(self, site):
        """Inject ``site``'s configured fault when its schedule fires.

        Transient sites raise :class:`TransientIOError`, fatal sites
        raise :class:`FatalFaultError`, and latency sites block for the
        configured delay (then return normally).
        """
        entry = self._sites.get(site)
        if entry is None or not self.fires(site):
            return
        if entry.kind == "latency":
            self._sleep(entry.delay)
            return
        if entry.kind == "fatal":
            raise FatalFaultError(
                "injected fatal fault at site %r (attempt %d)"
                % (site, self.attempts(site))
            )
        raise TransientIOError(
            "injected transient fault at site %r (attempt %d)"
            % (site, self.attempts(site))
        )

    @contextmanager
    def suspended(self):
        """Context manager silencing every site (attempts still count)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = previous

    def open(self, path, mode="r", **kwargs):
        """``open``-compatible wrapper faulting at site ``"io"``.

        Pass as the ``opener=`` argument of the snapshot functions in
        :mod:`repro.storage.serialize` to make snapshot I/O failable.
        """
        self.check("io")
        return open(path, mode, **kwargs)

    def __repr__(self):
        armed = ", ".join(
            "%s:%d/%d" % (site, entry.injected, entry.attempts)
            for site, entry in sorted(self._sites.items())
        )
        return "FaultInjector(enabled=%r, %s)" % (self.enabled, armed or "idle")


# ---------------------------------------------------------------------------
# Storage wrappers
# ---------------------------------------------------------------------------


class FaultyBufferPool(LRUBufferPool):
    """An :class:`LRUBufferPool` whose accesses can fail transiently."""

    __slots__ = ("injector", "site")

    def __init__(self, capacity, injector, site="buffer"):
        super().__init__(capacity)
        self.injector = injector
        self.site = site

    def access(self, page_id):
        self.injector.check(self.site)
        return super().access(page_id)


class FaultyTIA(BaseTIA):
    """Delegates to a wrapped TIA, failing reads (and optionally writes).

    Read operations (``get``, ``range_sum``, ``range_max``) consult the
    injector; structural iteration (``items``) never faults, matching
    the convention that maintenance traversals are not charged as I/O.
    Writes fault only with ``fault_writes=True`` — that is the switch
    the crash-recovery tests flip to kill a ``digest_epoch`` midway.
    """

    __slots__ = ("inner", "injector", "site", "fault_writes")

    def __init__(self, inner, injector, site="tia", fault_writes=False):
        self.inner = inner
        self.injector = injector
        self.site = site
        self.fault_writes = fault_writes

    def _check_write(self):
        if self.fault_writes:
            self.injector.check(self.site)

    def get(self, epoch_index):
        self.injector.check(self.site)
        return self.inner.get(epoch_index)

    def set(self, epoch_index, agg):
        self._check_write()
        return self.inner.set(epoch_index, agg)

    def raise_to(self, epoch_index, agg):
        self._check_write()
        return self.inner.raise_to(epoch_index, agg)

    def add(self, epoch_index, delta):
        self._check_write()
        return self.inner.add(epoch_index, delta)

    def range_sum(self, first_epoch, last_epoch):
        self.injector.check(self.site)
        return self.inner.range_sum(first_epoch, last_epoch)

    def range_max(self, first_epoch, last_epoch):
        self.injector.check(self.site)
        return self.inner.range_max(first_epoch, last_epoch)

    def items(self):
        return self.inner.items()

    def replace_all(self, epoch_aggregates):
        self._check_write()
        return self.inner.replace_all(epoch_aggregates)

    def __len__(self):
        return len(self.inner)

    def __repr__(self):
        return "FaultyTIA(%r, site=%r)" % (self.inner, self.site)


def inject_tree_faults(tree, injector, site="tia", fault_writes=False):
    """Wrap every TIA of ``tree`` (and its factory) in :class:`FaultyTIA`.

    Each underlying TIA is wrapped exactly once and the leaf-registry
    identity (``entry.tia is tree.poi_tia(id)``) is preserved, so the
    tree's invariants keep holding.  Returns ``tree``.
    """
    wrapped = {}

    def wrap(tia):
        if isinstance(tia, FaultyTIA):
            return tia
        existing = wrapped.get(id(tia))
        if existing is None:
            existing = FaultyTIA(tia, injector, site, fault_writes)
            wrapped[id(tia)] = existing
        return existing

    tree.wrap_tias(wrap)
    return tree


# ---------------------------------------------------------------------------
# Corruption helpers (for chaos tests and drills)
# ---------------------------------------------------------------------------


def flip_bit(path, bit_index=None, rng=None):
    """Flip one bit of the file at ``path``; returns the bit flipped.

    ``bit_index`` picks the bit explicitly; otherwise ``rng`` (or a
    fresh seeded generator) picks one uniformly."""
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        raise ValueError("cannot flip a bit of the empty file %s" % path)
    if bit_index is None:
        bit_index = (rng or random.Random(0)).randrange(len(data) * 8)
    byte_index, offset = divmod(bit_index, 8)
    if byte_index >= len(data):
        raise ValueError(
            "bit %d is beyond the %d-byte file %s" % (bit_index, len(data), path)
        )
    data[byte_index] ^= 1 << offset
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    return bit_index


def truncate_file(path, keep_fraction=0.5):
    """Truncate ``path`` to a prefix; returns the new size in bytes."""
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return keep


def torn_write(path, data, fraction=0.5):
    """Write only a prefix of ``data`` to ``path`` (a simulated torn write)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    keep = int(len(data) * fraction)
    with open(path, "wb") as handle:
        handle.write(data[:keep])
    return keep
