"""The mutation write-ahead log (WAL) behind crash-recoverable ingest.

PR 1's digest log covered only ``digest_epoch`` batches; this module
generalises it into a **typed mutation WAL** so the *whole* TAR-tree
mutation stream — POI insertions and deletions included — is durable
and replayable (ARIES-style: log first, apply second, replay
idempotently).

Each record is one line, ``<crc32 hex> <json>\\n``, whose JSON body is
``[lsn, type, payload]``:

=============  =====================================================
``type``       ``payload``
=============  =====================================================
``digest``     ``[epoch_index, [[poi_id, delta, value_after], ...]]``
``insert``     ``[poi_id, x, y, [[epoch, value], ...]]``
``delete``     ``[poi_id]``
``checkpoint`` ``[applied_lsn]`` — marker written when a checkpoint
               reset the log; replays as a no-op
=============  =====================================================

LSNs (log sequence numbers) increase strictly monotonically and are
**never reused** within a directory's lifetime: a checkpoint does not
reset the counter, it atomically rewrites the log to a single
``checkpoint`` marker carrying the *next* LSN, so a snapshot's recorded
``applied_lsn`` high-water mark stays comparable with every later
record.  ``value_after`` in digest records is the absolute TIA value
the batch must reach, which keeps replay idempotent even without the
high-water mark (legacy snapshots).

Legacy PR-1 digest-log lines (body ``[seq, epoch_index, pairs]``) parse
as ``digest`` records, so pre-existing logs remain replayable.

Damage handling is byte-exact and matches the PR-1 semantics: a torn
final line (crash mid-append, or a final line missing its newline) is
detected and dropped — and *repaired* on reopen by truncating back to
the last intact record — while a damaged line before intact ones means
real corruption and raises
:class:`~repro.storage.serialize.CorruptSnapshotError`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Iterable, Mapping, NamedTuple, Sequence

from repro.storage.serialize import CorruptSnapshotError

RECORD_DIGEST = "digest"
RECORD_INSERT = "insert"
RECORD_DELETE = "delete"
RECORD_CHECKPOINT = "checkpoint"

#: Every record type a WAL line may carry.
RECORD_TYPES = (RECORD_DIGEST, RECORD_INSERT, RECORD_DELETE, RECORD_CHECKPOINT)

#: The record types that mutate tree state (a ``checkpoint`` marker
#: does not — it never advances the applied-LSN high-water mark).
MUTATION_RECORD_TYPES = (RECORD_DIGEST, RECORD_INSERT, RECORD_DELETE)


class WalRecord(NamedTuple):
    """One decoded WAL record: ``(lsn, type, payload)``."""

    lsn: int
    type: str
    payload: list[Any]


def _check_poi_id(poi_id: Any) -> str | int:
    if not isinstance(poi_id, (str, int)) or isinstance(poi_id, bool):
        raise TypeError(
            "POI id %r is not WAL-representable; use str or int ids" % (poi_id,)
        )
    return poi_id


def _frame(body: str) -> str:
    return "%08x %s\n" % (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, body)


def _parse_line(line: str) -> WalRecord | None:
    """Return the decoded :class:`WalRecord`, or ``None`` for damage."""
    line = line.rstrip("\n")
    if not line:
        return None
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, body = line[:8], line[9:]
    try:
        stored = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != stored:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    if not isinstance(record, list) or len(record) != 3:
        return None
    lsn, kind, payload = record
    if isinstance(lsn, bool) or not isinstance(lsn, int) or lsn < 0:
        return None
    if isinstance(kind, str):
        if kind not in RECORD_TYPES or not isinstance(payload, list):
            return None
        return WalRecord(lsn, kind, payload)
    # Legacy PR-1 digest-log body: [seq, epoch_index, pairs].
    if isinstance(kind, int) and not isinstance(kind, bool) and isinstance(
        payload, list
    ):
        return WalRecord(lsn, RECORD_DIGEST, [kind, payload])
    return None


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory (no-op where unsupported)."""
    try:
        dir_fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _scan_wal(path: str) -> tuple[list[WalRecord], int, int]:
    """Parse a mutation WAL at byte granularity.

    Returns ``(records, dropped_tail_lines, valid_prefix_bytes)`` where
    ``valid_prefix_bytes`` is the file offset just past the last intact,
    newline-terminated record — the truncation point that discards a
    torn tail without touching any acked data.  Raises
    :class:`CorruptSnapshotError` when damage appears *before* intact
    records (mid-log corruption) or LSNs go backwards.
    """
    if not os.path.exists(path):
        return [], 0, 0
    with open(path, "rb") as handle:
        data = handle.read()
    # (record_or_None, end_offset_incl_newline) per non-blank line
    entries: list[tuple[WalRecord | None, int]] = []
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        end = len(data) if newline == -1 else newline + 1
        chunk = data[pos:end]
        if chunk.strip():
            record = _parse_line(chunk.decode("utf-8", errors="replace"))
            # A final line without its newline is torn even if the CRC
            # happens to pass — never treat it as a safe append point.
            if newline == -1:
                record = None
            entries.append((record, end))
        pos = end
    last_ok = -1
    for i, (record, _end) in enumerate(entries):
        if record is not None:
            last_ok = i
    bad_before_ok = sum(1 for record, _ in entries[: last_ok + 1] if record is None)
    if bad_before_ok:
        raise CorruptSnapshotError(
            "mutation WAL %s has %d corrupt record(s) before intact ones"
            % (path, bad_before_ok),
            section="wal",
        )
    records = [record for record, _ in entries if record is not None]
    for earlier, later in zip(records, records[1:]):
        if later.lsn <= earlier.lsn:
            raise CorruptSnapshotError(
                "mutation WAL %s has non-monotonic LSNs (%d then %d)"
                % (path, earlier.lsn, later.lsn),
                section="wal",
            )
    valid_end = entries[last_ok][1] if last_ok >= 0 else 0
    return records, len(entries) - (last_ok + 1), valid_end


def read_wal(path: str) -> tuple[list[WalRecord], int]:
    """Parse a mutation WAL; returns ``(records, dropped_tail_lines)``.

    ``records`` holds the intact :class:`WalRecord` s in LSN order
    (legacy digest-log lines surface as ``digest`` records);
    ``dropped_tail_lines`` counts torn/garbled lines at the tail.
    Raises :class:`CorruptSnapshotError` when damage appears *before*
    intact records (mid-log corruption) or LSNs go backwards.
    """
    records, dropped, _valid_end = _scan_wal(path)
    return records, dropped


class MutationWAL:
    """An append-only, CRC-framed, typed log of tree mutations.

    ``append`` durably frames one record (write + flush + fsync) and
    returns its LSN; the typed helpers (:meth:`log_digest`,
    :meth:`log_insert`, :meth:`log_delete`) validate payload shapes
    first.  Opening an existing log *repairs* a torn tail: the file is
    truncated back to the end of its last intact record before the
    append handle is created, so a post-crash append starts on a fresh
    line instead of concatenating onto the torn fragment (which would
    garble the new, acked record and poison every later read).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        # Scan before opening for append: a CorruptSnapshotError here
        # must not leak a handle, and a torn tail must be cut off so the
        # next append starts at a clean record boundary.
        records, _dropped, valid_end = _scan_wal(path)
        self._next_lsn = records[-1].lsn + 1 if records else 0
        if os.path.exists(path) and os.path.getsize(path) > valid_end:
            with open(path, "r+b") as repair:
                repair.truncate(valid_end)
                repair.flush()
                os.fsync(repair.fileno())
        self._handle = open(path, "a")

    @property
    def next_lsn(self) -> int:
        """The LSN the next appended record will carry."""
        return self._next_lsn

    def append(self, record_type: str, payload: list[Any]) -> int:
        """Frame and durably append one record; returns its LSN."""
        if record_type not in RECORD_TYPES:
            raise ValueError("unknown WAL record type %r" % (record_type,))
        lsn = self._next_lsn
        body = json.dumps([lsn, record_type, payload], separators=(",", ":"))
        self._handle.write(_frame(body))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._next_lsn += 1
        return lsn

    def log_digest(self, epoch_index: int, pairs: Iterable[Sequence[Any]]) -> int:
        """Log one epoch batch: ``[[poi_id, delta, value_after], ...]``."""
        rows = [list(pair) for pair in pairs]
        for poi_id, _delta, _value_after in rows:
            _check_poi_id(poi_id)
        return self.append(RECORD_DIGEST, [int(epoch_index), rows])

    def log_insert(
        self,
        poi_id: Any,
        x: float,
        y: float,
        epoch_aggregates: Mapping[int, int] | None = None,
    ) -> int:
        """Log a POI insertion with its (possibly empty) history."""
        _check_poi_id(poi_id)
        history = sorted(
            (int(epoch), value)
            for epoch, value in (epoch_aggregates or {}).items()
        )
        return self.append(
            RECORD_INSERT,
            [poi_id, float(x), float(y), [[e, v] for e, v in history]],
        )

    def log_delete(self, poi_id: Any) -> int:
        """Log a POI deletion."""
        _check_poi_id(poi_id)
        return self.append(RECORD_DELETE, [poi_id])

    def reset(self, applied_lsn: int | None = None) -> int:
        """Atomically shrink the log to a single ``checkpoint`` marker.

        Called after a checkpoint made every logged record redundant.
        The marker carries the snapshot's ``applied_lsn`` and consumes
        the next LSN, so the sequence keeps increasing across resets —
        the snapshot high-water mark stays comparable with every later
        record.  The replacement is a temp-file + ``os.replace`` swap:
        a crash at any byte leaves either the full old log (whose
        records replay as no-ops past the snapshot) or the fresh
        marker, never a half-written file.
        """
        marker_lsn = self._next_lsn
        body = json.dumps(
            [marker_lsn, RECORD_CHECKPOINT, [applied_lsn]],
            separators=(",", ":"),
        )
        temp_path = self.path + ".tmp"
        with open(temp_path, "w") as handle:
            handle.write(_frame(body))
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(temp_path, self.path)
        _fsync_directory(os.path.dirname(self.path))
        self._handle = open(self.path, "a")
        self._next_lsn = marker_lsn + 1
        return marker_lsn

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> MutationWAL:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
