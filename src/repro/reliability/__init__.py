"""Reliability subsystem: faults, validation, degradation, recovery.

Production spatio-temporal stores treat integrity verification and
recovery as first-class; this package gives the reproduction the same
footing.  Four cooperating pieces:

* :mod:`repro.reliability.faults` — a deterministic, seedable fault
  injector over the simulated storage layer (TIA reads, buffer pool,
  snapshot I/O) plus file-corruption helpers, so every robustness claim
  is exercised by a test rather than assumed.
* :mod:`repro.reliability.validate` — deep invariant validators for
  the R*-tree structure and the TAR-tree's internal-TIA max-invariant
  (Property 1), returning structured violation reports that survive
  ``python -O``.
* :mod:`repro.reliability.wal` — the typed mutation write-ahead log:
  CRC-framed ``digest`` / ``insert`` / ``delete`` / ``checkpoint``
  records with strictly monotonic LSNs, torn-tail repair, and legacy
  digest-log compatibility.
* :mod:`repro.reliability.recovery` — :func:`robust_knnta` (bounded
  retry/backoff on transient faults, fallback to the sequential-scan
  baseline on detected corruption) and crash-recoverable streaming
  ingest (:class:`CheckpointedIngest` logging *every* tree mutation
  through the WAL + :func:`recover` replaying it idempotently).
* checksummed persistence lives with the formats in
  :mod:`repro.storage.serialize` (CRC-32 per section,
  :class:`~repro.storage.serialize.CorruptSnapshotError`).
"""

from repro.reliability.faults import (
    FaultInjector,
    FaultyBufferPool,
    FaultyTIA,
    TransientIOError,
    constant,
    decaying,
    first_n,
    flip_bit,
    inject_tree_faults,
    torn_write,
    truncate_file,
)
from repro.reliability.recovery import (
    CheckpointedIngest,
    DigestLog,
    RecoveryReport,
    RetryPolicy,
    RobustAnswer,
    read_digest_log,
    recover,
    robust_knnta,
)
from repro.reliability.validate import (
    ValidationReport,
    Violation,
    validate_against_dataset,
    validate_tree,
)
from repro.reliability.wal import (
    MUTATION_RECORD_TYPES,
    RECORD_CHECKPOINT,
    RECORD_DELETE,
    RECORD_DIGEST,
    RECORD_INSERT,
    RECORD_TYPES,
    MutationWAL,
    WalRecord,
    read_wal,
)

__all__ = [
    "FaultInjector",
    "FaultyBufferPool",
    "FaultyTIA",
    "TransientIOError",
    "constant",
    "decaying",
    "first_n",
    "flip_bit",
    "inject_tree_faults",
    "torn_write",
    "truncate_file",
    "CheckpointedIngest",
    "DigestLog",
    "RecoveryReport",
    "RetryPolicy",
    "RobustAnswer",
    "read_digest_log",
    "recover",
    "robust_knnta",
    "ValidationReport",
    "Violation",
    "validate_against_dataset",
    "validate_tree",
    "MUTATION_RECORD_TYPES",
    "RECORD_CHECKPOINT",
    "RECORD_DELETE",
    "RECORD_DIGEST",
    "RECORD_INSERT",
    "RECORD_TYPES",
    "MutationWAL",
    "WalRecord",
    "read_wal",
]
