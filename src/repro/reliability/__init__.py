"""Reliability subsystem: faults, validation, degradation, recovery.

Production spatio-temporal stores treat integrity verification and
recovery as first-class; this package gives the reproduction the same
footing.  Four cooperating pieces:

* :mod:`repro.reliability.faults` — a deterministic, seedable fault
  injector over the simulated storage layer (TIA reads, buffer pool,
  snapshot I/O) plus file-corruption helpers, so every robustness claim
  is exercised by a test rather than assumed.
* :mod:`repro.reliability.validate` — deep invariant validators for
  the R*-tree structure and the TAR-tree's internal-TIA max-invariant
  (Property 1), returning structured violation reports that survive
  ``python -O``.
* :mod:`repro.reliability.recovery` — :func:`robust_knnta` (bounded
  retry/backoff on transient faults, fallback to the sequential-scan
  baseline on detected corruption) and crash-recoverable streaming
  ingest (:class:`CheckpointedIngest` + an append-only digest log +
  :func:`recover`).
* checksummed persistence lives with the formats in
  :mod:`repro.storage.serialize` (CRC-32 per section,
  :class:`~repro.storage.serialize.CorruptSnapshotError`).
"""

from repro.reliability.faults import (
    FaultInjector,
    FaultyBufferPool,
    FaultyTIA,
    TransientIOError,
    constant,
    decaying,
    first_n,
    flip_bit,
    inject_tree_faults,
    torn_write,
    truncate_file,
)
from repro.reliability.recovery import (
    CheckpointedIngest,
    DigestLog,
    RecoveryReport,
    RetryPolicy,
    RobustAnswer,
    read_digest_log,
    recover,
    robust_knnta,
)
from repro.reliability.validate import (
    ValidationReport,
    Violation,
    validate_against_dataset,
    validate_tree,
)

__all__ = [
    "FaultInjector",
    "FaultyBufferPool",
    "FaultyTIA",
    "TransientIOError",
    "constant",
    "decaying",
    "first_n",
    "flip_bit",
    "inject_tree_faults",
    "torn_write",
    "truncate_file",
    "CheckpointedIngest",
    "DigestLog",
    "RecoveryReport",
    "RetryPolicy",
    "RobustAnswer",
    "read_digest_log",
    "recover",
    "robust_knnta",
    "ValidationReport",
    "Violation",
    "validate_against_dataset",
    "validate_tree",
]
