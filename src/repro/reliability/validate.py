"""Deep invariant validation for TAR-trees.

The TAR-tree's query correctness rests on structural soundness of the
underlying R*-tree *and* on the internal-TIA max-invariant (Property 1,
Section 4): every internal entry's TIA must store, per epoch, the
maximum over its child entries' TIAs.  ``check_invariants`` asserts
these; the validators here instead *report* them, returning a
structured :class:`ValidationReport` that survives ``python -O``, can
be rendered by the CLI (``repro verify``) and drives the graceful
degradation in :mod:`repro.reliability.recovery`.

Two entry points:

* :func:`validate_tree` — structural checks (parent pointers, fill
  bounds, exact MBR/grouping-rect coverage, the leaf registry) plus the
  aggregate checks (internal-TIA max-invariant, global epoch maxima,
  size bookkeeping).
* :func:`validate_against_dataset` — cross-checks every leaf TIA
  against a data set's per-epoch check-in history, the ground truth a
  streaming deployment recovers toward.
"""

from repro.spatial.geometry import Rect

#: Violation codes emitted by :func:`validate_tree`.
STRUCTURAL_CODES = (
    "parent-pointer",
    "level",
    "underflow",
    "overflow",
    "leaf-registry",
    "tia-registry",
    "unknown-poi",
    "group-rect",
    "mbr",
)
AGGREGATE_CODES = ("max-invariant", "global-max", "size")
DATASET_CODES = ("history-mismatch", "missing-history", "foreign-poi")


class Violation:
    """One broken invariant: a machine code, a location, and prose."""

    __slots__ = ("code", "location", "message")

    def __init__(self, code, location, message):
        self.code = code
        self.location = location
        self.message = message

    def __repr__(self):
        return "Violation(%r, %r, %r)" % (self.code, self.location, self.message)

    def __str__(self):
        return "[%s] %s: %s" % (self.code, self.location, self.message)


class ValidationReport:
    """Outcome of a validation pass.

    ``ok`` is ``True`` when no violation was found; ``violations`` keeps
    every :class:`Violation` in discovery order.  ``checked_nodes`` /
    ``checked_pois`` record coverage so an empty report is
    distinguishable from a skipped check.
    """

    __slots__ = ("violations", "checked_nodes", "checked_pois")

    def __init__(self):
        self.violations = []
        self.checked_nodes = 0
        self.checked_pois = 0

    @property
    def ok(self):
        return not self.violations

    def add(self, code, location, message):
        self.violations.append(Violation(code, location, message))

    def codes(self):
        """The distinct violation codes present, sorted."""
        return sorted({violation.code for violation in self.violations})

    def extend(self, other):
        """Merge another report's findings and coverage into this one."""
        self.violations.extend(other.violations)
        self.checked_nodes += other.checked_nodes
        self.checked_pois += other.checked_pois
        return self

    def summary(self, limit=10):
        """Human-readable multi-line summary (capped at ``limit`` lines)."""
        if self.ok:
            return "OK: %d nodes, %d POIs checked, no violations" % (
                self.checked_nodes,
                self.checked_pois,
            )
        lines = [
            "%d violation(s) across %d node(s), %d POI(s) checked:"
            % (len(self.violations), self.checked_nodes, self.checked_pois)
        ]
        for violation in self.violations[:limit]:
            lines.append("  " + str(violation))
        hidden = len(self.violations) - limit
        if hidden > 0:
            lines.append("  ... and %d more" % hidden)
        return "\n".join(lines)

    def raise_if_failed(self, error=AssertionError):
        """Raise ``error`` with the summary when any violation was found."""
        if not self.ok:
            raise error(self.summary())

    def __repr__(self):
        return "ValidationReport(ok=%r, violations=%d)" % (
            self.ok,
            len(self.violations),
        )


def _epoch_maxima(entries):
    maxima = {}
    for entry in entries:
        for epoch, value in entry.tia.items():
            if value > maxima.get(epoch, 0):
                maxima[epoch] = value
    return maxima


def validate_tree(tree):
    """Run every structural and aggregate check; returns a report.

    Never raises on a broken tree — corruption is the expected input —
    and never mutates the tree (the global-maxima check recomputes from
    the leaf TIAs rather than triggering the tree's lazy refresh).
    """
    report = ValidationReport()
    counted_pois = 0
    stack = [(tree.root, None, "root")]
    while stack:
        node, parent, location = stack.pop()
        report.checked_nodes += 1
        if node.parent is not parent:
            report.add("parent-pointer", location, "broken parent pointer")
        if node is not tree.root and len(node.entries) < tree.min_fill:
            report.add(
                "underflow",
                location,
                "node holds %d entries, minimum is %d"
                % (len(node.entries), tree.min_fill),
            )
        if len(node.entries) > tree.capacity:
            report.add(
                "overflow",
                location,
                "node holds %d entries, capacity is %d"
                % (len(node.entries), tree.capacity),
            )
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                where = "%s/e%d" % (location, i)
                if entry.item not in tree._pois:
                    report.add(
                        "unknown-poi",
                        where,
                        "leaf entry for unregistered POI %r" % (entry.item,),
                    )
                    continue
                if tree._leaf_of.get(entry.item) is not node:
                    report.add(
                        "leaf-registry",
                        where,
                        "registry does not map POI %r to this leaf"
                        % (entry.item,),
                    )
                if entry.tia is not tree._poi_tias.get(entry.item):
                    report.add(
                        "tia-registry",
                        where,
                        "leaf entry TIA is not the registered TIA of POI %r"
                        % (entry.item,),
                    )
                counted_pois += 1
            continue
        for i, entry in enumerate(node.entries):
            where = "%s/e%d" % (location, i)
            child = entry.child
            if child is None or child.level != node.level - 1:
                report.add(
                    "level",
                    where,
                    "child missing or at level %r under a level-%d node"
                    % (getattr(child, "level", None), node.level),
                )
                continue
            expected_rect = Rect.union_all(e.rect for e in child.entries)
            if entry.rect != expected_rect:
                report.add(
                    "group-rect",
                    where,
                    "stale grouping rect %r (children union %r)"
                    % (entry.rect, expected_rect),
                )
            expected_mbr = Rect.union_all(e.mbr for e in child.entries)
            if entry.mbr != expected_mbr:
                report.add(
                    "mbr",
                    where,
                    "stale MBR %r (children union %r)" % (entry.mbr, expected_mbr),
                )
            expected_tia = _epoch_maxima(child.entries)
            actual_tia = dict(entry.tia.items())
            if actual_tia != expected_tia:
                report.add(
                    "max-invariant",
                    where,
                    "internal TIA violates the per-epoch max property: "
                    "stored %r, children imply %r" % (actual_tia, expected_tia),
                )
            stack.append((child, node, "%s/%d" % (location, i)))

    report.checked_pois = counted_pois
    if not (counted_pois == len(tree) == len(tree._pois)):
        report.add(
            "size",
            "tree",
            "size bookkeeping broken: %d leaf entries, len(tree)=%d, "
            "%d registered POIs" % (counted_pois, len(tree), len(tree._pois)),
        )
    expected_global = {}
    for tia in tree._poi_tias.values():
        for epoch, value in tia.items():
            if value > expected_global.get(epoch, 0):
                expected_global[epoch] = value
    if not tree._global_max_dirty and tree._global_epoch_max != expected_global:
        report.add(
            "global-max",
            "tree",
            "global per-epoch maxima are stale: cached %r, leaves imply %r"
            % (tree._global_epoch_max, expected_global),
        )
    return report


def validate_against_dataset(tree, dataset, poi_ids=None):
    """Cross-check leaf TIAs against a data set's check-in history.

    For every indexed POI (or the given subset), the TIA's per-epoch
    aggregates must equal the data set's counts under the tree's clock —
    the exact consistency a recovered streaming ingest must reach.  Only
    meaningful for count aggregates (the default); ``sum``/``max`` trees
    digest derived values the raw timestamps cannot reproduce.
    """
    report = ValidationReport()
    if poi_ids is None:
        poi_ids = list(tree.poi_ids())
    known = [poi_id for poi_id in poi_ids if poi_id in dataset.positions]
    for poi_id in poi_ids:
        if poi_id not in dataset.positions:
            report.add(
                "foreign-poi",
                "poi:%r" % (poi_id,),
                "indexed POI is absent from data set %r" % (dataset.name,),
            )
    expected = dataset.epoch_counts(tree.clock, known)
    for poi_id in known:
        report.checked_pois += 1
        history = dict(tree.poi_tia(poi_id).items())
        truth = {e: c for e, c in expected.get(poi_id, {}).items() if c > 0}
        if history == truth:
            continue
        diffs = {
            e: (history.get(e, 0), truth.get(e, 0))
            for e in sorted(set(history) | set(truth))
            if history.get(e, 0) != truth.get(e, 0)
        }
        # A TIA strictly *behind* the stream (every diff under-counts) is
        # recoverable lag; anything else is corruption.
        behind = all(tia_v < data_v for tia_v, data_v in diffs.values())
        code = "missing-history" if behind else "history-mismatch"
        report.add(
            code,
            "poi:%r" % (poi_id,),
            "leaf TIA disagrees with the data set on %d epoch(s): "
            "{epoch: (tia, dataset)} = %r" % (len(diffs), diffs),
        )
    return report
