"""Quickstart: index a synthetic LBSN and answer kNNTA queries.

Run with::

    python examples/quickstart.py

Builds a scaled-down stand-in for the paper's NYC data set, indexes its
effective POIs in a TAR-tree, and answers a few k-nearest-neighbour
temporal aggregate queries — "the top-k places near me, weighted by how
busy they were during my time window" — comparing the index against the
sequential-scan ground truth and showing the node-access savings.
"""

from repro import TARTree, TimeInterval, datasets
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan


def main():
    print("Generating a scaled NYC-like LBSN ...")
    data = datasets.make("NYC", scale=0.1, seed=7)
    print("  %s" % data)
    print("  effective POIs (>= %d check-ins): %d" % (
        data.threshold, len(data.effective_poi_ids())
    ))

    print("\nBuilding the TAR-tree (integral 3-D grouping, 7-day epochs) ...")
    tree = TARTree.build(data)
    print("  %s" % tree)

    # "Places busy in the last four weeks, near the city centre."
    query = KNNTAQuery(
        point=(50.0, 50.0),
        interval=TimeInterval(data.tc - 28, data.tc),
        k=5,
        alpha0=0.3,  # 30% distance, 70% recent popularity
    )

    print("\nTop-%d POIs near %s over the last 28 days (alpha0=%.1f):" % (
        query.k, query.point, query.alpha0
    ))
    snapshot = tree.stats.snapshot()
    results = tree.query(query)
    accesses = tree.stats.diff(snapshot)
    for rank, result in enumerate(results, start=1):
        poi = tree.poi(result.poi_id)
        print(
            "  #%d POI %-6s at (%5.1f, %5.1f)  score=%.4f  "
            "(distance %.3f, popularity %.3f)"
            % (rank, poi.poi_id, poi.x, poi.y, result.score,
               result.distance, result.aggregate)
        )
    print("  ... using %d R-tree node accesses (of %d nodes)" % (
        accesses.rtree_nodes, tree.node_count()
    ))

    print("\nCross-checking against a full sequential scan ...")
    expected = sequential_scan(tree, query)
    assert [r.poi_id for r in results] == [r.poi_id for r in expected]
    print("  identical top-%d -- the BFS is exact." % query.k)

    print("\nWeights are a preference: alpha0=0.9 asks for 'mostly nearby'.")
    nearby = tree.query(query._replace(alpha0=0.9))
    print("  nearest-leaning top-5: %s" % [r.poi_id for r in nearby])
    print("  popularity-leaning top-5: %s" % [r.poi_id for r in results])


if __name__ == "__main__":
    main()
