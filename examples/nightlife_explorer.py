"""Nightlife explorer: live check-in digestion and weight exploration.

Run with::

    python examples/nightlife_explorer.py

The paper's motivating scenario: "find a nearby club that is gathering
the most people in the last hour".  This example runs a TAR-tree with
hourly epochs over a simulated evening: check-ins stream in epoch by
epoch (:meth:`TARTree.digest_epoch`), queries ask about the most recent
hours, and the minimum-weight-adjustment algorithm tells an undecided
user exactly how far to move the distance/popularity slider before the
recommendations change (Section 7.1).
"""

import random

from repro import POI, TARTree, TimeInterval
from repro.core.mwa import minimum_weight_adjustment
from repro.core.query import KNNTAQuery
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock

N_CLUBS = 400
EVENING_HOURS = 6
WORLD = Rect((0.0, 0.0), (10.0, 10.0))  # a 10x10 km city


def simulate_evening(seed=4):
    """Build the index and stream one evening of hourly check-ins."""
    rng = random.Random(seed)
    tree = TARTree(
        world=WORLD,
        clock=EpochClock(t0=0.0, epoch_length=1.0),  # 1-hour epochs
        current_time=0.0,
        strategy="integral3d",
    )
    clubs = []
    for i in range(N_CLUBS):
        club = POI("club-%03d" % i, rng.random() * 10, rng.random() * 10)
        clubs.append((club, rng.choice([1, 1, 2, 3, 5, 8, 20])))  # base buzz
        tree.insert_poi(club)

    for hour in range(EVENING_HOURS):
        # Crowds build toward midnight; each club draws around its buzz.
        crowd_factor = 1 + hour
        counts = {}
        for club, buzz in clubs:
            arrivals = sum(
                1 for _ in range(buzz * crowd_factor) if rng.random() < 0.4
            )
            if arrivals:
                counts[club.poi_id] = arrivals
        tree.digest_epoch(hour, counts)
        print("  hour %d: %5d check-ins at %4d clubs" % (
            hour, sum(counts.values()), len(counts)
        ))
    return tree


def main():
    print("Opening night: streaming %d hours of club check-ins ..." % EVENING_HOURS)
    tree = simulate_evening()

    me = (4.2, 5.1)
    last_hour = TimeInterval(EVENING_HOURS - 1, EVENING_HOURS)
    query = KNNTAQuery(point=me, interval=last_hour, k=3, alpha0=0.4)

    print("\nWhere is the party right now?  (top-3, last hour, alpha0=%.1f)" % query.alpha0)
    results = tree.query(query)
    for rank, result in enumerate(results, start=1):
        club = tree.poi(result.poi_id)
        headcount = tree.poi_tia(result.poi_id).aggregate(tree.clock, last_hour)
        print("  #%d %-9s %.1f km away, %d people in the last hour (score %.3f)" % (
            rank, club.poi_id,
            ((club.x - me[0]) ** 2 + (club.y - me[1]) ** 2) ** 0.5,
            headcount, result.score,
        ))

    print("\nNot convinced? The minimum weight adjustment says how far to")
    print("move the slider before the top-3 changes:")
    mwa = minimum_weight_adjustment(tree, query, method="pruning")
    if mwa.gamma_lower is not None:
        print("  slide DOWN past alpha0 = %.3f  (more popularity-driven)" % mwa.gamma_lower)
    if mwa.gamma_upper is not None:
        print("  slide UP   past alpha0 = %.3f  (more distance-driven)" % mwa.gamma_upper)
    print("  minimum adjustment: %.3f from the current %.1f" % (
        mwa.minimum_adjustment, query.alpha0
    ))

    if mwa.gamma_upper is not None:
        nudged = min(0.99, mwa.gamma_upper + 0.01)
        changed = tree.query(query._replace(alpha0=nudged))
        print("\nAt alpha0 = %.3f the top-3 becomes: %s" % (
            nudged, [r.poi_id for r in changed]
        ))
        before = {r.poi_id for r in results}
        after = {r.poi_id for r in changed}
        print("  swapped: %s -> %s" % (
            sorted(before - after), sorted(after - before)
        ))


if __name__ == "__main__":
    main()
