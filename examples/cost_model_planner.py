"""Using the cost analysis as a query-cost planner.

Run with::

    python examples/cost_model_planner.py

Section 6's analysis "can also be used as a cost model for query
optimization purposes".  This example fits the model to an indexed data
set and uses it the way an optimizer would: predicting, *without
touching the index*, how expensive a kNNTA query will be for different
``k`` and weight settings, then validating the predictions against real
measurements.
"""

from repro import TARTree, TimeInterval, datasets
from repro.core.costmodel import CostModel
from repro.core.knnta import knnta_search
from repro.datasets.workload import generate_queries


def main():
    print("Building a Foursquare-like (GS) data set and TAR-tree ...")
    data = datasets.make("GS", scale=0.3, seed=9)
    tree = TARTree.build(data)
    print("  %s" % tree)

    interval = TimeInterval(data.t0, data.tc)
    aggregates = [
        tree.poi_tia(poi_id).aggregate(tree.clock, interval)
        for poi_id in tree.poi_ids()
    ]
    model = CostModel.from_aggregates(aggregates, capacity=tree.capacity)
    print("  fitted cost model: %s" % model)

    print("\nPredicted query cost (leaf node accesses), no index touched:")
    print("%8s %10s %10s %10s" % ("k", "a0=0.1", "a0=0.3", "a0=0.7"))
    for k in (1, 10, 100):
        row = [model.estimate_node_accesses(k=k, alpha0=a) for a in (0.1, 0.3, 0.7)]
        print("%8d %10.1f %10.1f %10.1f" % (k, *row))

    print("\nValidating the k column at alpha0 = 0.3 against measurements:")
    normalizer = tree.normalizer(interval, exact=True)
    queries = [
        q._replace(interval=interval)
        for q in generate_queries(data, n_queries=40, seed=2)
    ]
    print("%8s %12s %12s" % ("k", "estimated", "measured"))
    for k in (1, 10, 100):
        snapshot = tree.stats.snapshot()
        for query in queries:
            knnta_search(tree, query._replace(k=k), normalizer=normalizer)
        measured = tree.stats.diff(snapshot).rtree_leaf / len(queries)
        estimated = model.estimate_node_accesses(k=k, alpha0=0.3)
        print("%8d %12.1f %12.1f" % (k, estimated, measured))

    print(
        "\nAn optimizer can use these estimates to, e.g., cap interactive"
        "\nqueries at a k whose predicted cost fits the latency budget, or"
        "\nto route heavy analytical queries to the scan path instead."
    )
    budget = 25.0
    k = 1
    while model.estimate_node_accesses(k=k + 1, alpha0=0.3) <= budget and k < 500:
        k += 1
    print("Largest k within a %d-leaf-access budget at alpha0=0.3: k = %d" % (budget, k))


if __name__ == "__main__":
    main()
