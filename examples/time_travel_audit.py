"""Time-travel auditing with the multi-version B-tree TIA.

Run with::

    python examples/time_travel_audit.py

The paper's TIA is implemented with a multi-version B-tree (Becker et
al.), which never destroys old states: every update opens a new version
and past versions stay queryable in logarithmic time.  This example uses
that property directly — an auditor reconstructs a venue's popularity
leaderboard *as it looked after any past week*, e.g. to investigate a
suspicious burst of check-ins long after later activity buried it.
"""

import random

from repro.temporal.epochs import EpochClock
from repro.temporal.mvbt import MVBTTIA

WEEKS = 12
VENUES = ["cafe", "club", "museum", "arena", "harbor"]


def main():
    rng = random.Random(7)
    clock = EpochClock(t0=0.0, epoch_length=7.0)

    print("Recording %d weeks of check-ins into MVBT-backed TIAs ..." % WEEKS)
    tias = {venue: MVBTTIA(buffer_slots=4) for venue in VENUES}
    week_versions = {venue: [] for venue in VENUES}
    for week in range(WEEKS):
        for venue in VENUES:
            base = 5 + VENUES.index(venue) * 3
            arrivals = max(0, int(rng.gauss(base, 4)))
            if venue == "club" and week == 4:
                arrivals += 200  # the suspicious burst under audit
            if arrivals:
                tias[venue].add(week, arrivals)
            week_versions[venue].append(tias[venue].version)

    def leaderboard_at(week):
        """Total check-ins per venue as of the end of ``week``."""
        totals = {}
        for venue, tia in tias.items():
            version = week_versions[venue][week]
            totals[venue] = tia.range_sum_at(0, week, version)
        return sorted(totals.items(), key=lambda item: -item[1])

    print("\nLeaderboard today (week %d):" % (WEEKS - 1))
    for venue, total in leaderboard_at(WEEKS - 1):
        print("  %-8s %5d check-ins" % (venue, total))

    print("\nAuditor: 'what did the board look like right after week 4?'")
    for venue, total in leaderboard_at(4):
        marker = "  <-- burst" if venue == "club" else ""
        print("  %-8s %5d check-ins%s" % (venue, total, marker))

    club = tias["club"]
    print("\nClub's week-4 count, replayed across versions:")
    for week in (3, 4, WEEKS - 1):
        version = week_versions["club"][week]
        print(
            "  as of week %-2d -> week-4 epoch shows %3d check-ins"
            % (week, club.get_at(4, version))
        )

    print(
        "\nEvery mutation opened a new version (club TIA is at version %d,"
        "\n%d pages reachable across history) — nothing was overwritten."
        % (club.version, club.page_count())
    )


if __name__ == "__main__":
    main()
