"""Social event recommendation: collective processing of a query wave.

Run with::

    python examples/event_recommendation.py

An event-recommendation service answers bursts of kNNTA queries — every
app user refreshing "what's trending near me this week / this month".
Applications expose only a few interval presets, which is exactly the
setting where the paper's collective processing scheme (Section 7.2)
shines: queries are grouped by interval and share both node fetches and
TIA aggregate computations.  This example compares a burst processed
collectively vs individually.
"""

import random
import time

from repro import TARTree, datasets
from repro.core.collective import CollectiveProcessor, process_individually
from repro.core.query import KNNTAQuery
from repro.temporal.epochs import TimeInterval

N_USERS = 2000
PRESET_DAYS = (1, 7, 30)  # "today", "this week", "this month"


def make_burst(data, seed=11):
    rng = random.Random(seed)
    locations = list(data.positions.values())
    queries = []
    for _ in range(N_USERS):
        length = float(rng.choice(PRESET_DAYS))
        interval = TimeInterval(data.tc - length, data.tc)
        queries.append(
            KNNTAQuery(rng.choice(locations), interval, k=5, alpha0=0.3)
        )
    return queries


def main():
    print("Generating a Gowalla-like LBSN and building the TAR-tree ...")
    data = datasets.make("GW", scale=0.1, seed=3)
    tree = TARTree.build(data)
    print("  %s over %s" % (tree, data))

    queries = make_burst(data)
    print("\nA burst of %d user queries over %d interval presets %s" % (
        len(queries), len(PRESET_DAYS), PRESET_DAYS
    ))

    snapshot = tree.stats.snapshot()
    start = time.perf_counter()
    collective_results = CollectiveProcessor(tree).run(queries)
    collective_time = time.perf_counter() - start
    collective_stats = tree.stats.diff(snapshot)

    snapshot = tree.stats.snapshot()
    start = time.perf_counter()
    individual_results = process_individually(tree, queries)
    individual_time = time.perf_counter() - start
    individual_stats = tree.stats.diff(snapshot)

    assert all(
        [r.poi_id for r in a] == [r.poi_id for r in b]
        for a, b in zip(collective_results, individual_results)
    ), "collective processing must return identical recommendations"

    print("\n             %12s %12s" % ("collective", "individual"))
    print("CPU total    %10.2fs %10.2fs" % (collective_time, individual_time))
    print("CPU/query    %10.3fms %9.3fms" % (
        1000 * collective_time / len(queries),
        1000 * individual_time / len(queries),
    ))
    print("node accesses/query %5.2f %12.2f" % (
        collective_stats.rtree_nodes / len(queries),
        individual_stats.rtree_nodes / len(queries),
    ))
    print("TIA page reads/query %4.2f %12.2f" % (
        collective_stats.tia_pages / len(queries),
        individual_stats.tia_pages / len(queries),
    ))
    print(
        "\nCollective processing shared %.0f%% of the node fetches away."
        % (100 * (1 - collective_stats.rtree_nodes / max(1, individual_stats.rtree_nodes)))
    )

    # Show one user's recommendations.
    user_query = queries[0]
    user_results = collective_results[0]
    print("\nSample user at (%.1f, %.1f), window %s:" % (
        user_query.point[0], user_query.point[1], user_query.interval
    ))
    for rank, result in enumerate(user_results, start=1):
        print("  #%d POI %-8s score=%.4f" % (rank, result.poi_id, result.score))


if __name__ == "__main__":
    main()
