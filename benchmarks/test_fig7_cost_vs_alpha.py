"""Figure 7 — cost-analysis validation varying alpha0.

Estimated vs measured ``f(p_k)`` and leaf node accesses for
alpha0 in {0.1, 0.3, 0.5, 0.7, 0.9} at k = 10 (GW, GS).  The paper finds
the ``f(p_k)`` estimates nearly identical to the measurements across the
whole range, with the node-access estimate degrading only near
alpha0 = 0.9 (power-law fitting error close to x-min).
"""

import pytest

from _harness import get_dataset, get_tree, print_series
from repro.core.costmodel import CostModel
from repro.core.knnta import knnta_search
from repro.datasets.workload import generate_queries
from repro.temporal.epochs import TimeInterval

ALPHA_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
K = 10
N_QUERIES = 60


def _setup(name):
    data = get_dataset(name)
    tree = get_tree(name)
    interval = TimeInterval(data.t0, data.tc)
    normalizer = tree.normalizer(interval, exact=True)
    aggregates = [
        tree.poi_tia(pid).aggregate(tree.clock, interval) for pid in tree.poi_ids()
    ]
    model = CostModel.from_aggregates(aggregates, capacity=tree.capacity)
    queries = [
        q._replace(interval=interval, k=K)
        for q in generate_queries(data, n_queries=N_QUERIES, k=K, seed=6)
    ]
    return tree, model, normalizer, queries


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig7_cost_validation_vary_alpha(benchmark, name):
    tree, model, normalizer, queries = _setup(name)

    measured_fpk, measured_leaves = [], []
    for alpha0 in ALPHA_VALUES:
        fpk_total, leaves_total = 0.0, 0
        for query in queries:
            adjusted = query._replace(alpha0=alpha0)
            snap = tree.stats.snapshot()
            results = knnta_search(tree, adjusted, normalizer=normalizer)
            leaves_total += tree.stats.diff(snap).rtree_leaf
            fpk_total += results[-1].score
        measured_fpk.append(fpk_total / len(queries))
        measured_leaves.append(leaves_total / len(queries))

    estimated_fpk = [model.estimate_fpk(K, a) for a in ALPHA_VALUES]
    estimated_leaves = [
        model.estimate_node_accesses(k=K, alpha0=a) for a in ALPHA_VALUES
    ]

    print_series(
        "Figure 7(%s): f(pk), measured vs estimated" % name,
        "alpha0",
        ALPHA_VALUES,
        {"measured": measured_fpk, "estimated": estimated_fpk},
        fmt="%10.3f",
    )
    print_series(
        "Figure 7(%s): leaf node accesses, measured vs estimated" % name,
        "alpha0",
        ALPHA_VALUES,
        {"measured": measured_leaves, "estimated": estimated_leaves},
        fmt="%10.1f",
    )

    # f(pk) estimates track the measurements across the weight range.
    for alpha0, measured, estimated in zip(
        ALPHA_VALUES, measured_fpk, estimated_fpk
    ):
        assert estimated == pytest.approx(measured, rel=0.5), "alpha0=%s" % alpha0

    # Node-access estimates stay within an order of magnitude away from
    # the extremes (the paper notes degradation toward alpha0 = 0.9).
    for alpha0, measured, estimated in zip(
        ALPHA_VALUES, measured_leaves, estimated_leaves
    ):
        if 0.2 <= alpha0 <= 0.8 and measured > 0:
            assert measured / 8 <= estimated <= measured * 8, "alpha0=%s" % alpha0

    benchmark(knnta_search, tree, queries[0], normalizer=normalizer)
