"""Figure 15 — collective vs individual processing, varying #queries.

The paper batches 100 .. 10,000 queries: with collective processing the
per-query CPU time and node accesses fall as the batch grows (more
queries share each node fetch), while individual processing is flat.
Individual processing runs with unbuffered TIAs (the paper's setup for
this experiment).

The reproduction sweeps {100, 500, 1000, 5000} (the 10,000-point adds
nothing but wall-clock at our scale).
"""

import pytest

from _harness import (
    get_dataset,
    get_tree,
    measure_collective,
    measure_individual,
    print_series,
)
from repro.core.collective import CollectiveProcessor
from repro.datasets.workload import generate_queries

BATCH_SIZES = (100, 500, 1000, 5000)
INTERVAL_PRESETS = tuple(2 ** i for i in range(4))  # a few UI presets


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig15_collective_vary_queries(benchmark, name):
    data = get_dataset(name)
    collective_tree = get_tree(name)
    unbuffered_tree = get_tree(name, tia_buffer_slots=0)

    cpu = {"individual": [], "collective": []}
    nodes = {"individual": [], "collective": []}
    for batch_size in BATCH_SIZES:
        queries = list(
            generate_queries(
                data,
                n_queries=batch_size,
                interval_days_choices=INTERVAL_PRESETS,
                seed=15,
            )
        )
        collective = measure_collective(collective_tree, queries)
        individual = measure_individual(unbuffered_tree, queries)
        cpu["collective"].append(collective.cpu_ms)
        cpu["individual"].append(individual.cpu_ms)
        nodes["collective"].append(collective.node_accesses)
        nodes["individual"].append(individual.node_accesses)

    print_series(
        "Figure 15(%s): CPU time (ms) per query vs #queries" % name,
        "#queries",
        BATCH_SIZES,
        cpu,
        fmt="%10.3f",
    )
    print_series(
        "Figure 15(%s): node accesses per query vs #queries" % name,
        "#queries",
        BATCH_SIZES,
        nodes,
        fmt="%10.2f",
    )

    # Collective beats individual at every batch size, and its per-query
    # node accesses fall as the batch grows.
    for coll, ind in zip(nodes["collective"], nodes["individual"]):
        assert coll < ind
    assert nodes["collective"][-1] < nodes["collective"][0] / 2

    # Individual processing is insensitive to the batch size.
    individual_nodes = nodes["individual"]
    assert max(individual_nodes) < min(individual_nodes) * 1.5

    queries = list(
        generate_queries(
            data, n_queries=50, interval_days_choices=INTERVAL_PRESETS, seed=15
        )
    )
    benchmark(CollectiveProcessor(collective_tree).run, queries)
