"""Benchmark collection configuration.

Benchmarks live outside ``testpaths`` and are run explicitly with::

    pytest benchmarks/ --benchmark-only

Each file regenerates one table or figure of the paper: it sweeps the
figure's x-axis, prints the measured series in the paper's layout, and
asserts the qualitative result (who wins, how trends move).  Trees and
data sets are cached in :mod:`_harness` and shared across files within
one pytest process.
"""
