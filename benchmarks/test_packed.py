"""Packed node frames vs the object path — wall-clock, same answers.

The packed hot path (:mod:`repro.core.frames`) claims two things: it is
faster, and it changes *nothing* about the answers.  This benchmark
measures both on the serving surfaces that matter — single-tree
``knnta_search``, a collective batch, and cluster scatter-gather — by
running identical workloads with the frame store enabled and disabled
on otherwise identical trees.  Answers must be bit-identical (full
tuple equality, including under a 40-step mutation stream) and the
packed path must be at least ``MIN_SPEEDUP`` times faster on the
single-tree search; the series lands in ``BENCH_packed.json``.

Trees are built directly here (the shared ``_harness`` trees disable
frames on purpose: the per-figure benchmarks reproduce the paper's
object-path cost model).  ``REPRO_BENCH_SMOKE=1`` shrinks the dataset
and relaxes the bar to "not slower" for the CI smoke leg.
"""

import functools
import json
import os
import random
import time

from repro import POI, ClusterTree, TARTree, datasets
from repro.core.collective import CollectiveProcessor
from repro.core.knnta import knnta_search

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DATASET = "GS"
SCALE = 0.3 if SMOKE else 1.0
SEED = 42
N_QUERIES = 50 if SMOKE else 200
NUM_SHARDS = 4

#: The acceptance bar on the single-tree search.  The full run must
#: show a real win; the smoke leg (tiny fixture, noisy shared CI box)
#: only has to prove the packed path is not a regression.
MIN_SPEEDUP = 1.0 if SMOKE else 1.5
#: Softer floor for the shared/batched paths, where traversal sharing
#: already amortises much of what the frames remove.
MIN_BATCH_SPEEDUP = 1.0

REPEATS = 3


@functools.lru_cache(maxsize=None)
def get_data():
    return datasets.make(DATASET, scale=SCALE, seed=SEED)


@functools.lru_cache(maxsize=None)
def get_queries():
    from repro.datasets.workload import generate_queries

    return generate_queries(
        get_data(), n_queries=N_QUERIES, k=10, alpha0=0.3, seed=7
    )


def best_of(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs (noise floor, not average)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def compare(label, build, run, collect):
    """Time ``run`` on a packed and a frames-disabled twin of ``build``.

    Both twins are warmed (one full pass) before timing so frame
    construction and TIA buffer effects are amortised identically.
    Returns ``(speedup, packed_seconds, object_seconds)`` and asserts
    the answers are bit-identical.
    """
    packed_tree = build()
    run(packed_tree)  # warm: builds frames, fills buffers
    packed_time = best_of(lambda: run(packed_tree))
    packed_answers = collect(packed_tree)

    object_tree = build()
    disable_frames(object_tree)
    run(object_tree)
    object_time = best_of(lambda: run(object_tree))
    object_answers = collect(object_tree)

    assert packed_answers == object_answers, (
        "%s: packed answers diverged from the object path" % label
    )
    return object_time / packed_time, packed_time, object_time


def disable_frames(tree):
    if hasattr(tree, "shards"):  # a ClusterTree: disable on every shard
        for shard in tree.shards:
            shard.tree.frames.disable()
    else:
        tree.frames.disable()


def test_packed_speedup_and_identity():
    queries = get_queries()
    results = {}

    speedup, packed_s, object_s = compare(
        "knnta_search",
        lambda: TARTree.build(get_data()),
        lambda tree: [knnta_search(tree, q) for q in queries],
        lambda tree: [list(knnta_search(tree, q)) for q in queries],
    )
    results["knnta_search"] = {
        "speedup": speedup,
        "packed_s": packed_s,
        "object_s": object_s,
    }
    assert speedup >= MIN_SPEEDUP, (
        "single-tree packed path only %.2fx over the object path "
        "(bar: %.1fx)" % (speedup, MIN_SPEEDUP)
    )

    speedup, packed_s, object_s = compare(
        "collective",
        lambda: TARTree.build(get_data()),
        lambda tree: CollectiveProcessor(tree).run(queries),
        lambda tree: [list(r) for r in CollectiveProcessor(tree).run(queries)],
    )
    results["collective"] = {
        "speedup": speedup,
        "packed_s": packed_s,
        "object_s": object_s,
    }
    assert speedup >= MIN_BATCH_SPEEDUP

    speedup, packed_s, object_s = compare(
        "cluster",
        lambda: ClusterTree.build(get_data(), num_shards=NUM_SHARDS),
        lambda cluster: [cluster.query(q) for q in queries],
        lambda cluster: [list(cluster.query(q)) for q in queries],
    )
    results["cluster"] = {
        "speedup": speedup,
        "packed_s": packed_s,
        "object_s": object_s,
    }
    assert speedup >= MIN_BATCH_SPEEDUP

    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_packed.json")
    with open(os.path.abspath(out_path), "w") as handle:
        json.dump(
            {
                "dataset": DATASET,
                "scale": SCALE,
                "n_queries": N_QUERIES,
                "num_shards": NUM_SHARDS,
                "smoke": SMOKE,
                "min_speedup": MIN_SPEEDUP,
                "results": results,
            },
            handle,
            indent=2,
            sort_keys=True,
        )

    print()
    for label, row in results.items():
        print(
            "%-14s packed %7.3fs  object %7.3fs  speedup %5.2fx"
            % (label, row["packed_s"], row["object_s"], row["speedup"])
        )


def test_packed_identity_under_mutation_stream():
    """40 mixed mutations; packed and object answers stay bit-identical."""
    tree = TARTree.build(get_data())
    rng = random.Random(23)
    queries = get_queries()
    next_id = 10**9
    epoch = tree.clock.epoch_of(tree.current_time)
    for step in range(40):
        op = rng.choice(["insert", "delete", "digest", "digest"])
        if op == "insert":
            x = rng.uniform(tree.world.lows[0], tree.world.highs[0])
            y = rng.uniform(tree.world.lows[1], tree.world.highs[1])
            tree.insert_poi(
                POI(next_id, x, y), {epoch: rng.randint(1, 5)}
            )
            next_id += 1
        elif op == "delete":
            tree.delete_poi(rng.choice(list(tree.poi_ids())))
        else:
            batch = {
                poi_id: rng.randint(1, 4)
                for poi_id in rng.sample(list(tree.poi_ids()), 10)
            }
            tree.digest_epoch(epoch + step % 2, batch)
        query = queries[step % len(queries)]
        packed = list(knnta_search(tree, query))
        tree.frames.enabled = False
        try:
            plain = list(knnta_search(tree, query))
        finally:
            tree.frames.enabled = True
        assert packed == plain, "diverged at mutation step %d" % step
