"""Figure 14 — minimum weight adjustment vs alpha0.

For alpha0 in {0.1 .. 0.9} at k = 10 the paper finds the pruning
algorithm ahead of the enumerating baseline at every weight, with
enumerating weakest (slowest) when the weights are skewed (dominance
pruning loses power around 0.1/0.9) and pruning cheapest exactly there
(skylines are small when one criterion dominates).
"""

import time

import pytest

from _harness import get_tree, get_workload, print_series
from repro.core.mwa import mwa_enumerating, mwa_pruning

ALPHA_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
N_QUERIES = 5
K = 10


def _measure(method, tree, queries):
    snap = tree.stats.snapshot()
    start = time.perf_counter()
    results = [method(tree, query) for query in queries]
    elapsed = time.perf_counter() - start
    delta = tree.stats.diff(snap)
    n = len(queries)
    return 1000.0 * elapsed / n, delta.rtree_nodes / n, results


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig14_mwa_vary_alpha(benchmark, name):
    tree = get_tree(name)
    base_queries = list(get_workload(name))[:N_QUERIES]

    cpu = {"enumerating": [], "pruning": []}
    nodes = {"enumerating": [], "pruning": []}
    for alpha0 in ALPHA_VALUES:
        queries = [q._replace(alpha0=alpha0, k=K) for q in base_queries]
        enum_cpu, enum_nodes, enum_results = _measure(
            mwa_enumerating, tree, queries
        )
        prune_cpu, prune_nodes, prune_results = _measure(
            mwa_pruning, tree, queries
        )
        cpu["enumerating"].append(enum_cpu)
        cpu["pruning"].append(prune_cpu)
        nodes["enumerating"].append(enum_nodes)
        nodes["pruning"].append(prune_nodes)
        for a, b in zip(enum_results, prune_results):
            if a.gamma_lower is not None or b.gamma_lower is not None:
                assert a.gamma_lower == pytest.approx(b.gamma_lower)
            if a.gamma_upper is not None or b.gamma_upper is not None:
                assert a.gamma_upper == pytest.approx(b.gamma_upper)

    print_series(
        "Figure 14(%s): MWA CPU time (ms) vs alpha0" % name,
        "alpha0",
        ALPHA_VALUES,
        cpu,
        fmt="%10.1f",
    )
    print_series(
        "Figure 14(%s): MWA node accesses vs alpha0" % name,
        "alpha0",
        ALPHA_VALUES,
        nodes,
        fmt="%10.1f",
    )

    # The pruning algorithm wins at every weight, by a clear margin.
    for enum_value, prune_value in zip(cpu["enumerating"], cpu["pruning"]):
        assert prune_value < enum_value
    for enum_value, prune_value in zip(nodes["enumerating"], nodes["pruning"]):
        assert prune_value < enum_value / 2

    query = base_queries[0]._replace(k=K)
    benchmark(mwa_pruning, tree, query)
