"""Figure 11 — effect of the epoch length (1, 3, 7, 14, 28 days).

Longer epochs mean fewer records per aggregate computation, so CPU time
falls for every method (including the baseline); for the TAR-tree longer
epochs also strengthen pruning (a parent's per-epoch maximum is closer
to the child aggregates), so node accesses fall too.  The TAR-tree wins
at every epoch length.
"""

import pytest

from _harness import (
    STRATEGIES,
    STRATEGY_LABELS,
    geometric_mean_ratio,
    get_tree,
    get_workload,
    measure_baseline,
    measure_index,
    print_series,
)
from repro.core.knnta import knnta_search

EPOCH_LENGTHS = (1, 3, 7, 14, 28)


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig11_epoch_length(benchmark, name):
    workload = get_workload(name)

    cpu = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    cpu["baseline"] = []
    nodes = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    for length in EPOCH_LENGTHS:
        for strategy in STRATEGIES:
            tree = get_tree(name, strategy=strategy, epoch_length=float(length))
            result = measure_index(tree, workload)
            cpu[STRATEGY_LABELS[strategy]].append(result.cpu_ms)
            nodes[STRATEGY_LABELS[strategy]].append(result.node_accesses)
        baseline_tree = get_tree(name, epoch_length=float(length))
        cpu["baseline"].append(measure_baseline(baseline_tree, workload).cpu_ms)

    print_series(
        "Figure 11(%s): CPU time (ms) per query vs epoch length (days)" % name,
        "epoch",
        EPOCH_LENGTHS,
        cpu,
        fmt="%10.3f",
    )
    print_series(
        "Figure 11(%s): node accesses per query vs epoch length (days)" % name,
        "epoch",
        EPOCH_LENGTHS,
        nodes,
        fmt="%10.1f",
    )

    # CPU time decreases with the epoch length for every method
    # (comparing the extremes; middle points may wobble).
    for label, series in cpu.items():
        assert series[-1] < series[0], label

    # Longer epochs strengthen the TAR-tree's pruning.
    assert nodes["TAR-tree"][-1] < nodes["TAR-tree"][0]

    # The TAR-tree outperforms the others in CPU at every epoch length
    # on average, and is never beaten on node accesses by IND-agg.
    for rival in ("IND-spa", "IND-agg", "baseline"):
        assert geometric_mean_ratio(cpu["TAR-tree"], cpu[rival]) > 1.0, rival
    assert geometric_mean_ratio(nodes["TAR-tree"], nodes["IND-agg"]) > 1.0

    benchmark(knnta_search, get_tree(name), workload[0])
