"""Cluster scatter-gather — shard pruning vs shard count.

The coordinator's pitch is that the per-shard best-possible bound lets
selective queries (small ``k``, distance-heavy ``alpha0``) skip whole
shards without reading a single node from them, while answers stay
exactly equal to the single tree's.  This benchmark sweeps 1/2/4/8
shards over two workloads, asserts exactness everywhere plus an average
of at least one shard pruned per selective query from four shards up,
and emits the series as ``BENCH_cluster.json`` for CI trend tracking.

The dataset is NYC at a reduced scale: like the figure sweeps, every
configuration rebuilds its trees, so the harness's "build-time sweet
spot" sizing applies (a few thousand POIs).
"""

import functools
import json
import os
import time

from _harness import print_series
from repro import ClusterTree, TARTree, datasets
from repro.datasets.workload import generate_queries

DATASET = "NYC"
SCALE = 0.05
SEED = 42
SHARD_COUNTS = (1, 2, 4, 8)
N_QUERIES = 100

#: Workload presets: the selective one is the acceptance case (small k,
#: distance-dominant alpha0 -> only the nearest shards can reach the
#: top-k); the broad one shows pruning degrades gracefully when the
#: aggregate term keeps distant shards in play.
WORKLOADS = {
    "selective": {"k": 2, "alpha0": 0.95},
    "broad": {"k": 10, "alpha0": 0.3},
}


@functools.lru_cache(maxsize=None)
def get_data():
    return datasets.make(DATASET, scale=SCALE, seed=SEED)


@functools.lru_cache(maxsize=None)
def get_single_tree():
    return TARTree.build(get_data())


@functools.lru_cache(maxsize=None)
def get_cluster(num_shards):
    return ClusterTree.build(get_data(), num_shards=num_shards)


@functools.lru_cache(maxsize=None)
def get_queries(workload):
    params = WORKLOADS[workload]
    return generate_queries(
        get_data(), n_queries=N_QUERIES, seed=17, **params
    )


@functools.lru_cache(maxsize=None)
def expected_answers(workload):
    tree = get_single_tree()
    return [tree.query(query) for query in get_queries(workload)]


def run_workload(cluster, workload):
    """Time the workload; return (answers, per-query metric averages)."""
    queries = get_queries(workload)
    counters_before = cluster.counters()
    snap = cluster.stats.snapshot()
    start = time.perf_counter()
    answers = [cluster.query(query) for query in queries]
    elapsed = time.perf_counter() - start
    delta = cluster.stats.diff(snap)
    counters = cluster.counters()
    n = float(len(queries))
    return answers, {
        "cpu_ms_per_query": 1000.0 * elapsed / n,
        "node_accesses_per_query": delta.rtree_nodes / n,
        "tia_pages_per_query": delta.tia_pages / n,
        "shards_visited_avg": (
            (counters["shards.visited"] - counters_before["shards_visited"]) / n
        ),
        "shards_pruned_avg": (
            (counters["shards.pruned"] - counters_before["shards_pruned"]) / n
        ),
    }


def test_cluster_scaling_prunes_shards(benchmark):
    rows = {name: [] for name in WORKLOADS}
    pruned_series = {name: [] for name in WORKLOADS}
    nodes_series = {name: [] for name in WORKLOADS}

    for num_shards in SHARD_COUNTS:
        cluster = get_cluster(num_shards)
        for workload in WORKLOADS:
            answers, metrics = run_workload(cluster, workload)
            # Exactness first: sharding must never change an answer.
            assert answers == expected_answers(workload), (
                "%s workload diverged at %d shards" % (workload, num_shards)
            )
            if workload == "selective" and num_shards >= 4:
                # The acceptance bar: the bound skips at least one whole
                # shard per selective query on average.
                assert metrics["shards_pruned_avg"] >= 1.0, (
                    "no pruning win at %d shards: %.2f pruned/query"
                    % (num_shards, metrics["shards_pruned_avg"])
                )
            rows[workload].append(dict(metrics, shards=num_shards))
            pruned_series[workload].append(metrics["shards_pruned_avg"])
            nodes_series[workload].append(metrics["node_accesses_per_query"])

    print_series(
        "Cluster scatter-gather (%s x%g): shards pruned per query"
        % (DATASET, SCALE),
        "#shards",
        SHARD_COUNTS,
        pruned_series,
        fmt="%10.2f",
    )
    print_series(
        "Cluster scatter-gather (%s x%g): node accesses per query"
        % (DATASET, SCALE),
        "#shards",
        SHARD_COUNTS,
        nodes_series,
        fmt="%10.1f",
    )

    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_cluster.json")
    with open(os.path.abspath(out_path), "w") as handle:
        json.dump(
            {
                "dataset": DATASET,
                "scale": SCALE,
                "n_queries": N_QUERIES,
                "workload_params": WORKLOADS,
                "workloads": rows,
            },
            handle,
            indent=2,
            sort_keys=True,
        )

    benchmark(
        lambda: [get_cluster(4).query(q) for q in get_queries("selective")]
    )


def test_parallel_dispatch_stays_exact_at_scale():
    # The thread-pool path over the widest configuration: same answers.
    cluster = ClusterTree.build(get_data(), num_shards=8, parallelism=4)
    queries = get_queries("selective")[:25]
    tree = get_single_tree()
    assert [cluster.query(q) for q in queries] == [tree.query(q) for q in queries]
