"""Fault-domain overhead and degraded-mode latency.

The resilience layer's pitch is that it is (a) nearly free when nothing
fails and (b) strictly bounded when something does.  This benchmark
measures both sides and emits ``BENCH_resilience.json``:

* **Guard overhead** — every per-shard dispatch now runs as a thunk
  through :meth:`ShardGuard.call` (breaker check, classification,
  counters).  With no timeout configured the call is inline (no
  executor hop), so the bookkeeping must stay under 5% of a real
  per-shard query's cost.  Measured by running the same shard-local
  search directly and through the guard.
* **Degraded-mode latency** — with one shard fatally down and
  ``allow_degraded`` on, queries must not get slower than the healthy
  path: after ``failure_threshold`` observed failures the breaker
  rejects instantly, so a three-shard scatter plus the degradation
  bookkeeping should cost no more than the four-shard happy path
  (asserted with headroom for timer noise).
"""

import functools
import json
import os
import time

from repro import ClusterTree, ResilienceConfig, datasets
from repro.core.knnta import knnta_search
from repro.datasets.workload import generate_queries
from repro.reliability.faults import FaultInjector, constant

# The per-shard query cost is the denominator of the overhead ratio:
# at tiny scales it drops to ~0.1ms and timer noise swamps the guard's
# few-microsecond bookkeeping, so this file runs a larger slice than the
# scaling sweep does.
DATASET = "NYC"
SCALE = 0.2
SEED = 42
N_QUERIES = 60
NUM_SHARDS = 4
REPEATS = 5

MAX_GUARD_OVERHEAD_PCT = 5.0


@functools.lru_cache(maxsize=None)
def get_data():
    return datasets.make(DATASET, scale=SCALE, seed=SEED)


@functools.lru_cache(maxsize=None)
def get_queries():
    return generate_queries(get_data(), n_queries=N_QUERIES, k=10, alpha0=0.3,
                            seed=17)


def best_of(repeats, run):
    """The minimum wall-clock of ``repeats`` runs (noise floor)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_guard_overhead_on_the_happy_path():
    # Comparing two separately-timed ms-scale loops drowns the guard's
    # microsecond-scale bookkeeping in timer drift, so measure the two
    # quantities each at their own natural scale: the guard's absolute
    # per-call cost on a no-op thunk (tight many-iteration loop), and
    # the real per-shard query cost it rides on.  Their ratio is the
    # happy-path overhead.
    cluster = ClusterTree.build(get_data(), num_shards=NUM_SHARDS)
    shard = cluster.shards[0]
    guard = cluster._guards[0]
    queries = get_queries()

    def noop(token):
        return None

    calls = 20000
    for _ in range(1000):
        guard.call("query", noop)  # warm

    def bare_loop():
        for _ in range(calls):
            noop(None)

    def guarded_loop():
        for _ in range(calls):
            guard.call("query", noop)

    guard_s_per_call = (
        best_of(REPEATS, guarded_loop) - best_of(REPEATS, bare_loop)
    ) / calls

    def shard_queries():
        for query in queries:
            with shard.lock.read_locked():
                knnta_search(shard.tree, query)

    shard_queries()  # warm
    query_s = best_of(REPEATS, shard_queries) / len(queries)
    overhead_pct = 100.0 * guard_s_per_call / query_s

    print(
        "\nguard overhead: %.2fus bookkeeping per call over a %.2fms "
        "per-shard query -> %.3f%% (budget %.1f%%)"
        % (
            1e6 * guard_s_per_call,
            1000.0 * query_s,
            overhead_pct,
            MAX_GUARD_OVERHEAD_PCT,
        )
    )
    assert overhead_pct < MAX_GUARD_OVERHEAD_PCT, (
        "guard bookkeeping costs %.2f%% of a per-shard query (budget %.1f%%)"
        % (overhead_pct, MAX_GUARD_OVERHEAD_PCT)
    )

    _emit(guard_overhead_pct=overhead_pct,
          guard_us_per_call=1e6 * guard_s_per_call,
          shard_query_ms=1000.0 * query_s)


def test_degraded_mode_is_not_slower_than_healthy():
    queries = get_queries()

    healthy = ClusterTree.build(get_data(), num_shards=NUM_SHARDS)
    [healthy.query(query) for query in queries]  # warm
    healthy_s = best_of(
        REPEATS, lambda: [healthy.query(query) for query in queries]
    )

    injector = FaultInjector(seed=0)
    degraded = ClusterTree.build(
        get_data(),
        num_shards=NUM_SHARDS,
        resilience=ResilienceConfig(sleep=lambda _: None),
        injector=injector,
        allow_degraded=True,
    )
    injector.configure("shard.0.query", schedule=constant(1.0), kind="fatal")
    answers = [degraded.query(query) for query in queries]  # warm + open breaker
    degraded_s = best_of(
        REPEATS, lambda: [degraded.query(query) for query in queries]
    )

    assert all(answer is not None for answer in answers)
    counters = degraded.counters()
    assert counters["shards.down"] >= 1
    # Exact-or-explicit: anything the down shard could have changed is
    # flagged, everything else is certified exact.
    flagged = sum(1 for a in answers if getattr(a, "degraded", False))
    certified = counters["certified_exact"]
    assert flagged + certified > 0

    ratio = degraded_s / healthy_s
    print(
        "\ndegraded-mode latency: healthy %.2fms, one shard down %.2fms "
        "per query (x%.2f); %d/%d answers flagged degraded, %d certified "
        "exact"
        % (
            1000.0 * healthy_s / len(queries),
            1000.0 * degraded_s / len(queries),
            ratio,
            flagged,
            len(answers),
            certified,
        )
    )
    # A down shard means less work, not more: the breaker rejects in
    # O(1) once open.  The bar is about catching pathological behaviour
    # (a retry storm, a sleep on the query path), so it leaves generous
    # headroom for timer noise on small per-query costs.
    assert ratio < 1.5, (
        "degraded serving is %.2fx the healthy latency" % ratio
    )

    _emit(
        healthy_ms_per_query=1000.0 * healthy_s / len(queries),
        degraded_ms_per_query=1000.0 * degraded_s / len(queries),
        degraded_over_healthy=ratio,
        answers_flagged_degraded=flagged,
        answers_certified_exact=certified,
    )


def _emit(**fields):
    """Merge ``fields`` into BENCH_resilience.json (tests run in order,
    each contributing its side of the story)."""
    out_path = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "BENCH_resilience.json")
    )
    payload = {
        "dataset": DATASET,
        "scale": SCALE,
        "n_queries": N_QUERIES,
        "num_shards": NUM_SHARDS,
    }
    if os.path.exists(out_path):
        with open(out_path) as handle:
            payload.update(json.load(handle))
    payload.update(fields)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
