"""Figure 9 — TAR-tree vs IND-spa / IND-agg / baseline, varying k.

For k in {1, 5, 10, 50, 100} the paper reports (a, b) CPU time and
(c, d) node accesses per query on GW and GS.  The TAR-tree constantly
outperforms the others; costs grow with k, and beyond k = 10 the
alternatives' node accesses grow much faster than the TAR-tree's.
"""

import pytest

from _harness import (
    STRATEGIES,
    STRATEGY_LABELS,
    geometric_mean_ratio,
    get_tree,
    get_workload,
    measure_baseline,
    measure_index,
    print_series,
)
from repro.core.knnta import knnta_search

K_VALUES = (1, 5, 10, 50, 100)


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig9_vary_k(benchmark, name):
    trees = {s: get_tree(name, strategy=s) for s in STRATEGIES}
    workload = get_workload(name)

    cpu = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    cpu["baseline"] = []
    nodes = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    for k in K_VALUES:
        queries = workload.with_params(k=k)
        for strategy in STRATEGIES:
            result = measure_index(trees[strategy], queries)
            cpu[STRATEGY_LABELS[strategy]].append(result.cpu_ms)
            nodes[STRATEGY_LABELS[strategy]].append(result.node_accesses)
        cpu["baseline"].append(
            measure_baseline(trees["integral3d"], queries).cpu_ms
        )

    print_series(
        "Figure 9(%s): CPU time (ms) per query vs k" % name, "k", K_VALUES, cpu,
        fmt="%10.3f",
    )
    print_series(
        "Figure 9(%s): node accesses per query vs k" % name, "k", K_VALUES, nodes,
        fmt="%10.1f",
    )

    tar_nodes = nodes["TAR-tree"]
    # Node accesses: the TAR-tree beats IND-agg outright and stays within
    # noise of IND-spa at small k (at the reproduction's reduced scale the
    # paper's large-k gap is attenuated; see EXPERIMENTS.md).
    assert geometric_mean_ratio(tar_nodes, nodes["IND-agg"]) > 1.0
    assert geometric_mean_ratio(tar_nodes, nodes["IND-spa"]) > 0.9
    assert tar_nodes[-1] <= nodes["IND-agg"][-1]

    # Node accesses increase with k for every index.
    for label, series in nodes.items():
        assert series[0] <= series[-1], label

    # CPU time: the TAR-tree is the fastest index on average and runs
    # far faster than the sequential-scan baseline.
    for rival in ("IND-spa", "IND-agg"):
        assert geometric_mean_ratio(cpu["TAR-tree"], cpu[rival]) > 1.0, rival
    assert geometric_mean_ratio(cpu["TAR-tree"], cpu["baseline"]) > 3.0

    queries = workload.with_params(k=10)
    benchmark(knnta_search, trees["integral3d"], queries[0])
