"""Ablations of the reproduction's design choices (DESIGN.md §5, §7.6).

Not figures from the paper — these isolate the knobs the paper mentions
in passing or that the reproduction had to choose:

* forced reinsertion in the integral-3D strategy (the R*-tree heuristic);
* TIA buffer size (the paper fixes 10 slots);
* interval semantics (Section 3's *intersects* vs Section 4.3's
  *contained* wording);
* exact vs root-bound aggregate normalisation (DESIGN.md §5);
* the z-coordinate refresh after drift (the paper's Section 8.2 remark
  on periodic reinsertion/rebuild);
* TIA backends (paged B+-tree vs multi-version B-tree vs in-memory).
"""

import time

import pytest

from _harness import get_dataset, get_tree, get_workload, measure_index, print_series
from repro import TARTree
from repro.core.grouping import Integral3DGrouping
from repro.core.knnta import knnta_search
from repro.core.scan import sequential_scan
from repro.datasets.workload import generate_queries
from repro.temporal.tia import IntervalSemantics

NAME = "GS"


def test_ablation_forced_reinsertion(benchmark):
    """R*-tree forced reinsertion improves integral-3D packing."""
    data = get_dataset(NAME)
    workload = get_workload(NAME)

    with_reinsert = get_tree(NAME)
    no_reinsert_strategy = Integral3DGrouping()
    no_reinsert_strategy.uses_reinsert = False
    without_reinsert = TARTree.build(data, strategy=no_reinsert_strategy)

    on = measure_index(with_reinsert, workload)
    off = measure_index(without_reinsert, workload)
    print_series(
        "Ablation (%s): forced reinsertion in integral-3D" % NAME,
        "metric",
        ["node accesses", "nodes in tree"],
        {
            "reinsert on": [on.node_accesses, with_reinsert.node_count()],
            "reinsert off": [off.node_accesses, without_reinsert.node_count()],
        },
    )
    # Reinsertion must not hurt; it usually packs nodes tighter.
    assert on.node_accesses <= off.node_accesses * 1.15
    benchmark(knnta_search, with_reinsert, workload[0])


def test_ablation_tia_buffer_slots(benchmark):
    """More TIA buffer slots -> fewer simulated page reads per query."""
    data = get_dataset(NAME)
    queries = list(get_workload(NAME))[:100]
    slots_sweep = (0, 2, 10, 50)
    misses = []
    for slots in slots_sweep:
        tree = get_tree(NAME, tia_buffer_slots=slots)
        misses.append(measure_index(tree, queries).tia_pages)
    print_series(
        "Ablation (%s): TIA buffer slots vs TIA page reads/query" % NAME,
        "slots",
        slots_sweep,
        {"page reads": misses},
    )
    assert misses[-1] <= misses[0]
    assert misses == sorted(misses, reverse=True) or misses[0] > misses[-1]
    benchmark(knnta_search, get_tree(NAME), queries[0])


def test_ablation_interval_semantics(benchmark):
    """CONTAINED counts fewer epochs than INTERSECTS, never more."""
    tree = get_tree(NAME)
    queries = list(get_workload(NAME))[:100]
    totals = {IntervalSemantics.INTERSECTS: 0.0, IntervalSemantics.CONTAINED: 0.0}
    for query in queries:
        for semantics in totals:
            adjusted = query._replace(semantics=semantics)
            normalizer = tree.normalizer(query.interval, semantics, exact=True)
            results = knnta_search(tree, adjusted, normalizer=normalizer)
            scan = sequential_scan(tree, adjusted, normalizer=normalizer)
            assert [round(r.score, 9) for r in results] == [
                round(r.score, 9) for r in scan
            ]
            totals[semantics] += sum(
                tree.tia_aggregate(tree.poi_tia(r.poi_id), query.interval, semantics)
                for r in results
            )
    print_series(
        "Ablation (%s): interval semantics (total aggregate of results)" % NAME,
        "semantics",
        ["intersects", "contained"],
        {
            "sum": [
                totals[IntervalSemantics.INTERSECTS],
                totals[IntervalSemantics.CONTAINED],
            ]
        },
    )
    assert totals[IntervalSemantics.CONTAINED] <= totals[IntervalSemantics.INTERSECTS]
    benchmark(knnta_search, tree, queries[0])


def test_ablation_normalizer_exactness(benchmark):
    """The root-bound normaliser is a true upper bound; both are exact
    in ranking (same top-k IDs up to ties in either scoring)."""
    tree = get_tree(NAME)
    queries = list(get_workload(NAME))[:60]
    bound_nodes = exact_nodes = 0
    for query in queries:
        bound = tree.normalizer(query.interval, query.semantics)
        exact = tree.normalizer(query.interval, query.semantics, exact=True)
        assert bound.g_max >= exact.g_max
        snap = tree.stats.snapshot()
        knnta_search(tree, query, normalizer=bound)
        bound_nodes += tree.stats.diff(snap).rtree_nodes
        snap = tree.stats.snapshot()
        knnta_search(tree, query, normalizer=exact)
        exact_nodes += tree.stats.diff(snap).rtree_nodes
    print_series(
        "Ablation (%s): aggregate normaliser" % NAME,
        "normaliser",
        ["root bound", "exact"],
        {"node accesses/query": [bound_nodes / 60, exact_nodes / 60]},
    )
    benchmark(knnta_search, tree, queries[0])


def test_ablation_refresh_after_drift(benchmark):
    """Section 8.2: periodic reinsertion restores degraded placement.

    Build on the first 40% of history (freezing z-coordinates), stream
    the remaining 60%, then refresh; the refreshed tree must not be
    slower and the content must be unchanged.
    """
    data = get_dataset(NAME)
    early = data.snapshot(0.4)
    tree = TARTree.build(early, until_time=data.tc)
    clock = tree.clock
    late_counts = {}
    for poi_id, epochs in data.epoch_counts(clock, list(tree.poi_ids())).items():
        for epoch, count in epochs.items():
            already = tree.poi_tia(poi_id).get(epoch)
            if count > already:
                late_counts.setdefault(epoch, {})[poi_id] = count - already
    for epoch in sorted(late_counts):
        tree.digest_epoch(epoch, late_counts[epoch])
    tree.check_invariants()

    queries = generate_queries(data, n_queries=100, seed=20)
    drifted = measure_index(tree, queries)
    content_before = {
        poi_id: dict(tree.poi_tia(poi_id).items()) for poi_id in tree.poi_ids()
    }
    tree.refresh_aggregate_dimension()
    tree.check_invariants()
    refreshed = measure_index(tree, queries)
    assert {
        poi_id: dict(tree.poi_tia(poi_id).items()) for poi_id in tree.poi_ids()
    } == content_before

    print_series(
        "Ablation (%s): z-coordinate refresh after drift" % NAME,
        "state",
        ["drifted", "refreshed"],
        {"node accesses/query": [drifted.node_accesses, refreshed.node_accesses]},
    )
    assert refreshed.node_accesses <= drifted.node_accesses * 1.1
    benchmark(knnta_search, tree, queries[0])


def test_ablation_bulk_loading(benchmark):
    """STR bulk loading vs one-at-a-time insertion: build time and the
    query quality of the resulting trees."""
    data = get_dataset(NAME)
    queries = list(get_workload(NAME))[:100]

    start = time.perf_counter()
    incremental = TARTree.build(data, tia_backend="memory")
    incremental_seconds = time.perf_counter() - start
    start = time.perf_counter()
    bulk = TARTree.build(data, bulk=True, tia_backend="memory")
    bulk_seconds = time.perf_counter() - start
    bulk.check_invariants()

    inc_measure = measure_index(incremental, queries)
    bulk_measure = measure_index(bulk, queries)
    print_series(
        "Ablation (%s): STR bulk loading vs incremental build" % NAME,
        "method",
        ["build s", "node accesses/q"],
        {
            "incremental": [incremental_seconds, inc_measure.node_accesses],
            "bulk (STR)": [bulk_seconds, bulk_measure.node_accesses],
        },
        fmt="%10.3f",
    )
    assert bulk_seconds < incremental_seconds
    # Packed trees may trade a little pruning for build speed, but must
    # stay in the same class.
    assert bulk_measure.node_accesses <= inc_measure.node_accesses * 1.6
    # And they answer identically.
    for query in queries[:10]:
        a = [round(r.score, 9) for r in knnta_search(bulk, query)]
        b = [round(r.score, 9) for r in knnta_search(incremental, query)]
        assert a == b
    benchmark(knnta_search, bulk, queries[0])


@pytest.mark.parametrize("backend", ["memory", "paged", "mvbt"])
def test_ablation_tia_backend(benchmark, backend):
    """Build cost and query cost across the three TIA backends."""
    data = get_dataset("LA")
    start = time.perf_counter()
    tree = TARTree.build(data, tia_backend=backend)
    build_seconds = time.perf_counter() - start
    queries = generate_queries(data, n_queries=100, seed=21)
    result = measure_index(tree, queries)
    print_series(
        "Ablation (LA): TIA backend = %s" % backend,
        "metric",
        ["build s", "cpu ms/q", "tia pages/q"],
        {backend: [build_seconds, result.cpu_ms, result.tia_pages]},
        fmt="%10.3f",
    )
    # All backends answer identically.
    reference = TARTree.build(data, tia_backend="memory")
    query = queries[0]
    assert [round(r.score, 9) for r in knnta_search(tree, query)] == [
        round(r.score, 9) for r in knnta_search(reference, query)
    ]
    benchmark(knnta_search, tree, query)
