"""Figure 13 — minimum weight adjustment: enumerating vs pruning, varying k.

The paper varies k from 10 to 1000 and finds the pruning (skyline-based)
algorithm orders of magnitude faster than the enumerating baseline,
whose cost grows with k because every top-k POI triggers another index
traversal.  The pruning algorithm's cost *decreases* marginally with k.

The reproduction sweeps k in {10, 50, 100, 250} (capped by the scaled
index sizes) over a small query sample — enumerating is exactly as
expensive as the paper says it is.
"""

import time

import pytest

from _harness import get_tree, get_workload, print_series
from repro.core.mwa import mwa_enumerating, mwa_pruning

K_VALUES = (10, 50, 100, 250)
N_QUERIES = 5


def _measure(method, tree, queries):
    snap = tree.stats.snapshot()
    start = time.perf_counter()
    results = [method(tree, query) for query in queries]
    elapsed = time.perf_counter() - start
    delta = tree.stats.diff(snap)
    n = len(queries)
    return 1000.0 * elapsed / n, delta.rtree_nodes / n, results


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig13_mwa_vary_k(benchmark, name):
    tree = get_tree(name)
    base_queries = list(get_workload(name))[:N_QUERIES]

    cpu = {"enumerating": [], "pruning": []}
    nodes = {"enumerating": [], "pruning": []}
    for k in K_VALUES:
        queries = [q._replace(k=min(k, len(tree) // 2)) for q in base_queries]
        enum_cpu, enum_nodes, enum_results = _measure(
            mwa_enumerating, tree, queries
        )
        prune_cpu, prune_nodes, prune_results = _measure(
            mwa_pruning, tree, queries
        )
        cpu["enumerating"].append(enum_cpu)
        cpu["pruning"].append(prune_cpu)
        nodes["enumerating"].append(enum_nodes)
        nodes["pruning"].append(prune_nodes)
        # Both algorithms must agree on the MWA itself.
        for a, b in zip(enum_results, prune_results):
            if a.gamma_lower is not None or b.gamma_lower is not None:
                assert a.gamma_lower == pytest.approx(b.gamma_lower)
            if a.gamma_upper is not None or b.gamma_upper is not None:
                assert a.gamma_upper == pytest.approx(b.gamma_upper)

    print_series(
        "Figure 13(%s): MWA CPU time (ms) vs k" % name, "k", K_VALUES, cpu,
        fmt="%10.1f",
    )
    print_series(
        "Figure 13(%s): MWA node accesses vs k" % name, "k", K_VALUES, nodes,
        fmt="%10.1f",
    )

    # Pruning beats enumerating by a large margin at every k, and the
    # enumerating cost grows with k while pruning stays flat/shrinking.
    for enum_value, prune_value in zip(nodes["enumerating"], nodes["pruning"]):
        assert prune_value < enum_value / 3
    assert nodes["enumerating"][-1] > nodes["enumerating"][0] * 3
    assert cpu["pruning"][-1] < cpu["enumerating"][-1] / 3

    benchmark(mwa_pruning, tree, base_queries[0])
